"""Deterministic slow method for ``bench_distributed_sweep.py``.

The cooperative-sweep benchmark needs scenarios whose runtime is dominated
by *work* (so wall-clock speedup is attributable to cooperation, not
noise) while the results stay bit-comparable across any mix of workers,
hosts, and crash recoveries.  ``probe`` is that stand-in for an expensive
detector: it sleeps a configurable ``delay`` and then flags every test
cell whose value is unique within its column — nontrivial, seed- and
worker-independent predictions.

Referenced from sweep specs as ``"_distributed_method:probe"`` (the
registry's ``module:attr`` escape hatch), so worker subprocesses only need
this directory on ``PYTHONPATH`` — no repo edits, exactly like a user's
own method package.
"""

from __future__ import annotations

import time
from collections import Counter


def probe(delay: float = 0.0) -> object:
    """MethodFn factory: sleep ``delay`` seconds, then flag unique values."""

    def run(bundle, split, rng):
        if delay:
            time.sleep(delay)
        dirty = bundle.dirty
        counts = {a: Counter(dirty.column(a)) for a in dirty.schema.attributes}
        return {
            cell
            for cell in split.test_cells
            if counts[cell.attr][dirty.column(cell.attr)[cell.row]] == 1
        }

    return run
