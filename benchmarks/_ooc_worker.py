"""Subprocess worker for ``bench_out_of_core.py``.

Each invocation runs ONE phase of the out-of-core benchmark in a fresh
process so its peak RSS is attributable to that phase alone:

- ``ingest``    — tile the base CSV by ``--factor`` and stream it into a
  shard directory (:meth:`ShardedDataset.from_csv`); reports the peak RSS
  delta of the ingest and the manifest's in-memory footprint estimate.
- ``workload``  — the detection workload over the tiled relation, on either
  backing (``--backing sharded|inmemory``): an integrity pass over every
  shard digest (sharded) or a full fingerprint computation (in-memory),
  streaming relation-scoped featurizer fits (co-occurrence joint counts and
  FD-constraint violation counts), and a chunked streaming prediction with
  a detector fitted at overlap scale and loaded from disk.  Reports the
  peak RSS delta and a SHA-256 checksum of the prediction probabilities —
  the driver asserts the two backings' checksums (and fingerprints) are
  identical.

Peak measurement is stdlib-only: the worker snapshots ``VmRSS`` after
setup, resets ``VmHWM`` via ``/proc/self/clear_refs`` (best effort — in
containers that deny the write, the reported delta still subtracts the
setup baseline, it just cannot discount a pre-setup spike), runs the
phase, and reports ``VmHWM - baseline``.  Results are printed as one JSON
object on stdout.
"""

from __future__ import annotations

import argparse
import csv
import hashlib
import json
import sys
import tempfile
from pathlib import Path


def _vm_kb(field: str) -> int | None:
    try:
        with open("/proc/self/status", encoding="ascii") as f:
            for line in f:
                if line.startswith(field + ":"):
                    return int(line.split()[1])
    except OSError:
        return None
    return None


def _reset_peak() -> bool:
    try:
        with open("/proc/self/clear_refs", "w", encoding="ascii") as f:
            f.write("5")
        return True
    except OSError:
        return False


def _peak_bytes() -> int:
    kb = _vm_kb("VmHWM")
    if kb is not None:
        return kb * 1024
    import resource

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


class PeakMeter:
    """Peak-RSS delta of the code between ``start()`` and ``delta_bytes``."""

    def start(self) -> None:
        baseline = _vm_kb("VmRSS")
        self.baseline_bytes = (baseline or 0) * 1024
        self.reset_ok = _reset_peak()

    def delta_bytes(self) -> int:
        return max(0, _peak_bytes() - self.baseline_bytes)


def _tiled_csv(base_csv: Path, factor: int, out_path: Path) -> None:
    """Write ``factor`` back-to-back repetitions of the base CSV's rows."""
    with base_csv.open(newline="", encoding="utf-8") as f:
        reader = csv.reader(f)
        header = next(reader)
        base_rows = list(reader)
    with out_path.open("w", newline="", encoding="utf-8") as f:
        writer = csv.writer(f)
        writer.writerow(header)
        for _ in range(factor):
            writer.writerows(base_rows)


def _constraints(seed: int):
    from repro.data.registry import load_dataset

    return load_dataset("hospital", num_rows=50, seed=seed).constraints


def _setup(relation, args):
    """Relation-size-*independent* setup: detector stack imports, the
    constraint schemas, and the saved overlap-scale detector.

    Runs before the meter starts — the memory gate is about allocations
    that scale with the relation, and none of this does.
    """
    from repro.persistence import load_detector

    constraints = _constraints(args.seed)
    detector = load_detector(args.model, relation)
    detector._train_cells = set()
    return detector, constraints


def _run_workload(relation, detector, constraints, args) -> dict:
    """Integrity pass + streaming fits + streamed chunked prediction."""
    from repro.features.dataset_level import ConstraintViolationFeaturizer
    from repro.features.pipeline import FeaturePipeline
    from repro.features.tuple_level import CooccurrenceFeaturizer

    import numpy as np

    # Integrity: recompute content hashes by streaming every shard.
    if hasattr(relation, "verify"):
        relation.verify()
    fingerprint = relation.fingerprint()

    # Streaming relation-scoped fits (mergeable per-shard partials).
    cooc = CooccurrenceFeaturizer().fit(relation)
    violations = ConstraintViolationFeaturizer(constraints).fit(relation)
    fit_digest = hashlib.sha256()
    # json canonicalises the value types: the sharded backing yields
    # np.str_ (a str subclass — equal, same hash, different repr).
    fit_digest.update(
        json.dumps(
            [[a, v, n] for (a, v), n in sorted(cooc._value_counts.items())]
        ).encode("utf-8")
    )
    fit_digest.update(violations._tuple_counts.tobytes())

    # Chunked streaming prediction with the overlap-scale detector.
    cells = FeaturePipeline._sample_cells(relation, args.sample)
    probabilities = np.fromiter(
        (p for _, p in detector.iter_predict(iter(cells))),
        dtype=np.float64,
        count=len(cells),
    )
    return {
        "fingerprint": fingerprint,
        "num_rows": relation.num_rows,
        "cells_scored": len(cells),
        "fit_checksum": fit_digest.hexdigest(),
        "prediction_checksum": hashlib.sha256(probabilities.tobytes()).hexdigest(),
        "cache_stats": detector.cache.stats.as_dict() if detector.cache else None,
    }


def cmd_ingest(args: argparse.Namespace) -> dict:
    from repro.dataset.sharded import ShardedDataset

    tiled = Path(tempfile.mkdtemp(prefix="ooc-tile-")) / "tiled.csv"
    _tiled_csv(Path(args.csv), args.factor, tiled)
    meter = PeakMeter()
    meter.start()
    sharded = ShardedDataset.from_csv(
        tiled, args.out, shard_rows=args.shard_rows, force=True
    )
    return {
        "phase": "ingest",
        "peak_delta_bytes": meter.delta_bytes(),
        "reset_ok": meter.reset_ok,
        "num_rows": sharded.num_rows,
        "num_shards": sharded.num_shards,
        "fingerprint": sharded.fingerprint(),
        "inmemory_bytes": sharded.inmemory_bytes,
    }


def cmd_workload(args: argparse.Namespace) -> dict:
    meter = PeakMeter()
    if args.backing == "sharded":
        from repro.dataset.sharded import ShardedDataset

        relation = ShardedDataset(args.data, max_open_arrays=args.max_open_arrays)
        detector, constraints = _setup(relation, args)
        meter.start()
        result = _run_workload(relation, detector, constraints, args)
    else:
        # The in-memory twin *is* the comparison point, so materialising the
        # relation (read_csv) stays inside the metered region; the detector
        # load cannot precede the relation it attaches to, so it is metered
        # here too — a small, conservative asymmetry.
        from repro.dataset.loader import read_csv
        from repro.persistence import load_detector

        constraints = _constraints(args.seed)
        tiled = Path(tempfile.mkdtemp(prefix="ooc-tile-")) / "tiled.csv"
        _tiled_csv(Path(args.csv), args.factor, tiled)
        meter.start()
        relation = read_csv(tiled)
        detector = load_detector(args.model, relation)
        detector._train_cells = set()
        result = _run_workload(relation, detector, constraints, args)
    result.update(
        phase=f"workload-{args.backing}",
        peak_delta_bytes=meter.delta_bytes(),
        reset_ok=meter.reset_ok,
    )
    return result


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="mode", required=True)

    ingest = sub.add_parser("ingest")
    ingest.add_argument("--csv", required=True)
    ingest.add_argument("--factor", type=int, required=True)
    ingest.add_argument("--out", required=True)
    ingest.add_argument("--shard-rows", type=int, default=512)
    ingest.set_defaults(func=cmd_ingest)

    workload = sub.add_parser("workload")
    workload.add_argument("--backing", choices=["sharded", "inmemory"], required=True)
    workload.add_argument("--data", help="shard directory (sharded backing)")
    workload.add_argument("--csv", help="base CSV (inmemory backing)")
    workload.add_argument("--factor", type=int, default=1)
    workload.add_argument("--model", required=True, help="saved detector directory")
    workload.add_argument("--sample", type=int, default=2000)
    workload.add_argument("--seed", type=int, default=1)
    workload.add_argument("--max-open-arrays", type=int, default=16)
    workload.set_defaults(func=cmd_workload)

    args = parser.parse_args()
    print(json.dumps(args.func(args)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
