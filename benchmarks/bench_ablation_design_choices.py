"""Design-choice ablations beyond the paper's own figures.

Four choices the system makes that the paper motivates in prose get their
own measurements here:

- **Platt scaling** (§4.2) — calibrated vs raw probabilities;
- **weak supervision** (§5.4) — channel learned from labelled errors plus
  Naïve Bayes pairs vs labelled errors alone;
- **active-learning selection strategy** (§6.1 uses uncertainty sampling) —
  uncertainty vs error-seeking vs random;
- **multi-edit channel** (extension; §7 leaves it as future work) —
  single-edit policy vs the composed CompositePolicy.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from conftest import bench_config, print_table

from repro.augmentation.policy import CompositePolicy, Policy
from repro.baselines import ActiveLearningDetector, GroundTruthOracle
from repro.core import HoloDetect
from repro.evaluation import evaluate_predictions, make_split


def _f1(bundle, split, config) -> float:
    detector = HoloDetect(config)
    detector.fit(bundle.dirty, split.training, bundle.constraints)
    return evaluate_predictions(
        detector.predict_error_cells(split.test_cells), bundle.error_cells, split.test_cells
    ).f1


def test_ablation_calibration(benchmark, core_bundles):
    bundle = core_bundles["hospital"]
    split = make_split(bundle, 0.10, rng=13)

    def run():
        with_platt = _f1(bundle, split, replace(bench_config(), calibrate=True))
        without = _f1(bundle, split, replace(bench_config(), calibrate=False))
        return [["Platt scaling", f"{with_platt:.3f}"], ["raw scores", f"{without:.3f}"]]

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print_table("Ablation — calibration (hospital)", ["Variant", "F1"], rows)
    # Shape: calibration does not hurt materially.
    assert float(rows[0][1]) >= float(rows[1][1]) - 0.1


def test_ablation_weak_supervision(benchmark, core_bundles):
    """Force the channel to be learned with vs without the NB top-up."""
    bundle = core_bundles["hospital"]
    split = make_split(bundle, 0.05, rng=13)

    def run():
        # Channel from labelled errors only (min_error_pairs=0 disables the
        # weak-supervision top-up).
        labels_only = _f1(bundle, split, replace(bench_config(), min_error_pairs=0))
        # Channel always topped up with NB pairs.
        topped_up = _f1(bundle, split, replace(bench_config(), min_error_pairs=10**9))
        return [
            ["labelled errors only", f"{labels_only:.3f}"],
            ["+ weak supervision", f"{topped_up:.3f}"],
        ]

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print_table("Ablation — weak supervision (hospital, 5% labels)", ["Channel source", "F1"], rows)


def test_ablation_al_strategy(benchmark, core_bundles):
    bundle = core_bundles["hospital"]
    split = make_split(bundle, 0.05, rng=13)
    cfg = bench_config()

    def run():
        rows = []
        for strategy in ("uncertainty", "error_seeking", "random"):
            detector = ActiveLearningDetector(
                GroundTruthOracle(bundle),
                split.sampling_cells,
                loops=2,
                labels_per_loop=25,
                config=cfg,
                strategy=strategy,
            )
            detector.fit(bundle.dirty, split.training, bundle.constraints)
            m = evaluate_predictions(
                detector.predict_error_cells(split.test_cells),
                bundle.error_cells,
                split.test_cells,
            )
            rows.append([strategy, f"{m.f1:.3f}"])
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print_table("Ablation — AL selection strategy (hospital)", ["Strategy", "F1"], rows)


def test_ablation_multi_edit_channel(benchmark, core_bundles):
    bundle = core_bundles["hospital"]
    split = make_split(bundle, 0.10, rng=13)

    def run():
        single = _f1(bundle, split, bench_config())
        base = Policy.learn(split.training.error_pairs())
        composite = CompositePolicy(base, max_edits=3, continue_probability=0.3)
        multi = _f1(bundle, split, replace(bench_config(), policy_override=composite))
        return [["single edit (paper)", f"{single:.3f}"], ["multi edit (extension)", f"{multi:.3f}"]]

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print_table("Ablation — noisy-channel edit depth (hospital)", ["Channel", "F1"], rows)
    # Shape: Hospital's errors are single typos, so multi-edit should not win big.
    assert float(rows[0][1]) >= float(rows[1][1]) - 0.15
