"""Multi-host cooperative sweeps: the ISSUE-9 acceptance gates.

Every worker here is a real ``repro sweep --coordinate`` subprocess — the
same CLI invocation N operators would run on N hosts sharing a filesystem
— draining one scenario matrix through lease files in ``<store>.coord/``
(:mod:`repro.coordination`).  Scenario runtime is dominated by a
deterministic slow method (``_distributed_method.probe``), so wall-clock
ratios measure cooperation, not noise.

Gates:

- ``test_cooperative_drain`` — three workers on one shared store drain the
  matrix with **zero duplicate executions** (replayed from the audit log),
  results **bit-identical** to a sequential in-process run, and combined
  wall-clock **< 0.6x** a single coordinated worker's;
- ``test_crash_recovery`` — one of two workers is ``SIGKILL``'d holding a
  lease; the survivor reclaims it after the TTL and completes the sweep,
  again bit-identically.

The measured numbers are written as JSON (to ``$REPRO_DISTRIBUTED_JSON``
if set, else ``bench_distributed_sweep.json``) so CI archives them as an
artifact.  Run with ``pytest benchmarks/bench_distributed_sweep.py -s`` to
see the tables.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from conftest import print_table

from repro.coordination import read_audit
from repro.evaluation.matrix import ScenarioMatrix, run_matrix
from repro.evaluation.store import ResultStore

_RESULTS_PATH = Path(os.environ.get("REPRO_DISTRIBUTED_JSON", "bench_distributed_sweep.json"))

#: Per-scenario sleep; raise via env to push further past process startup.
_DELAY = float(os.environ.get("REPRO_DIST_DELAY", "0.8"))

#: The acceptance threshold: 3 workers must beat 0.6x one worker.
_SPEEDUP_GATE = 0.6

_REPO = Path(__file__).resolve().parent.parent

ACCURACY_FIELDS = ("fingerprint", "spec", "metrics", "trials", "mean_f1", "std_f1")


def _matrix_payload(budgets: int) -> dict:
    """``budgets`` scenarios: one slow method across distinct label budgets."""
    return {
        "datasets": [{"name": "hospital", "rows": 40}],
        "error_profiles": ["native"],
        "label_budgets": [round(0.05 * i, 2) for i in range(1, budgets + 1)],
        "methods": [{"name": "_distributed_method:probe", "delay": _DELAY}],
        "trials": 1,
        "seed": 23,
    }


def _write_spec(tmp_path: Path, budgets: int) -> Path:
    spec = tmp_path / "spec.json"
    spec.write_text(json.dumps(_matrix_payload(budgets)), encoding="utf-8")
    return spec


def _worker_env() -> dict[str, str]:
    """Workers need ``repro`` and ``_distributed_method`` importable."""
    env = dict(os.environ)
    extra = f"{_REPO / 'src'}{os.pathsep}{Path(__file__).parent}"
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{extra}{os.pathsep}{existing}" if existing else extra
    return env


def _spawn_worker(
    spec: Path, store: Path, worker_id: str, ttl: float = 10.0
) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "sweep",
            "--spec", str(spec),
            "--store", str(store),
            "--coordinate",
            "--worker-id", worker_id,
            "--lease-ttl", str(ttl),
            "--executor", "serial",
        ],
        env=_worker_env(),
        cwd=spec.parent,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _accuracy_view(records: list[dict]) -> list[dict]:
    return [{k: r[k] for k in ACCURACY_FIELDS} for r in records]


def _execute_events(coord: Path) -> list[str]:
    return [e["fingerprint"] for e in read_audit(coord) if e["event"] == "execute"]


def _write_results(section: str, payload: dict) -> None:
    results = {}
    if _RESULTS_PATH.exists():
        try:
            results = json.loads(_RESULTS_PATH.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            results = {}
    results[section] = payload
    _RESULTS_PATH.write_text(json.dumps(results, indent=2), encoding="utf-8")


def test_cooperative_drain(tmp_path):
    budgets = 12
    spec = _write_spec(tmp_path, budgets)
    matrix = ScenarioMatrix.from_file(spec)
    fingerprints = [s.fingerprint() for s in matrix.expand()]
    assert len(fingerprints) == budgets

    # Reference: the ordinary in-process sequential sweep.
    sequential = run_matrix(matrix, workers=1).records

    # Baseline: ONE coordinated worker drains the whole matrix alone.
    solo_store = tmp_path / "solo" / "store.jsonl"
    solo_store.parent.mkdir()
    started = time.perf_counter()
    solo = _spawn_worker(spec, solo_store, "solo")
    assert solo.wait(timeout=600) == 0
    solo_wall = time.perf_counter() - started
    assert ResultStore(solo_store).missing(fingerprints) == []

    # Measured: THREE cooperating workers on one fresh shared store.
    store = tmp_path / "fleet" / "store.jsonl"
    store.parent.mkdir()
    coord = Path(f"{store}.coord")
    started = time.perf_counter()
    fleet = [_spawn_worker(spec, store, f"w{i}") for i in range(3)]
    for proc in fleet:
        assert proc.wait(timeout=600) == 0
    fleet_wall = time.perf_counter() - started

    # Gate: no scenario executed twice, fleet-wide (the audit log is the
    # ground truth — every worker appends an ``execute`` before running).
    executes = _execute_events(coord)
    assert sorted(executes) == sorted(set(executes)), "duplicate executions"
    assert set(executes) == set(fingerprints)

    # Gate: the shared store is bit-identical to the sequential run.
    final = ResultStore(store)
    fleet_records = [final.get(fp) for fp in fingerprints]
    assert _accuracy_view(fleet_records) == _accuracy_view(sequential)

    # Gate: cooperation actually bought wall-clock.
    ratio = fleet_wall / solo_wall
    per_worker = {
        worker: sum(
            1 for e in read_audit(coord)
            if e["event"] == "complete" and e["worker"] == worker
        )
        for worker in (f"w{i}" for i in range(3))
    }
    print_table(
        "Cooperative drain: 3 workers vs 1 (12 scenarios)",
        ["config", "wall (s)", "scenarios", "ratio"],
        [
            ["1 worker", f"{solo_wall:.2f}", budgets, "1.00"],
            [
                "3 workers",
                f"{fleet_wall:.2f}",
                "/".join(str(per_worker[f"w{i}"]) for i in range(3)),
                f"{ratio:.2f}",
            ],
        ],
    )
    _write_results(
        "cooperative_drain",
        {
            "scenarios": budgets,
            "scenario_delay_s": _DELAY,
            "solo_wall_s": solo_wall,
            "fleet_wall_s": fleet_wall,
            "ratio": ratio,
            "gate": _SPEEDUP_GATE,
            "per_worker_completions": per_worker,
            "duplicate_executions": len(executes) - len(set(executes)),
            "bit_identical": True,
        },
    )
    assert ratio < _SPEEDUP_GATE, (
        f"3 cooperating workers took {ratio:.2f}x one worker's wall-clock "
        f"(gate: < {_SPEEDUP_GATE})"
    )


def test_crash_recovery(tmp_path):
    budgets = 5
    spec = _write_spec(tmp_path, budgets)
    matrix = ScenarioMatrix.from_file(spec)
    fingerprints = [s.fingerprint() for s in matrix.expand()]
    store = tmp_path / "store.jsonl"
    coord = Path(f"{store}.coord")
    lease_dir = coord / "leases"

    # The victim claims its first scenario, then dies mid-execution with
    # the lease on disk and the heartbeat silenced.
    victim = _spawn_worker(spec, store, "victim", ttl=2.0)
    deadline = time.monotonic() + 120
    try:
        while not (lease_dir.is_dir() and any(lease_dir.glob("*.lease"))):
            assert time.monotonic() < deadline, "victim never claimed a lease"
            time.sleep(0.02)
    finally:
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=30)
    assert any(lease_dir.glob("*.lease")), "SIGKILL left no lease behind"

    started = time.perf_counter()
    survivor = _spawn_worker(spec, store, "survivor", ttl=2.0)
    assert survivor.wait(timeout=600) == 0
    recovery_wall = time.perf_counter() - started

    # The sweep completed despite the crash, with the victim's leases
    # reclaimed (not waited out forever) and nothing executed twice *per
    # claim* — the reclaimed scenario legitimately re-executes.
    final = ResultStore(store)
    assert final.missing(fingerprints) == []
    assert list(lease_dir.glob("*.lease")) == []
    events = read_audit(coord)
    reclaims = [e for e in events if e["event"] == "reclaim"]
    assert reclaims, "survivor never reclaimed the victim's lease"
    assert all(e["stale_worker"] == "victim" for e in reclaims)
    assert all(e["worker"] == "survivor" for e in reclaims)

    sequential = run_matrix(matrix, workers=1).records
    assert _accuracy_view([final.get(fp) for fp in fingerprints]) == _accuracy_view(
        sequential
    )

    print_table(
        "Crash recovery: SIGKILL'd worker reclaimed (5 scenarios)",
        ["event", "count"],
        [
            ["scenarios completed", budgets],
            ["leases reclaimed", len(reclaims)],
            ["recovery wall (s)", f"{recovery_wall:.2f}"],
        ],
    )
    _write_results(
        "crash_recovery",
        {
            "scenarios": budgets,
            "lease_ttl_s": 2.0,
            "reclaimed_leases": len(reclaims),
            "recovery_wall_s": recovery_wall,
            "bit_identical": True,
        },
    )
