"""Feature-engine runtime: cached vs uncached full-dataset prediction.

Companion to the Table 5 runtime benchmark (§6.7).  Table 5 times whole
methods end-to-end; this harness isolates the batched featurization engine:
the same fitted AUG detector predicts over every cell of the dataset with
the feature cache detached, cold, and warm.  The speedup is *measured*, and
the cached blocks are asserted byte-identical to the uncached path — the
cache must never change a prediction.

Run with ``pytest benchmarks/bench_feature_engine.py -s`` to see the table.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import bench_config, print_table

from repro.core import HoloDetect
from repro.evaluation.splits import make_split
from repro.features.base import CellBatch
from repro.features.cache import FeatureCache
from repro.utils.timing import Timer


@pytest.mark.parametrize("dataset_name", ["hospital"])
def test_feature_engine_speedup(benchmark, core_bundles, dataset_name):
    bundle = core_bundles[dataset_name]
    split = make_split(bundle, 0.05, rng=7)
    detector = HoloDetect(bench_config())
    detector.fit(bundle.dirty, split.training, bundle.constraints)
    cells = list(bundle.dirty.cells())

    def run():
        # Uncached baseline: every block recomputed.
        detector.pipeline.cache = None
        with Timer() as uncached:
            baseline = detector.predict(cells)
        # Cold pass fills the cache, warm pass is served from it.
        cache = FeatureCache()
        detector.pipeline.cache = cache
        with Timer() as cold:
            detector.predict(cells)
        with Timer() as warm:
            cached = detector.predict(cells)
        return baseline, cached, cache, uncached.elapsed, cold.elapsed, warm.elapsed

    baseline, cached, cache, t_uncached, t_cold, t_warm = benchmark.pedantic(
        run, iterations=1, rounds=1
    )
    speedup = t_uncached / max(t_warm, 1e-9)
    print_table(
        f"Feature engine — full-dataset prediction on {dataset_name} "
        f"({len(cells)} cells)",
        ["pass", "seconds"],
        [
            ["uncached", f"{t_uncached:.3f}"],
            ["cache cold", f"{t_cold:.3f}"],
            ["cache warm", f"{t_warm:.3f}"],
            ["speedup (uncached/warm)", f"{speedup:.1f}x"],
            ["cache", cache.stats.summary()],
        ],
    )

    # The cache must be invisible in the output...
    np.testing.assert_array_equal(baseline.probabilities, cached.probabilities)
    # ...and each cached block byte-identical to a fresh uncached transform.
    probe = CellBatch(cells[: min(512, len(cells))], bundle.dirty)
    for featurizer in detector.pipeline.featurizers:
        fresh = featurizer.transform_batch(probe)
        via_cache = cache.get_or_compute(featurizer, probe)
        via_cache_again = cache.get_or_compute(featurizer, probe)
        assert fresh.tobytes() == via_cache.tobytes() == via_cache_again.tobytes()
    # ISSUE 1 acceptance: >=2x on warm full-dataset prediction.
    assert speedup >= 2.0, f"expected >=2x speedup, got {speedup:.2f}x"
    assert cache.stats.hits > 0
