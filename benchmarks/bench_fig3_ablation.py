"""Figure 3: representation ablation — remove one model at a time.

For Hospital, Soccer, and Adult, AUG runs with the full representation Q and
with each representation model removed in turn; F1 per variant is reported.

Expected shape (§6.3): the full model is at or near the top; removing any
single model costs F1, with the costliest model differing per dataset.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from conftest import bench_config, print_table

from repro.core import HoloDetect
from repro.evaluation import evaluate_predictions, make_split
from repro.features.pipeline import ALL_MODEL_NAMES

#: Models exercised by the ablation (constraint violations is exercised by
#: the Table 8 bench, which sweeps the constraint set itself).
ABLATED = [name for name in ALL_MODEL_NAMES if name != "constraint_violations"]


def _f1(bundle, split, exclude: tuple[str, ...]) -> float:
    config = replace(bench_config(), exclude_models=exclude)
    detector = HoloDetect(config)
    detector.fit(bundle.dirty, split.training, bundle.constraints)
    predictions = detector.predict_error_cells(split.test_cells)
    return evaluate_predictions(predictions, bundle.error_cells, split.test_cells).f1


@pytest.mark.parametrize("dataset_name", ["hospital", "soccer", "adult"])
def test_fig3_ablation(benchmark, core_bundles, dataset_name):
    bundle = core_bundles[dataset_name]
    split = make_split(bundle, 0.10, rng=3)

    def run():
        rows = [["(full model)", f"{_f1(bundle, split, ()):.3f}"]]
        for name in ABLATED:
            rows.append([f"- {name}", f"{_f1(bundle, split, (name,)):.3f}"])
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print_table(f"Figure 3 — ablation on {dataset_name}", ["Variant", "F1"], rows)
    full = float(rows[0][1])
    # Shape: the full model is not dominated by most ablations.
    worse_or_equal = sum(1 for r in rows[1:] if float(r[1]) <= full + 0.02)
    assert worse_or_equal >= len(rows[1:]) // 2
