"""Figure 4: data augmentation versus active learning as loops increase.

The paper varies active-learning loops k ∈ {5, 10, 20, 100} with 5% training
data; AUG is a flat line (it uses no extra labels).  Bench scale uses
k ∈ {1, 2, 4} — the *shape* is the point: ActiveL approaches AUG only with
many additional labelled cells (50 per loop), while AUG needs none.
"""

from __future__ import annotations

import pytest

from conftest import bench_config, print_table
from methods import activel_method, aug_method

from repro.evaluation import run_trials

LOOPS = [1, 2]


@pytest.mark.parametrize("dataset_name", ["hospital", "soccer", "adult"])
def test_fig4_active_learning(benchmark, core_bundles, dataset_name):
    bundle = core_bundles[dataset_name]
    cfg = bench_config()

    def run():
        aug_f1 = run_trials(aug_method(cfg), bundle, 0.05, num_trials=1, seed=21).median.f1
        rows = []
        for k in LOOPS:
            al = run_trials(
                activel_method(cfg, loops=k), bundle, 0.05, num_trials=1, seed=21
            ).median.f1
            rows.append([k, f"{al:.3f}", f"{aug_f1:.3f}", 50 * k])
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print_table(
        f"Figure 4 — {dataset_name} (5% training data)",
        ["k (loops)", "ActiveL F1", "AUG F1", "extra labels"],
        rows,
    )
    # Shape: AUG at zero extra labels stays within reach of low-loop
    # ActiveL.  (At bench scale 50 oracle labels per loop is a far larger
    # *relative* label boost than at paper scale — |T| here is only a few
    # hundred cells — so the paper's strict dominance is not asserted.)
    assert float(rows[0][2]) >= float(rows[0][1]) - 0.3
