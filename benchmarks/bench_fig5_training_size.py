"""Figure 5: augmentation robustness to very small training sets.

The paper sweeps training size over {0.5%, 1%, 5%, 10%} and shows AUG's F1
degrades gracefully.  At bench scale (hundreds of rows) 0.5% of tuples is
a single row, so the sweep starts at 2%.

Expected shape: monotone-ish improvement with more data, and usable
performance even at the smallest setting.
"""

from __future__ import annotations

import pytest

from conftest import bench_config, print_table
from methods import aug_method

from repro.evaluation import run_trials

FRACTIONS = [0.02, 0.05, 0.10]


@pytest.mark.parametrize("dataset_name", ["hospital", "soccer", "adult"])
def test_fig5_training_size(benchmark, core_bundles, dataset_name):
    bundle = core_bundles[dataset_name]
    cfg = bench_config()

    def run():
        rows = []
        for fraction in FRACTIONS:
            result = run_trials(aug_method(cfg), bundle, fraction, num_trials=1, seed=31)
            rows.append([f"{fraction:.0%}", f"{result.median.f1:.3f}"])
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print_table(f"Figure 5 — {dataset_name}", ["Training data", "AUG F1"], rows)
    # Shape: the largest training size is not worse than the smallest by a
    # wide margin (graceful degradation reads in the other direction).
    assert float(rows[-1][1]) >= float(rows[0][1]) - 0.1
