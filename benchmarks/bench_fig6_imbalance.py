"""Figure 6: the effect of the post-augmentation error/correct ratio.

Algorithm 4's balance target is overridden to materialise ratios in
{0.1 … 0.9}; P, R, and F1 are reported per ratio.

Expected shape (§6.5): peak performance near a balanced training set
(ratio ≈ 0.5, not necessarily exactly), degrading toward both extremes —
too few synthetic errors starves recall, too many starves precision.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from conftest import bench_config, print_table

from repro.core import HoloDetect
from repro.evaluation import evaluate_predictions, make_split

RATIOS = [0.1, 0.3, 0.5, 0.7, 0.9]


@pytest.mark.parametrize("dataset_name", ["hospital", "soccer", "adult"])
def test_fig6_imbalance(benchmark, core_bundles, dataset_name):
    bundle = core_bundles[dataset_name]
    split = make_split(bundle, 0.10, rng=5)

    def run():
        rows = []
        for ratio in RATIOS:
            config = replace(bench_config(), target_ratio=ratio)
            detector = HoloDetect(config)
            detector.fit(bundle.dirty, split.training, bundle.constraints)
            m = evaluate_predictions(
                detector.predict_error_cells(split.test_cells),
                bundle.error_cells,
                split.test_cells,
            )
            rows.append(
                [f"{ratio:.1f}", f"{m.precision:.3f}", f"{m.recall:.3f}", f"{m.f1:.3f}"]
            )
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print_table(
        f"Figure 6 — {dataset_name} (errors/correct after augmentation)",
        ["Ratio", "P", "R", "F1"],
        rows,
    )
    # Shape: some mid ratio is at least as good as the most extreme ones.
    f1s = [float(r[3]) for r in rows]
    assert max(f1s[1:4]) >= max(f1s[0], f1s[4]) - 0.05
