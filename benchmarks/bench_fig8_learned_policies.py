"""Figure 8 (Appendix A.3): inspecting learned augmentation policies.

For Hospital (x-injection typos) and Adult (gender swaps + typos), the bench
learns the noisy channel from the dirty bundle and prints the top entries of
the conditional distribution Π̂(v) for representative clean values — the
analogue of the paper's 'scip-inf-4' and 'Female' examples.

Expected shape: for Hospital, transformations writing 'x' dominate the
conditional mass; for Animal's small categorical domain, value swaps carry
most of the mass.
"""

from __future__ import annotations

import pytest

from conftest import print_table

from repro.augmentation import Policy
from repro.dataset import TrainingSet
from repro.evaluation import make_split


def _policy_for(bundle) -> Policy:
    split = make_split(bundle, 0.3, rng=12)
    training = TrainingSet.from_cells(split.training_cells, bundle.dirty, bundle.truth)
    return Policy.learn(training.error_pairs())


def test_fig8_hospital_policy(benchmark, bundles):
    bundle = bundles["hospital"]

    def run():
        policy = _policy_for(bundle)
        value = "scip-inf-4"
        return policy, policy.top_k(value, 10), value

    policy, top, value = benchmark.pedantic(run, iterations=1, rounds=1)
    print_table(
        f"Figure 8 — Hospital, Π̂({value!r}) top-10",
        ["Transformation", "probability"],
        [[str(t), f"{p:.4f}"] for t, p in top],
    )
    assert top, "policy learned no applicable transformations"
    # Shape: x-writing transformations dominate the conditional mass.
    x_mass = sum(p for t, p in top if "x" in t.dst)
    assert x_mass > 0.5


def test_fig8_animal_policy(benchmark, bundles):
    bundle = bundles["animal"]

    def run():
        policy = _policy_for(bundle)
        value = "R"
        return policy.top_k(value, 10), value

    top, value = benchmark.pedantic(run, iterations=1, rounds=1)
    print_table(
        f"Figure 8 — Animal, Π̂({value!r}) top-10",
        ["Transformation", "probability"],
        [[str(t), f"{p:.4f}"] for t, p in top],
    )
    assert top, "policy learned no applicable transformations"
