"""Fit-path performance: warm (artifact-store-served) fit vs cold fit.

Companion to ``bench_feature_engine.py`` (predict path) and
``bench_incremental.py`` (re-score path): after ISSUE 5 the remaining slow
layer was *training-time* cost (§6.7, Table 5) — every ``fit()`` retrained
FastText embeddings from scratch on an unchanged corpus, and a Table-2
sweep refit bit-identical embeddings once per scenario.  The
content-addressed artifact store (:mod:`repro.artifacts`) serves those
fits instead.

Two gates, per the ISSUE 5 acceptance criteria:

- ``test_warm_fit_speedup`` — a warm ``fit()`` over a shared store is
  **≥3× faster** than the cold fit and the resulting predictions are
  **bit-for-bit identical**;
- ``test_sweep_artifact_sharing`` — a 2-worker ``repro sweep`` over a
  shared artifact directory produces metrics **bit-for-bit identical** to a
  cold sequential sweep, with a measured wall-clock reduction.

The measured numbers are written as JSON (to ``$REPRO_FIT_PATH_JSON`` if
set, else ``bench_fit_path.json``) so CI archives them as an artifact.

Run with ``pytest benchmarks/bench_fit_path.py -s`` to see the tables.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from conftest import BENCH_EPOCHS, bench_config, print_table

from repro.artifacts import ArtifactStore
from repro.core import HoloDetect
from repro.evaluation.matrix import ScenarioMatrix, run_matrix
from repro.evaluation.splits import make_split
from repro.utils.timing import Timer

_RESULTS_PATH = Path(os.environ.get("REPRO_FIT_PATH_JSON", "bench_fit_path.json"))


def _write_results(section: str, payload: dict) -> None:
    results = {}
    if _RESULTS_PATH.exists():
        try:
            results = json.loads(_RESULTS_PATH.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            results = {}
    results[section] = payload
    _RESULTS_PATH.write_text(json.dumps(results, indent=2), encoding="utf-8")


@pytest.mark.parametrize("dataset_name", ["hospital"])
def test_warm_fit_speedup(benchmark, core_bundles, tmp_path, dataset_name):
    bundle = core_bundles[dataset_name]
    split = make_split(bundle, 0.05, rng=7)
    config = bench_config(artifact_dir=str(tmp_path / "artifacts"))

    def run():
        cold_detector = HoloDetect(config)
        with Timer() as cold:
            cold_detector.fit(bundle.dirty, split.training, bundle.constraints)
        cold_preds = cold_detector.predict(split.test_cells)
        # A fresh detector *and* a fresh store instance: the warm fit is
        # served through the on-disk tier, the cross-process case.
        warm_detector = HoloDetect(config)
        with Timer() as warm:
            warm_detector.fit(bundle.dirty, split.training, bundle.constraints)
        warm_preds = warm_detector.predict(split.test_cells)
        return cold_preds, warm_preds, warm_detector, cold.elapsed, warm.elapsed

    cold_preds, warm_preds, warm_detector, t_cold, t_warm = benchmark.pedantic(
        run, iterations=1, rounds=1
    )
    speedup = t_cold / max(t_warm, 1e-9)
    stats = warm_detector.artifact_stats
    print_table(
        f"Warm vs cold fit — {dataset_name} "
        f"({bundle.dirty.num_rows} rows, {len(warm_detector.artifact_keys)} artifacts)",
        ["pass", "seconds"],
        [
            ["cold fit (trains embeddings)", f"{t_cold:.3f}"],
            ["warm fit (store-served)", f"{t_warm:.3f}"],
            ["speedup (cold/warm)", f"{speedup:.1f}x"],
            ["store", stats.summary()],
        ],
    )
    _write_results(
        "warm_fit",
        {
            "dataset": dataset_name,
            "rows": bundle.dirty.num_rows,
            "artifacts": len(warm_detector.artifact_keys),
            "seconds_cold": t_cold,
            "seconds_warm": t_warm,
            "speedup": speedup,
            "store_stats": stats.as_dict(),
        },
    )

    # ISSUE 5 acceptance: warm is exact...
    assert cold_preds.cells == warm_preds.cells
    assert cold_preds.probabilities.tobytes() == warm_preds.probabilities.tobytes()
    # ...and >=3x faster than retraining everything.
    assert speedup >= 3.0, f"expected >=3x warm-fit speedup, got {speedup:.2f}x"


ACCURACY_FIELDS = ("fingerprint", "spec", "metrics", "trials", "mean_f1", "std_f1")


def _accuracy_view(records):
    return [{k: r[k] for k in ACCURACY_FIELDS} for r in records]


def test_sweep_artifact_sharing(benchmark, tmp_path):
    """2-worker sweep over a shared artifact dir vs cold sequential sweep."""
    matrix = ScenarioMatrix.from_dict(
        {
            "datasets": [{"name": "hospital", "rows": 120}],
            "error_profiles": ["native"],
            "label_budgets": [0.1],
            "methods": [
                {"name": "holodetect", "epochs": BENCH_EPOCHS, "embedding_dim": 8,
                 "min_training_steps": 100},
                {"name": "superl", "epochs": BENCH_EPOCHS, "embedding_dim": 8,
                 "min_training_steps": 100},
            ],
            "trials": 2,
            "seed": 11,
        }
    )

    def run():
        with Timer() as sequential:
            cold = run_matrix(matrix, executor="serial")
        with Timer() as parallel:
            shared = run_matrix(
                matrix, workers=2, executor="process",
                artifact_dir=tmp_path / "sweep-artifacts",
            )
        return cold, shared, sequential.elapsed, parallel.elapsed

    cold, shared, t_cold, t_shared = benchmark.pedantic(run, iterations=1, rounds=1)
    reduction = t_cold / max(t_shared, 1e-9)
    stats = shared.artifacts["stats"]
    print_table(
        "Sweep: 2 workers + shared artifact dir vs cold sequential",
        ["configuration", "seconds"],
        [
            ["sequential, no artifacts", f"{t_cold:.3f}"],
            ["2 workers, shared artifacts", f"{t_shared:.3f}"],
            ["wall-clock reduction", f"{reduction:.2f}x"],
            ["store", f"{stats['hits']} hits / {stats['lookups']} lookups, "
                      f"{stats['puts']} stored"],
        ],
    )
    _write_results(
        "sweep_sharing",
        {
            "scenarios": cold.total,
            "seconds_sequential_cold": t_cold,
            "seconds_parallel_shared": t_shared,
            "reduction": reduction,
            "store_stats": stats,
        },
    )

    # ISSUE 5 acceptance: sweep metrics are bit-for-bit identical to the
    # cold sequential run...
    assert _accuracy_view(shared.records) == _accuracy_view(cold.records)
    # ...fits were actually shared (trials × methods reuse one relation)...
    assert stats["hits"] > 0
    # ...and the 2-worker shared-store sweep measurably reduces wall-clock.
    assert t_shared < t_cold, (
        f"expected a wall-clock reduction, got {t_shared:.2f}s vs {t_cold:.2f}s"
    )
