"""Incremental re-scoring: ``DetectionSession.apply`` vs full re-prediction.

Companion to ``bench_feature_engine.py`` and the Fig. 4 interactive loop:
the paper's deployment pattern is *label a few cells → re-score → repeat*.
This harness measures that loop's hot step.  A fitted AUG detector first
predicts the whole relation; then a 1%-of-cells edit batch (tuple repairs —
edits clustered on a few rows, the Fig. 4 workload shape) is applied through
a :class:`~repro.core.detector.DetectionSession`, which re-scores only the
cells whose features the edits can change, against a full ``predict()``
over the edited dataset.

Two things are asserted, per the ISSUE 2 acceptance criteria:

- the incremental path is **≥5× faster** than full re-prediction;
- the patched probabilities are **bit-for-bit identical** to the full pass
  — incrementality never changes a prediction.

The measured numbers are also written as JSON (to ``$REPRO_BENCH_JSON`` if
set, else ``bench_incremental.json`` in the working directory) so CI can
archive them as a build artifact.

Run with ``pytest benchmarks/bench_incremental.py -s`` to see the table.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from conftest import bench_config, print_table

from repro.core import DetectionSession, HoloDetect
from repro.dataset import Cell
from repro.evaluation.splits import make_split
from repro.utils.timing import Timer


def tuple_repair_edits(dataset, cells, fraction=0.01, seed=13):
    """An edit batch covering ``fraction`` of the relation's cells.

    Edits are clustered on whole tuples (each touched row is repaired
    across its attributes) — the shape of the paper's interactive repair
    loop — with replacement values drawn from the column's own domain so
    the edits stay realistic.
    """
    rng = np.random.default_rng(seed)
    n_edits = max(1, int(fraction * len(cells)))
    attrs = dataset.attributes
    n_rows = max(1, -(-n_edits // len(attrs)))  # ceil division
    rows = rng.choice(dataset.num_rows, size=n_rows, replace=False)
    edits: dict[Cell, str] = {}
    for row in rows:
        for attr in attrs:
            if len(edits) >= n_edits:
                break
            domain = dataset.domain(attr)
            current = dataset.value(Cell(int(row), attr))
            replacement = domain[int(rng.integers(len(domain)))]
            if replacement == current:
                replacement = current + "*"
            edits[Cell(int(row), attr)] = replacement
    return edits


@pytest.mark.parametrize("dataset_name", ["hospital"])
def test_incremental_rescore_speedup(benchmark, core_bundles, dataset_name):
    bundle = core_bundles[dataset_name]
    split = make_split(bundle, 0.05, rng=7)
    detector = HoloDetect(bench_config())
    detector.fit(bundle.dirty, split.training, bundle.constraints)
    dataset = bundle.dirty
    cells = [c for c in dataset.cells() if c not in detector._train_cells]

    def run():
        # Initial full pass (warm start for the interactive loop).
        session = DetectionSession(detector, cells)
        edits = tuple_repair_edits(dataset, cells)
        with Timer() as incremental:
            patched = session.apply(edits)
        # Full re-prediction over the *same edited dataset* — the incremental
        # path must reproduce exactly this, only faster.
        with Timer() as full:
            baseline = detector.predict(cells)
        return session, edits, patched, baseline, incremental.elapsed, full.elapsed

    session, edits, patched, baseline, t_incr, t_full = benchmark.pedantic(
        run, iterations=1, rounds=1
    )
    speedup = t_full / max(t_incr, 1e-9)
    print_table(
        f"Incremental re-scoring — {dataset_name} "
        f"({len(cells)} cells, {len(edits)} edits on "
        f"{len(session.last_delta.rows)} rows)",
        ["pass", "seconds"],
        [
            ["full re-prediction", f"{t_full:.3f}"],
            ["session.apply (incremental)", f"{t_incr:.3f}"],
            ["speedup (full/incremental)", f"{speedup:.1f}x"],
            ["cells re-scored", f"{session.rescored_cells}"],
        ],
    )

    results = {
        "dataset": dataset_name,
        "num_cells": len(cells),
        "num_edits": len(edits),
        "edited_rows": len(session.last_delta.rows),
        "cells_rescored": session.rescored_cells,
        "seconds_full": t_full,
        "seconds_incremental": t_incr,
        "speedup": speedup,
    }
    out_path = Path(os.environ.get("REPRO_BENCH_JSON", "bench_incremental.json"))
    out_path.write_text(json.dumps(results, indent=2), encoding="utf-8")

    # ISSUE 2 acceptance: the incremental path is exact...
    assert patched.cells == baseline.cells
    assert patched.probabilities.tobytes() == baseline.probabilities.tobytes()
    # ...and >=5x faster than full re-prediction for a 1% edit batch.
    assert speedup >= 5.0, f"expected >=5x speedup, got {speedup:.2f}x"
