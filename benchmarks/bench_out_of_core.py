"""Out-of-core sharded relations: bit-identity and bounded-memory gates.

Companion to ``bench_fit_path.py`` (warm-fit path): ISSUE 8's tentpole is
the row-sharded, memory-mapped dataset backing
(:mod:`repro.dataset.sharded`), whose contract is *indistinguishability* —
identical fingerprints, identical artifact keys, bit-identical predictions
— at a memory footprint bounded by shards, not the relation.

Two phases, per the acceptance criteria:

- ``test_overlap_bit_identity`` (in-process, overlap scale) — a detector
  fitted on the sharded twin of a relation over a store already warmed by
  the in-memory fit reuses every whole-state artifact (identical keys) and
  produces **bit-identical** predictions, streamed or not;
- ``test_scale_bounded_memory`` (subprocess-isolated, ``>=10x`` bench
  scale) — the base relation is tiled by ``$REPRO_OOC_FACTOR`` (default
  40, floor-asserted at 10) and each phase's peak RSS is measured in its
  own process: CSV->shard ingest and the full sharded detection workload
  (integrity pass, streaming partial fits, chunked streaming prediction)
  must both peak **below the in-memory footprint** of the tiled relation,
  while the in-memory twin of the same workload reports the same
  prediction checksum and relation fingerprint (bit-identity at scale).

The measured numbers are written as JSON (to ``$REPRO_OOC_JSON`` if set,
else ``bench_out_of_core.json``) so CI archives them as an artifact.

Run with ``pytest benchmarks/bench_out_of_core.py -s`` to see the tables.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from conftest import BENCH_ROWS, BENCH_SEED, bench_config, print_table

from repro.data import load_dataset
from repro.dataset.loader import write_csv
from repro.dataset.sharded import ShardedDataset
from repro.evaluation.splits import make_split
from repro.persistence import save_detector
from repro.utils.timing import Timer

_RESULTS_PATH = Path(os.environ.get("REPRO_OOC_JSON", "bench_out_of_core.json"))
_FACTOR = int(os.environ.get("REPRO_OOC_FACTOR", "40"))
_WORKER = Path(__file__).parent / "_ooc_worker.py"


def _write_results(section: str, payload: dict) -> None:
    results = {}
    if _RESULTS_PATH.exists():
        try:
            results = json.loads(_RESULTS_PATH.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            results = {}
    results[section] = payload
    _RESULTS_PATH.write_text(json.dumps(results, indent=2), encoding="utf-8")


def _detector_config(tmp_path: Path):
    from repro.core import HoloDetect

    config = bench_config(
        artifact_dir=str(tmp_path / "artifacts"),
        prediction_batch=256,
        cache_max_bytes=1_000_000,
    )
    return HoloDetect(config)


@pytest.fixture(scope="module")
def overlap(tmp_path_factory):
    """Base bundle, its sharded twin, and a detector fitted on each backing
    over one shared artifact store (in-memory first, so the sharded fit is
    the warm one)."""
    tmp = tmp_path_factory.mktemp("ooc")
    bundle = load_dataset("hospital", num_rows=BENCH_ROWS, seed=BENCH_SEED)
    sharded = ShardedDataset.convert(
        bundle.dirty, tmp / "shards", shard_rows=max(32, BENCH_ROWS // 8)
    )
    split = make_split(bundle, 0.05, rng=7)

    with Timer() as cold_timer:
        mem = _detector_config(tmp)
        mem.fit(bundle.dirty, split.training, bundle.constraints)
    with Timer() as warm_timer:
        ooc = _detector_config(tmp)
        ooc.fit(sharded, split.training, bundle.constraints)
    return {
        "tmp": tmp,
        "bundle": bundle,
        "sharded": sharded,
        "mem": mem,
        "ooc": ooc,
        "cold_seconds": cold_timer.elapsed,
        "warm_seconds": warm_timer.elapsed,
    }


def test_overlap_bit_identity(overlap):
    mem, ooc = overlap["mem"], overlap["ooc"]
    assert overlap["sharded"].fingerprint() == overlap["bundle"].dirty.fingerprint()

    # The sharded fit reused every whole-state artifact the in-memory fit
    # stored (per-shard partial keys are extra, recorded under /shard/).
    mem_keys = {k: v for k, v in mem.artifact_keys.items() if "/shard/" not in k}
    ooc_keys = {k: v for k, v in ooc.artifact_keys.items() if "/shard/" not in k}
    assert mem_keys == ooc_keys

    predictions = mem.predict()
    ooc_predictions = ooc.predict(predictions.cells)
    assert np.array_equal(predictions.probabilities, ooc_predictions.probabilities)

    streamed = list(ooc.iter_predict(iter(predictions.cells)))
    assert np.array_equal(
        np.fromiter((p for _, p in streamed), dtype=np.float64),
        predictions.probabilities,
    )

    payload = {
        "rows": overlap["bundle"].dirty.num_rows,
        "shards": overlap["sharded"].num_shards,
        "cold_fit_seconds": round(overlap["cold_seconds"], 3),
        "warm_sharded_fit_seconds": round(overlap["warm_seconds"], 3),
        "cells_scored": len(predictions.cells),
        "bit_identical": True,
    }
    _write_results("overlap", payload)
    print_table(
        "Out-of-core overlap scale: sharded vs in-memory",
        ["rows", "shards", "cold fit (s)", "warm sharded fit (s)", "identical"],
        [[
            payload["rows"], payload["shards"], payload["cold_fit_seconds"],
            payload["warm_sharded_fit_seconds"], "yes",
        ]],
    )


def _worker(args: list[str]) -> dict:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    # Pin BLAS pools: thread stacks would smear the RSS attribution.
    env.setdefault("OPENBLAS_NUM_THREADS", "1")
    env.setdefault("OMP_NUM_THREADS", "1")
    proc = subprocess.run(
        [sys.executable, str(_WORKER), *args],
        capture_output=True,
        text=True,
        env=env,
        check=False,
    )
    assert proc.returncode == 0, f"worker {args[0]} failed:\n{proc.stderr}"
    return json.loads(proc.stdout.splitlines()[-1])


def test_scale_bounded_memory(overlap, tmp_path):
    assert _FACTOR >= 10, "REPRO_OOC_FACTOR must keep the >=10x scale gate"
    bundle = overlap["bundle"]

    base_csv = tmp_path / "base.csv"
    write_csv(bundle.dirty, base_csv)
    model_dir = tmp_path / "model"
    save_detector(overlap["mem"], model_dir)

    shard_dir = tmp_path / "tiled-shards"
    common = ["--factor", str(_FACTOR)]
    ingest = _worker(
        ["ingest", "--csv", str(base_csv), "--out", str(shard_dir), *common]
    )
    footprint = ingest["inmemory_bytes"]
    assert ingest["num_rows"] == bundle.dirty.num_rows * _FACTOR

    workload = [
        "--model", str(model_dir), "--sample", "2000", "--seed", str(BENCH_SEED),
    ]
    sharded = _worker(
        ["workload", "--backing", "sharded", "--data", str(shard_dir), *workload]
    )
    inmemory = _worker(
        ["workload", "--backing", "inmemory", "--csv", str(base_csv), *common, *workload]
    )

    # Bit-identity at scale: same relation content, same fits, same scores.
    assert sharded["fingerprint"] == ingest["fingerprint"] == inmemory["fingerprint"]
    assert sharded["fit_checksum"] == inmemory["fit_checksum"]
    assert sharded["prediction_checksum"] == inmemory["prediction_checksum"]

    # Memory gates: every out-of-core phase peaks below what merely holding
    # the tiled relation in memory costs.
    assert ingest["peak_delta_bytes"] < footprint, (
        f"ingest peaked at {ingest['peak_delta_bytes']} >= footprint {footprint}"
    )
    assert sharded["peak_delta_bytes"] < footprint, (
        f"sharded workload peaked at {sharded['peak_delta_bytes']} "
        f">= footprint {footprint}"
    )

    payload = {
        "factor": _FACTOR,
        "rows": ingest["num_rows"],
        "shards": ingest["num_shards"],
        "inmemory_footprint_bytes": footprint,
        "ingest_peak_delta_bytes": ingest["peak_delta_bytes"],
        "sharded_peak_delta_bytes": sharded["peak_delta_bytes"],
        "inmemory_peak_delta_bytes": inmemory["peak_delta_bytes"],
        "cells_scored": sharded["cells_scored"],
        "prediction_checksum": sharded["prediction_checksum"],
        "bit_identical": True,
    }
    _write_results("scale", payload)

    def mb(b: int) -> str:
        return f"{b / 1e6:.1f}"

    print_table(
        f"Out-of-core at {_FACTOR}x bench scale ({ingest['num_rows']} rows)",
        ["phase", "peak RSS delta (MB)", "relation footprint (MB)"],
        [
            ["csv->shard ingest", mb(ingest["peak_delta_bytes"]), mb(footprint)],
            ["sharded workload", mb(sharded["peak_delta_bytes"]), mb(footprint)],
            ["in-memory workload", mb(inmemory["peak_delta_bytes"]), mb(footprint)],
        ],
    )
