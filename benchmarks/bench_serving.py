"""Serving-path performance: concurrent clients vs one client, coalescing on.

Companion to ``bench_incremental.py`` (the in-process rescore path): ISSUE 6
turns the detector into a long-lived service, and this benchmark gates the
property that makes the service worth having — **concurrency is close to
free**.  Four clients hammering one server coalesce into shared scoring
passes, so their p95 latency must stay within 2× of a lone client's p95
(the acceptance gate), while every response stays bit-identical to a direct
``HoloDetect`` computation on a freshly loaded model.

Reported (and archived as JSON to ``$REPRO_SERVING_JSON`` if set, else
``bench_serving.json``):

- single-client sequential p50/p95 latency and requests/sec;
- 4-client concurrent p50/p95 latency and aggregate requests/sec;
- the p95 ratio against the 2× gate, and batcher coalescing counters;
- tenant rescore (O(edit) session) round-trip latency.

Run with ``pytest benchmarks/bench_serving.py -s`` to see the tables.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from conftest import BENCH_EPOCHS, print_table

from repro import DetectorSpec, HoloDetect, load_dataset, make_split
from repro.persistence import load_detector, save_detector
from repro.serving import ServeClient, ServeConfig, probabilities_of
from repro.serving.testing import InProcessServer

_RESULTS_PATH = Path(os.environ.get("REPRO_SERVING_JSON", "bench_serving.json"))

CLIENTS = 4
REQUESTS_PER_CLIENT = 25
CELLS_PER_REQUEST = 30
P95_GATE = 2.0


def _write_results(section: str, payload: dict) -> None:
    results = {}
    if _RESULTS_PATH.exists():
        try:
            results = json.loads(_RESULTS_PATH.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            results = {}
    results[section] = payload
    _RESULTS_PATH.write_text(json.dumps(results, indent=2), encoding="utf-8")


def _p95(samples: list[float]) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]


def _queries(dataset) -> list[list[tuple[int, str]]]:
    """A deterministic rotation of small cell subsets over the relation."""
    attributes = dataset.attributes
    return [
        [
            (
                (index * 7 + k) % dataset.num_rows,
                attributes[(index + k) % len(attributes)],
            )
            for k in range(CELLS_PER_REQUEST)
        ]
        for index in range(REQUESTS_PER_CLIENT)
    ]


def test_concurrent_serving_latency(benchmark, tmp_path):
    bundle = load_dataset("hospital", num_rows=100, seed=5)
    split = make_split(bundle, 0.1, rng=0)
    spec = DetectorSpec.default(
        epochs=BENCH_EPOCHS, embedding_dim=8, lr=3e-3,
        min_training_steps=150, seed=0,
    )
    detector = HoloDetect.from_spec(spec)
    detector.fit(bundle.dirty, split.training, bundle.constraints)
    model_root = tmp_path / "models"
    save_detector(detector, model_root / "hospital")
    fingerprint = spec.fingerprint()
    queries = _queries(bundle.dirty)

    def run():
        # A 10ms coalescing window: the single client pays it on every
        # request (it is part of the measured baseline), and concurrent
        # clients amortise it across a merged scoring pass.
        config = ServeConfig(
            model_root=model_root,
            artifact_root=tmp_path / "artifacts",
            batch_window=0.01,
        )
        with InProcessServer(config) as harness:
            client = ServeClient(harness.host, harness.port)
            # Register the tenant (loads the model, scores the relation).
            client.detect(fingerprint, dataset=bundle.dirty, tenant="bench")

            # -- single client, sequential ------------------------------ #
            single_latencies: list[float] = []
            single_answers = []
            t0 = time.perf_counter()
            for query in queries:
                started = time.perf_counter()
                response = client.detect(tenant="bench", cells=query)
                single_latencies.append(time.perf_counter() - started)
                single_answers.append(probabilities_of(response))
            single_wall = time.perf_counter() - t0

            # -- CLIENTS concurrent clients, same query stream ---------- #
            def worker(_):
                worker_client = ServeClient(harness.host, harness.port)
                latencies, answers = [], []
                for query in queries:
                    started = time.perf_counter()
                    response = worker_client.detect(tenant="bench", cells=query)
                    latencies.append(time.perf_counter() - started)
                    answers.append(probabilities_of(response))
                return latencies, answers

            t0 = time.perf_counter()
            with ThreadPoolExecutor(max_workers=CLIENTS) as pool:
                outcomes = list(pool.map(worker, range(CLIENTS)))
            concurrent_wall = time.perf_counter() - t0
            concurrent_latencies = [t for lats, _ in outcomes for t in lats]

            # -- one rescore round-trip (the O(edit) session path) ------ #
            attr = bundle.dirty.attributes[0]
            started = time.perf_counter()
            rescore = client.rescore(
                "bench", [{"row": 0, "attribute": attr, "value": "edited"}],
                include_cells=False,
            )
            rescore_latency = time.perf_counter() - started
            batcher_stats = client.registry()["batcher"]
        return (
            single_latencies, single_wall, single_answers,
            concurrent_latencies, concurrent_wall, outcomes,
            rescore, rescore_latency, batcher_stats,
        )

    (
        single_latencies, single_wall, single_answers,
        concurrent_latencies, concurrent_wall, outcomes,
        rescore, rescore_latency, batcher_stats,
    ) = benchmark.pedantic(run, iterations=1, rounds=1)

    single_p95 = _p95(single_latencies)
    concurrent_p95 = _p95(concurrent_latencies)
    ratio = concurrent_p95 / max(single_p95, 1e-9)
    single_rps = len(single_latencies) / max(single_wall, 1e-9)
    concurrent_rps = len(concurrent_latencies) / max(concurrent_wall, 1e-9)

    print_table(
        f"Serving under concurrency — hospital (100 rows, "
        f"{CLIENTS} clients × {REQUESTS_PER_CLIENT} requests × "
        f"{CELLS_PER_REQUEST} cells)",
        ["configuration", "p50 (ms)", "p95 (ms)", "req/s"],
        [
            [
                "1 client, sequential",
                f"{1e3 * statistics.median(single_latencies):.1f}",
                f"{1e3 * single_p95:.1f}",
                f"{single_rps:.1f}",
            ],
            [
                f"{CLIENTS} clients, concurrent",
                f"{1e3 * statistics.median(concurrent_latencies):.1f}",
                f"{1e3 * concurrent_p95:.1f}",
                f"{concurrent_rps:.1f}",
            ],
            ["p95 ratio (gate <= 2.0x)", "", f"{ratio:.2f}x", ""],
            [
                "coalescing",
                "",
                f"{batcher_stats['coalesced_requests']} merged",
                f"{batcher_stats['batches']} batches",
            ],
            ["rescore round-trip", "", f"{1e3 * rescore_latency:.1f}", ""],
        ],
    )
    _write_results(
        "concurrent_serving",
        {
            "clients": CLIENTS,
            "requests_per_client": REQUESTS_PER_CLIENT,
            "cells_per_request": CELLS_PER_REQUEST,
            "single_p50_s": statistics.median(single_latencies),
            "single_p95_s": single_p95,
            "single_requests_per_s": single_rps,
            "concurrent_p50_s": statistics.median(concurrent_latencies),
            "concurrent_p95_s": concurrent_p95,
            "concurrent_requests_per_s": concurrent_rps,
            "p95_ratio": ratio,
            "p95_gate": P95_GATE,
            "rescore_latency_s": rescore_latency,
            "rescored_cells": rescore["rescored_cells"],
            "batcher": batcher_stats,
        },
    )

    # ISSUE 6 acceptance: every served answer is bit-identical to a direct
    # computation on a freshly loaded detector...
    baseline = load_detector(model_root / "hospital", bundle.dirty)
    baseline._train_cells = set()
    from repro.dataset.table import Cell

    for query, answer in zip(queries, single_answers):
        predictions = baseline.predict([Cell(r, a) for r, a in query])
        expected = {
            (cell.row, cell.attr): round(float(p), 6)
            for cell, p in zip(predictions.cells, predictions.probabilities)
        }
        assert answer == expected, "served answer drifted from direct predict"
    # ...concurrent clients see exactly the sequential answers...
    for _, answers in outcomes:
        assert answers == single_answers, (
            "concurrent responses diverged from the sequential baseline"
        )
    # ...requests actually coalesced...
    assert batcher_stats["coalesced_requests"] > 0, "no coalescing happened"
    # ...and concurrency is close to free: p95 within the 2x gate.
    assert ratio <= P95_GATE, (
        f"{CLIENTS}-client p95 is {ratio:.2f}x the single-client p95 "
        f"(gate {P95_GATE}x): {1e3 * concurrent_p95:.1f}ms vs "
        f"{1e3 * single_p95:.1f}ms"
    )
