"""Scenario-matrix sweep harness: parallel fan-out vs sequential ground truth.

The paper's evaluation is a grid (§6.1, Tables 2–5); ``repro sweep`` runs
that grid on a worker pool with a resumable result store.  This harness
exercises the full machinery at CI scale — a 2-dataset × 2-error-profile ×
2-method matrix — and asserts the ISSUE 3 acceptance criteria:

- the **process-pool** run (2 workers) produces **bit-identical** accuracy
  records (metrics, per-trial P/R/F1, mean/std) to the sequential run;
- after deleting half the store, a ``resume`` run re-executes **only** the
  missing scenarios and converges to the same records.

The sweep summary is also written as JSON (to ``$REPRO_SWEEP_JSON`` if
set, else ``bench_sweep_matrix.json`` in the working directory) so CI can
archive it as a build artifact.

Run with ``pytest benchmarks/bench_sweep_matrix.py -s`` to see the table.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from conftest import BENCH_SEED, print_table

from repro.evaluation.matrix import ScenarioMatrix, run_matrix
from repro.evaluation.store import ResultStore
from repro.utils.timing import Timer

#: 2 datasets × 2 error profiles × 1 budget × 2 methods = 8 scenarios.
#: Rows are kept small and fixed: this harness measures the *harness*, not
#: the detectors, so it must stay fast even at REPRO_BENCH_ROWS scale.
MATRIX_SPEC = {
    "datasets": [{"name": "hospital", "rows": 120}, {"name": "food", "rows": 120}],
    "error_profiles": ["native", "bart-mix"],
    "label_budgets": [0.1],
    "methods": ["cv", "od"],
    "trials": 3,
    "seed": BENCH_SEED,
}

#: The fields that must be bit-identical across executors (everything
#: except wall-clock noise).
ACCURACY_FIELDS = ("fingerprint", "spec", "metrics", "trials", "mean_f1", "std_f1")


def accuracy_view(records: list[dict]) -> list[dict]:
    return [{k: r[k] for k in ACCURACY_FIELDS} for r in records]


def test_sweep_parallel_matches_sequential_and_resumes(tmp_path):
    matrix = ScenarioMatrix.from_dict(MATRIX_SPEC)

    with Timer() as serial_timer:
        serial = run_matrix(matrix, workers=1)

    store = ResultStore(tmp_path / "store.jsonl")
    with Timer() as parallel_timer:
        parallel = run_matrix(
            matrix, store=store, resume=True, workers=2, executor="process"
        )
    assert parallel.workers == 2

    # Acceptance: bit-identical accuracy records, any executor.
    assert accuracy_view(parallel.records) == accuracy_view(serial.records)

    # Kill simulation: drop half the completed store, then resume.
    store_path = tmp_path / "store.jsonl"
    lines = store_path.read_text().splitlines()
    store_path.write_text("".join(line + "\n" for line in lines[: len(lines) // 2]))
    resumed = run_matrix(
        matrix,
        store=ResultStore(store_path),
        resume=True,
        workers=2,
        executor="process",
    )
    # Acceptance: only the deleted half re-executes, and records converge.
    assert resumed.executed == len(lines) - len(lines) // 2
    assert resumed.cached == len(lines) // 2
    assert accuracy_view(resumed.records) == accuracy_view(serial.records)

    print_table(
        "Sweep matrix (2 datasets x 2 profiles x 2 methods)",
        ["dataset", "profile", "method", "P", "R", "F1", "runtime (s)"],
        [
            [
                r["spec"]["dataset"],
                r["spec"]["error_profile"],
                r["spec"]["method"],
                f"{r['metrics']['precision']:.3f}",
                f"{r['metrics']['recall']:.3f}",
                f"{r['metrics']['f1']:.3f}",
                f"{r['median_runtime']:.2f}",
            ]
            for r in parallel.records
        ],
    )
    print(
        f"\nsequential: {serial_timer.elapsed:.2f}s   "
        f"2-worker process pool: {parallel_timer.elapsed:.2f}s   "
        f"resume re-ran {resumed.executed}/{resumed.total}"
    )

    payload = parallel.to_json()
    payload["sequential_seconds"] = serial_timer.elapsed
    payload["parallel_seconds"] = parallel_timer.elapsed
    out_path = Path(os.environ.get("REPRO_SWEEP_JSON", "bench_sweep_matrix.json"))
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out_path}")
