"""Table 1: benchmark dataset statistics.

Regenerates the dataset inventory (size, attributes, error counts) at bench
scale, confirming each bundle matches its published error profile.
"""

from __future__ import annotations

from conftest import print_table

from repro.data import DATASET_NAMES, load_dataset
from conftest import BENCH_ROWS, BENCH_SEED


def test_table1_dataset_statistics(benchmark):
    def run():
        return [load_dataset(name, num_rows=BENCH_ROWS, seed=BENCH_SEED).summary() for name in DATASET_NAMES]

    summaries = benchmark.pedantic(run, iterations=1, rounds=1)
    print_table(
        "Table 1 — datasets (bench scale)",
        ["Dataset", "Rows", "Attributes", "Errors", "Error rate", "Constraints"],
        [
            [s["dataset"], s["rows"], s["attributes"], s["errors"], s["error_rate"], s["constraints"]]
            for s in summaries
        ],
    )
    for s in summaries:
        assert s["errors"] > 0
