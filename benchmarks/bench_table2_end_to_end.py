"""Table 2: end-to-end P/R/F1 of every method on every dataset.

Paper protocol: 5% training data (10% for Hospital), ActiveL with k = 100
loops.  Bench scale: datasets at ``BENCH_ROWS`` rows, one split, ActiveL at
2 loops (raise via environment for paper-scale runs).

Expected shape (§6.2): AUG attains both high precision and high recall on
every dataset; CV/OD/FBI are one-sided and vary wildly across datasets;
SuperL has high precision but limited recall.
"""

from __future__ import annotations

import pytest

from conftest import bench_config, print_table
from methods import (
    activel_method,
    aug_method,
    cv_method,
    fbi_method,
    hc_method,
    lr_method,
    od_method,
    superl_method,
)

from repro.evaluation import run_trials

TRAINING_FRACTION = {"hospital": 0.10, "food": 0.05, "soccer": 0.05, "adult": 0.05, "animal": 0.05}


def _methods():
    cfg = bench_config()
    return [
        ("AUG", aug_method(cfg)),
        ("CV", cv_method()),
        ("HC", hc_method()),
        ("OD", od_method()),
        ("FBI", fbi_method()),
        ("LR", lr_method()),
        ("SuperL", superl_method(cfg)),
        ("ActiveL", activel_method(cfg, loops=2)),
    ]


@pytest.mark.parametrize("dataset_name", ["hospital", "food", "soccer", "adult", "animal"])
def test_table2(benchmark, bundles, dataset_name):
    bundle = bundles[dataset_name]
    fraction = TRAINING_FRACTION[dataset_name]

    def run():
        rows = []
        for name, method in _methods():
            result = run_trials(method, bundle, fraction, num_trials=1, seed=11)
            m = result.median
            rows.append([name, f"{m.precision:.3f}", f"{m.recall:.3f}", f"{m.f1:.3f}"])
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print_table(
        f"Table 2 — {dataset_name} (T = {fraction:.0%})",
        ["Method", "P", "R", "F1"],
        rows,
    )
    # Shape check: AUG is the best-or-near-best F1 on every dataset.
    f1 = {row[0]: float(row[3]) for row in rows}
    best = max(f1.values())
    assert f1["AUG"] >= best - 0.15, f"AUG F1 {f1['AUG']} far from best {best}"
