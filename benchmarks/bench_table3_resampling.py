"""Table 3: data augmentation versus resampling (and SuperL) across
training sizes.

Expected shape (§6.5): AUG dominates resampling at every size — duplicating
the few observed errors cannot cover unseen error types — and SuperL trails
AUG, most visibly at small sizes.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from conftest import bench_config, print_table
from methods import aug_method, superl_method

from repro.baselines import ResamplingDetector
from repro.evaluation import run_trials

SIZES = [0.02, 0.05, 0.10]


def resampling_method(config):
    def run(bundle, split, rng):
        det = ResamplingDetector(replace(config, seed=int(rng.integers(0, 2**31))))
        det.fit(bundle.dirty, split.training, bundle.constraints)
        return det.predict_error_cells(split.test_cells)

    return run


@pytest.mark.parametrize("dataset_name", ["hospital", "soccer", "adult"])
def test_table3_resampling(benchmark, core_bundles, dataset_name):
    bundle = core_bundles[dataset_name]
    cfg = bench_config()

    def run():
        rows = []
        for size in SIZES:
            aug = run_trials(aug_method(cfg), bundle, size, num_trials=1, seed=41).median.f1
            res = run_trials(
                resampling_method(cfg), bundle, size, num_trials=1, seed=41
            ).median.f1
            sup = run_trials(superl_method(cfg), bundle, size, num_trials=1, seed=41).median.f1
            rows.append([f"{size:.0%}", f"{aug:.3f}", f"{res:.3f}", f"{sup:.3f}"])
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print_table(
        f"Table 3 — {dataset_name}",
        ["Size of T", "AUG", "Resampling", "SuperL"],
        rows,
    )
    # Shape: AUG beats (or matches) resampling at 5% and above.  The 2% row
    # is reported but not asserted: §6.5 notes resampling's best case is
    # exactly Hospital's homogeneous typo errors, and at bench scale 2%
    # is a handful of labelled tuples where either method can win a single
    # split.
    for row in rows:
        if row[0] != "2%":
            assert float(row[1]) >= float(row[2]) - 0.1
