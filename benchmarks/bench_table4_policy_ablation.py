"""Table 4: learned augmentation versus random / policy-free augmentation.

Three strategies are compared at two training sizes:

- **AUG** — transformations and policy both learned (Algorithms 1–3);
- **Rand. Trans.** — completely random transformations, not data-derived;
- **AUG w/o Policy** — learned Φ, but applied uniformly at random.

Expected shape (§6.6): AUG on top; random transformations fail to match the
dataset's error distribution; the learned distribution matters beyond the
learned transformation set.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from conftest import bench_config, print_table

from repro.baselines import RandomChannelPolicy, uniform_policy_from
from repro.core import HoloDetect
from repro.evaluation import evaluate_predictions, make_split

SIZES = [0.05, 0.10]


def _run_variant(bundle, split, policy_override) -> float:
    config = replace(bench_config(), policy_override=policy_override)
    detector = HoloDetect(config)
    detector.fit(bundle.dirty, split.training, bundle.constraints)
    return evaluate_predictions(
        detector.predict_error_cells(split.test_cells), bundle.error_cells, split.test_cells
    ).f1


@pytest.mark.parametrize("dataset_name", ["hospital", "soccer", "adult"])
def test_table4_policy_ablation(benchmark, core_bundles, dataset_name):
    bundle = core_bundles[dataset_name]

    def run():
        rows = []
        for size in SIZES:
            split = make_split(bundle, size, rng=6)
            aug = _run_variant(bundle, split, None)
            rand = _run_variant(bundle, split, RandomChannelPolicy(seed=0))
            nopol = _run_variant(
                bundle, split, uniform_policy_from(bundle.dirty, split.training)
            )
            rows.append([f"{size:.0%}", f"{aug:.3f}", f"{rand:.3f}", f"{nopol:.3f}"])
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print_table(
        f"Table 4 — {dataset_name}",
        ["T", "AUG", "Rand. Trans.", "AUG w/o Policy"],
        rows,
    )
    # Shape: learned augmentation is not dominated by the random channel.
    for row in rows:
        assert float(row[1]) >= float(row[2]) - 0.1
