"""Table 5: runtime of each method.

Wall-clock seconds per method on Hospital, Soccer, and Adult (bench scale).

Expected shape (§6.7): iterative methods (ActiveL) cost a multiple of AUG;
the unsupervised detectors (CV/OD) are the cheapest; AUG's runtime is the
same order of magnitude as plain supervised training.
"""

from __future__ import annotations

import pytest

from conftest import bench_config, print_table
from methods import (
    activel_method,
    aug_method,
    cv_method,
    lr_method,
    od_method,
    superl_method,
)

from repro.evaluation import run_trials


@pytest.mark.parametrize("dataset_name", ["hospital", "soccer", "adult"])
def test_table5_runtime(benchmark, core_bundles, dataset_name):
    bundle = core_bundles[dataset_name]
    cfg = bench_config()
    methods = [
        ("AUG", aug_method(cfg)),
        ("CV", cv_method()),
        ("OD", od_method()),
        ("LR", lr_method()),
        ("SuperL", superl_method(cfg)),
        ("ActiveL", activel_method(cfg, loops=2)),
    ]

    def run():
        rows = []
        runtimes = {}
        for name, method in methods:
            result = run_trials(method, bundle, 0.05, num_trials=1, seed=51)
            runtimes[name] = result.median_runtime
            rows.append([name, f"{result.median_runtime:.2f}"])
        return rows, runtimes

    rows, runtimes = benchmark.pedantic(run, iterations=1, rounds=1)
    print_table(f"Table 5 — runtimes (s) on {dataset_name}", ["Method", "seconds"], rows)
    # Shape: the active-learning loop costs more than a single AUG fit, and
    # the rule-based detector is cheaper than any learned method.
    assert runtimes["ActiveL"] > runtimes["AUG"]
    assert runtimes["CV"] < runtimes["AUG"]
