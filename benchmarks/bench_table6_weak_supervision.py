"""Table 6: precision/recall of the Naïve Bayes weak-supervision model.

The unsupervised repair model of §5.4 is scored on how well its suggested
repairs point at genuinely erroneous cells.  The model is cheap, so this
bench runs at a larger scale than the detector benches (≥1000 rows) — the
co-occurrence evidence it relies on needs volume.

Expected shape (§6.7): precision is the contract (the paper reports > 0.7
everywhere; recall is free to be low, e.g. 5.3% on Soccer).  On datasets
whose errors fall mostly in weakly-correlated attributes the model may
abstain entirely, which is the correct precision-preserving behaviour.
"""

from __future__ import annotations

import pytest

from conftest import BENCH_ROWS, BENCH_SEED, print_table

from repro.augmentation import NaiveBayesRepairModel
from repro.data import load_dataset
from repro.evaluation import evaluate_predictions

ROWS = {"hospital": max(BENCH_ROWS, 1000), "soccer": max(BENCH_ROWS, 2000), "adult": max(BENCH_ROWS, 2000)}


@pytest.mark.parametrize("dataset_name", ["hospital", "soccer", "adult"])
def test_table6_weak_supervision(benchmark, dataset_name):
    bundle = load_dataset(dataset_name, num_rows=ROWS[dataset_name], seed=BENCH_SEED)

    def run():
        model = NaiveBayesRepairModel(confidence_threshold=0.9).fit(bundle.dirty)
        repairs = model.suggest_repairs(bundle.dirty)
        predicted = {r.cell for r in repairs}
        return evaluate_predictions(predicted, bundle.error_cells, list(bundle.dirty.cells()))

    metrics = benchmark.pedantic(run, iterations=1, rounds=1)
    suggested = metrics.true_positives + metrics.false_positives
    print_table(
        "Table 6 — weak supervision",
        ["Dataset", "Precision", "Recall", "#suggestions"],
        [[dataset_name, f"{metrics.precision:.3f}", f"{metrics.recall:.3f}", suggested]],
    )
    # Shape: when the model does suggest repairs, it is precise.
    if suggested >= 20:
        assert metrics.precision > 0.5
