"""Table 8 (Appendix A.2.1): AUG with a fraction ρ of the constraints.

Random subsets of ρ × |Σ| constraints are sampled (paper: 21 samples; bench:
3) and AUG's median metrics reported per ρ.

Expected shape: graceful degradation — F1 drifts down as constraints are
removed but never collapses, because the other nine representation models
carry the signal.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import bench_config, print_table

from repro.core import HoloDetect
from repro.evaluation import evaluate_predictions, make_split

RHOS = [0.2, 0.6, 1.0]
SAMPLES_PER_RHO = 2


@pytest.mark.parametrize("dataset_name", ["hospital", "soccer", "adult"])
def test_table8_limited_constraints(benchmark, core_bundles, dataset_name):
    bundle = core_bundles[dataset_name]
    split = make_split(bundle, 0.10, rng=8)
    rng = np.random.default_rng(8)

    def evaluate_with(constraints) -> float:
        detector = HoloDetect(bench_config())
        detector.fit(bundle.dirty, split.training, constraints)
        return evaluate_predictions(
            detector.predict_error_cells(split.test_cells),
            bundle.error_cells,
            split.test_cells,
        ).f1

    def run():
        rows = []
        total = len(bundle.constraints)
        for rho in RHOS:
            keep = max(1, int(round(rho * total)))
            samples = []
            trials = 1 if rho == 1.0 else SAMPLES_PER_RHO
            for _ in range(trials):
                idx = rng.choice(total, size=keep, replace=False)
                subset = [bundle.constraints[int(i)] for i in idx]
                samples.append(evaluate_with(subset))
            rows.append([f"{rho:.1f}", f"{float(np.median(samples)):.3f}"])
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print_table(f"Table 8 — {dataset_name} (ρ × constraints)", ["rho", "median F1"], rows)
    # Shape: losing constraints costs at most a bounded amount of F1.
    assert float(rows[0][1]) >= float(rows[-1][1]) - 0.25
