"""Table 9 (Appendix A.2.2): AUG with α-noisy denial constraints.

Noisy constraints are discovered from the dirty data (Definition A.1:
satisfied by α percent of tuple pairs) in bands of α, and AUG runs with a
sampled noisy constraint set of the same cardinality as the clean Σ.

Expected shape: impact of noisy constraints is modest — the classifier
learns to down-weight the unreliable violation features — and higher-α
bands hurt less than lower ones.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import bench_config, print_table

from repro.constraints.discovery import score_candidate_fds
from repro.core import HoloDetect
from repro.evaluation import evaluate_predictions, make_split

BANDS = [(0.55, 0.75), (0.75, 0.95)]


@pytest.mark.parametrize("dataset_name", ["hospital", "soccer", "adult"])
def test_table9_noisy_constraints(benchmark, core_bundles, dataset_name):
    bundle = core_bundles[dataset_name]
    split = make_split(bundle, 0.10, rng=9)
    rng = np.random.default_rng(9)

    def evaluate_with(constraints) -> float:
        detector = HoloDetect(bench_config())
        detector.fit(bundle.dirty, split.training, constraints)
        return evaluate_predictions(
            detector.predict_error_cells(split.test_cells),
            bundle.error_cells,
            split.test_cells,
        ).f1

    def run():
        candidates = score_candidate_fds(bundle.dirty)
        clean_f1 = evaluate_with(bundle.constraints)
        rows = [["clean Σ", f"{clean_f1:.3f}"]]
        cardinality = max(len(bundle.constraints), 1)
        for lo, hi in BANDS:
            in_band = [c.constraint for c in candidates if lo < c.alpha <= hi]
            if not in_band:
                rows.append([f"α ∈ ({lo}, {hi}]", "n/a (no constraints in band)"])
                continue
            idx = rng.choice(len(in_band), size=min(cardinality, len(in_band)), replace=False)
            noisy = [in_band[int(i)] for i in idx]
            rows.append([f"α ∈ ({lo}, {hi}]", f"{evaluate_with(noisy):.3f}"])
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print_table(f"Table 9 — {dataset_name} (noisy constraints)", ["Σ", "F1"], rows)
    # Shape: noisy constraints do not collapse the detector.
    numeric = [float(r[1]) for r in rows if not r[1].startswith("n/a")]
    assert min(numeric) >= max(numeric) - 0.35
