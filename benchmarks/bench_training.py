"""Training-core performance: fused numpy backend vs the autodiff graph.

ISSUE 7's tentpole gate.  The ``reference`` backend is the hand-rolled
autodiff stack (:mod:`repro.nn.tensor`) — per-op Python dispatch, one
graph node per elementary numpy call.  The ``numpy`` backend replays the
*same* elementary operations as fused minibatch kernels with preallocated
buffers (:mod:`repro.nn.backends.numpy_backend`), so at float64 the two
are bit-for-bit interchangeable and the speedup is pure dispatch/allocation
overhead removed.

Gates:

- ``test_fused_training_speedup`` — a cold ``train_model`` run on the
  ``numpy`` backend is **≥5× faster** than the ``reference`` backend at
  bench scale, with **bit-identical** final parameters and loss history;
- ``test_fused_predict_bit_identical`` — the fused prediction path matches
  the graph forward bit-for-bit (the path the golden metrics pin);
- ``test_float32_training`` — the float32 compute mode trains to within a
  small documented distance of the float64 run;
- ``test_torch_backend_tolerance`` — the optional torch backend matches
  within documented tolerance (skipped when torch is absent).

The bench scale mirrors the paper's few-shot regime: a few hundred
examples, branch widths at the benchmark harness's ``embedding_dim=8``,
and small minibatches (HoloDetect trains with batch size 5 — §6.1), which
is exactly where per-step Python overhead dominates.  The speedup gate is
measured in **process CPU time** (best of three interleaved rounds) so
noisy-neighbour contention on shared CI runners cannot skew the ratio in
either direction; wall-clock is reported alongside and matches on a quiet
machine.  The measured numbers are written as JSON (to
``$REPRO_TRAINING_JSON`` if set, else ``bench_training.json``) so CI
archives them as an artifact.

Run with ``pytest benchmarks/bench_training.py -s`` to see the table.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from conftest import print_table

from repro.core.model import JointModel
from repro.core.training import TrainerConfig, train_model
from repro.features.pipeline import CellFeatures
from repro.nn.backend import resolve_backend

_RESULTS_PATH = Path(os.environ.get("REPRO_TRAINING_JSON", "bench_training.json"))

#: Scale knobs (env-overridable for CI smoke runs).
_STEPS = int(os.environ.get("REPRO_TRAINING_STEPS", "800"))
_MIN_SPEEDUP = float(os.environ.get("REPRO_TRAINING_MIN_SPEEDUP", "5.0"))

_N = 400
_NUMERIC_DIM = 8
_BRANCH_DIMS = {"char": 8, "tuple": 8, "word": 8}
_TRAIN = dict(epochs=40, batch_size=8, min_steps=_STEPS, seed=3)


def _write_results(section: str, payload: dict) -> None:
    results = {}
    if _RESULTS_PATH.exists():
        try:
            results = json.loads(_RESULTS_PATH.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            results = {}
    results[section] = payload
    _RESULTS_PATH.write_text(json.dumps(results, indent=2), encoding="utf-8")


def _build(seed: int = 1) -> tuple[JointModel, CellFeatures, np.ndarray]:
    """A fresh synthetic training problem at bench scale.

    Synthetic features keep the measurement pure training-core: no dataset
    generation, featurisation, or embedding fits in the timed region.
    """
    rng = np.random.default_rng(0)
    features = CellFeatures(
        numeric=rng.normal(size=(_N, _NUMERIC_DIM)),
        branches={k: rng.normal(size=(_N, d)) for k, d in _BRANCH_DIMS.items()},
    )
    labels = rng.integers(0, 2, size=_N)
    model = JointModel(
        _NUMERIC_DIM,
        _BRANCH_DIMS,
        hidden_dim=16,
        dropout=0.2,
        rng=np.random.default_rng(seed),
    )
    return model, features, labels


def _timed_train(backend: str, **overrides) -> tuple[JointModel, list, float, float]:
    """Train a fresh model; returns ``(model, history, wall_s, cpu_s)``."""
    config = TrainerConfig(**{**_TRAIN, **overrides}, backend=backend)
    model, features, labels = _build()
    wall0, cpu0 = time.perf_counter(), time.process_time()
    history = train_model(model, features, labels, config)
    return (
        model,
        history,
        time.perf_counter() - wall0,
        time.process_time() - cpu0,
    )


def _warm_up() -> None:
    """Initialise BLAS threading / allocator state outside the timed region."""
    for backend in ("reference", "numpy"):
        model, features, labels = _build()
        train_model(
            model, features, labels,
            TrainerConfig(epochs=2, batch_size=32, min_steps=8, seed=3,
                          backend=backend),
        )


def test_fused_training_speedup():
    _warm_up()
    # Interleave the rounds and keep the best of each so a scheduler noise
    # spike in any single round cannot skew the ratio either way.
    graph_wall = graph_cpu = fused_wall = fused_cpu = float("inf")
    for _ in range(4):
        graph_model, graph_history, wall_s, cpu_s = _timed_train("reference")
        graph_wall, graph_cpu = min(graph_wall, wall_s), min(graph_cpu, cpu_s)
        fused_model, fused_history, wall_s, cpu_s = _timed_train("numpy")
        fused_wall, fused_cpu = min(fused_wall, wall_s), min(fused_cpu, cpu_s)

    wall_speedup = graph_wall / fused_wall
    cpu_speedup = graph_cpu / fused_cpu
    identical = all(
        np.array_equal(a, b)
        for a, b in zip(graph_model.state_arrays(), fused_model.state_arrays())
    )
    print_table(
        "Cold training: autodiff graph vs fused numpy backend",
        ["backend", "wall (s)", "cpu (s)", "speedup (cpu)", "bit-identical"],
        [
            ["reference", f"{graph_wall:.3f}", f"{graph_cpu:.3f}", "1.00x", "—"],
            [
                "numpy",
                f"{fused_wall:.3f}",
                f"{fused_cpu:.3f}",
                f"{cpu_speedup:.2f}x",
                identical,
            ],
        ],
    )
    _write_results(
        "cold_training",
        {
            "steps": _STEPS,
            "graph_wall_seconds": round(graph_wall, 4),
            "fused_wall_seconds": round(fused_wall, 4),
            "graph_cpu_seconds": round(graph_cpu, 4),
            "fused_cpu_seconds": round(fused_cpu, 4),
            "wall_speedup": round(wall_speedup, 2),
            "cpu_speedup": round(cpu_speedup, 2),
            "bit_identical": identical,
        },
    )
    assert identical, "fused float64 training must be bit-identical to the graph"
    assert graph_history == fused_history, "loss history diverged"
    assert cpu_speedup >= _MIN_SPEEDUP, (
        f"fused backend only {cpu_speedup:.2f}x faster (gate: {_MIN_SPEEDUP}x)"
    )


def test_fused_predict_bit_identical():
    model, features, labels = _build()
    train_model(
        model, features, labels,
        TrainerConfig(epochs=2, batch_size=32, min_steps=8, seed=3),
    )
    graph_logits = resolve_backend("reference").predict_logits(model, features)
    fused_logits = resolve_backend("numpy").predict_logits(model, features)
    assert np.array_equal(graph_logits, fused_logits)


def test_float32_training():
    ref_model, _, _, _ = _timed_train("numpy")
    f32_model, history, _, _ = _timed_train("numpy", dtype="float32")
    diff = max(
        float(np.abs(a - b).max())
        for a, b in zip(ref_model.state_arrays(), f32_model.state_arrays())
    )
    _write_results(
        "float32", {"max_param_diff_vs_float64": diff, "steps": _STEPS}
    )
    assert all(np.isfinite(loss) for loss in history)
    # Documented float32 proximity (loss is still accumulated in float64).
    assert diff < 1e-3, f"float32 drifted {diff:.2e} from float64"


def test_torch_backend_tolerance():
    pytest.importorskip("torch")
    f64_model, f64_history, _, _ = _timed_train("numpy")
    torch_model, torch_history, _, _ = _timed_train("torch")
    diff = max(
        float(np.abs(a - b).max())
        for a, b in zip(f64_model.state_arrays(), torch_model.state_arrays())
    )
    _write_results("torch", {"max_param_diff_vs_numpy": diff, "steps": _STEPS})
    assert diff < 1e-6, f"torch drifted {diff:.2e} from the numpy backend"
