"""Shared infrastructure for the benchmark harness.

Every module in this directory regenerates one table or figure of the
paper's evaluation (§6 / Appendix A.2) at a scale that runs offline on a
CPU in minutes.  Set the ``REPRO_BENCH_ROWS`` environment variable to raise
the dataset scale (e.g. to the paper's original sizes) and
``REPRO_BENCH_EPOCHS`` to deepen training toward the paper's 500 epochs.

Rows are printed with the same structure the paper reports, so a run of
``pytest benchmarks/ --benchmark-only -s`` reproduces each table's layout.
The benchmark→paper index lives in ``docs/architecture.md``.

All detector-based benchmarks run with the batched featurization engine and
feature cache on (the ``DetectorConfig`` defaults); its speedup is measured
— not assumed — by ``bench_feature_engine.py``.
"""

from __future__ import annotations

import os

import pytest

from repro.core import DetectorConfig

#: Default scaled-down knobs (overridable via environment).
BENCH_ROWS = int(os.environ.get("REPRO_BENCH_ROWS", "300"))
BENCH_EPOCHS = int(os.environ.get("REPRO_BENCH_EPOCHS", "20"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "1"))


def bench_config(**overrides) -> DetectorConfig:
    """The fast detector configuration shared by all benchmarks."""
    defaults = dict(
        epochs=BENCH_EPOCHS,
        embedding_dim=8,
        lr=3e-3,
        # A slightly lower step floor than the library default keeps the
        # full benchmark suite within a laptop-scale time budget.
        min_training_steps=600,
        seed=0,
    )
    defaults.update(overrides)
    return DetectorConfig(**defaults)


def print_table(title: str, header: list[str], rows: list[list[object]]) -> None:
    """Print a paper-style table (the harness's reporting format)."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows)) for i in range(len(header))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))


#: Per-dataset row floors.  Adult's published error rate is 0.1% of cells —
#: at a few hundred rows it would carry almost no errors at all.  Food and
#: Soccer need enough volume for the weak-supervision channel to find
#: example pairs (their errors are mostly swaps, which only co-occurrence
#: evidence at some scale can expose).
MIN_ROWS = {"adult": 2000, "food": 600, "soccer": 600, "animal": 1500}


def dataset_rows(name: str) -> int:
    return max(BENCH_ROWS, MIN_ROWS.get(name, 0))


@pytest.fixture(scope="session")
def bundles():
    """The five benchmark datasets at bench scale, generated once."""
    from repro.data import DATASET_NAMES, load_dataset

    return {
        name: load_dataset(name, num_rows=dataset_rows(name), seed=BENCH_SEED)
        for name in DATASET_NAMES
    }


@pytest.fixture(scope="session")
def core_bundles(bundles):
    """The three datasets the paper's micro-benchmarks focus on."""
    return {k: bundles[k] for k in ("hospital", "soccer", "adult")}
