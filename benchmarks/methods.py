"""Method registry shared by the Table 2 / Table 5 benchmarks.

Each entry builds a detector following the common protocol and returns the
cells it flags, given a bundle and an evaluation split — the ``MethodFn``
shape the experiment runner consumes.
"""

from __future__ import annotations

from dataclasses import replace

from repro.baselines import (
    ActiveLearningDetector,
    ConstraintViolationDetector,
    ForbiddenItemsetDetector,
    GroundTruthOracle,
    HoloCleanDetector,
    LogisticRegressionDetector,
    OutlierDetector,
    SemiSupervisedDetector,
    SupervisedDetector,
)
from repro.core import DetectorConfig, HoloDetect
from repro.data.bundle import DatasetBundle
from repro.evaluation.splits import EvaluationSplit


def aug_method(config: DetectorConfig):
    def run(bundle: DatasetBundle, split: EvaluationSplit, rng):
        detector = HoloDetect(replace(config, seed=int(rng.integers(0, 2**31))))
        detector.fit(bundle.dirty, split.training, bundle.constraints)
        return detector.predict_error_cells(split.test_cells)

    return run


def cv_method():
    def run(bundle, split, rng):
        det = ConstraintViolationDetector().fit(bundle.dirty, constraints=bundle.constraints)
        return det.predict_error_cells(split.test_cells)

    return run


def hc_method():
    def run(bundle, split, rng):
        det = HoloCleanDetector().fit(bundle.dirty, constraints=bundle.constraints)
        return det.predict_error_cells(split.test_cells)

    return run


def od_method():
    def run(bundle, split, rng):
        det = OutlierDetector().fit(bundle.dirty)
        return det.predict_error_cells(split.test_cells)

    return run


def fbi_method():
    def run(bundle, split, rng):
        det = ForbiddenItemsetDetector().fit(bundle.dirty)
        return det.predict_error_cells(split.test_cells)

    return run


def lr_method():
    def run(bundle, split, rng):
        det = LogisticRegressionDetector(seed=int(rng.integers(0, 2**31)))
        det.fit(bundle.dirty, split.training, bundle.constraints)
        return det.predict_error_cells(split.test_cells)

    return run


def superl_method(config: DetectorConfig):
    def run(bundle, split, rng):
        det = SupervisedDetector(replace(config, seed=int(rng.integers(0, 2**31))))
        det.fit(bundle.dirty, split.training, bundle.constraints)
        return det.predict_error_cells(split.test_cells)

    return run


def semil_method(config: DetectorConfig, rounds: int = 1):
    def run(bundle, split, rng):
        det = SemiSupervisedDetector(
            replace(config, seed=int(rng.integers(0, 2**31))),
            rounds=rounds,
            unlabeled_pool_size=1000,
        )
        det.fit(bundle.dirty, split.training, bundle.constraints)
        return det.predict_error_cells(split.test_cells)

    return run


def activel_method(config: DetectorConfig, loops: int):
    def run(bundle, split, rng):
        oracle = GroundTruthOracle(bundle)
        det = ActiveLearningDetector(
            oracle,
            split.sampling_cells,
            loops=loops,
            labels_per_loop=50,
            config=replace(config, seed=int(rng.integers(0, 2**31))),
        )
        det.fit(bundle.dirty, split.training, bundle.constraints)
        return det.predict_error_cells(split.test_cells)

    return run
