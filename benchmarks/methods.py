"""Method registry shared by the Table 2 / Table 5 benchmarks.

Thin wrappers over :mod:`repro.baselines.adapters` — the library's uniform
method registry — kept here so benchmark modules can keep passing a
prepared :class:`DetectorConfig` instead of a parameter mapping.  Each
wrapper returns the ``MethodFn`` shape the experiment runner consumes.
"""

from __future__ import annotations

from dataclasses import asdict

from repro.baselines.adapters import build_method
from repro.core import DetectorConfig


def aug_method(config: DetectorConfig):
    return build_method("holodetect", asdict(config))


def cv_method():
    return build_method("cv")


def hc_method():
    return build_method("hc")


def od_method():
    return build_method("od")


def fbi_method():
    return build_method("fbi")


def lr_method():
    return build_method("lr")


def superl_method(config: DetectorConfig):
    return build_method("superl", asdict(config))


def semil_method(config: DetectorConfig, rounds: int = 1):
    return build_method(
        "semil", {**asdict(config), "rounds": rounds, "unlabeled_pool_size": 1000}
    )


def activel_method(config: DetectorConfig, loops: int):
    return build_method(
        "activel", {**asdict(config), "loops": loops, "labels_per_loop": 50}
    )
