"""Cleaning your own CSV: the full workflow on user-supplied data.

This example builds a small product-catalog CSV on the fly (standing in for
"your data"), writes it to disk, then walks the workflow a downstream user
follows:

1. load the CSV with ``read_csv``;
2. declare what is known about the data as denial constraints (here: SKU
   determines product name and price band; zip determines warehouse city);
3. label a small sample of tuples by hand (simulated here from the known
   truth);
4. fit HoloDetect and triage the most suspicious cells by calibrated
   probability — the ranking a data steward would review first.

    python examples/custom_dataset_cleaning.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import DetectorConfig, HoloDetect, TrainingSet
from repro.constraints import functional_dependency, parse_denial_constraint
from repro.dataset import Cell, Dataset, GroundTruth, read_csv, write_csv
from repro.errors import ErrorProfile, inject_errors


def build_catalog(num_rows: int = 400, seed: int = 3) -> tuple[Dataset, GroundTruth]:
    """A clean product catalog, then corrupted with typos and swaps."""
    rng = np.random.default_rng(seed)
    skus = [f"SKU-{i:04d}" for i in range(40)]
    names = [f"Widget {chr(65 + i % 26)}{i // 26}" for i in range(40)]
    bands = ["budget", "standard", "premium"]
    zips = ["94103", "60612", "10001", "73301"]
    cities = {"94103": "San Francisco", "60612": "Chicago", "10001": "New York", "73301": "Austin"}
    rows = []
    for _ in range(num_rows):
        idx = int(rng.integers(0, len(skus)))
        zip_code = zips[int(rng.integers(0, len(zips)))]
        rows.append(
            [
                skus[idx],
                names[idx],
                bands[idx % len(bands)],
                zip_code,
                cities[zip_code],
                f"{rng.integers(1, 500)} units",
            ]
        )
    clean = Dataset.from_rows(
        ["sku", "product", "price_band", "zip", "warehouse_city", "stock"], rows
    )
    profile = ErrorProfile(error_rate=0.03, typo_fraction=0.5)
    dirty, truth = inject_errors(clean, profile, rng=seed)
    return dirty, truth


def main() -> None:
    dirty, truth = build_catalog()

    # Round-trip through CSV, as a real user would start from a file.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "catalog.csv"
        write_csv(dirty, path)
        dataset = read_csv(path)
    print(f"loaded {dataset!r} from CSV")

    # Domain knowledge as constraints — both the FD helper and the raw
    # denial-constraint syntax are available.
    constraints = [
        functional_dependency("sku", "product"),
        functional_dependency("sku", "price_band"),
        parse_denial_constraint("t1.zip == t2.zip & t1.warehouse_city != t2.warehouse_city"),
    ]

    # Label 40 tuples "by hand" (simulated from the known truth).
    rng = np.random.default_rng(0)
    labelled_rows = rng.choice(dataset.num_rows, size=40, replace=False)
    labelled_cells = [
        Cell(int(r), attr) for r in labelled_rows for attr in dataset.attributes
    ]
    training = TrainingSet.from_cells(labelled_cells, dataset, truth)
    print(f"labelled {len(training)} cells, {len(training.errors)} of them errors")

    detector = HoloDetect(DetectorConfig(epochs=30, seed=0))
    detector.fit(dataset, training, constraints)

    # Triage: rank unlabelled cells by calibrated error probability.
    predictions = detector.predict()
    ranked = sorted(
        zip(predictions.cells, predictions.probabilities), key=lambda t: -t[1]
    )
    print("\ntop suspicious cells (review queue):")
    hits = 0
    for cell, probability in ranked[:10]:
        is_real = truth.is_error(cell, dataset)
        hits += is_real
        print(
            f"  p={probability:.3f}  {cell.attr:15s} row {cell.row:4d}  "
            f"value={dataset.value(cell)!r}  real_error={is_real}"
        )
    print(f"\n{hits}/10 of the top-ranked cells are true errors")


if __name__ == "__main__":
    main()
