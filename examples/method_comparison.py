"""Comparing detection paradigms on one dataset (a miniature Table 2).

Runs the rule-based (CV), repair-based (HC), statistical (OD, FBI),
feature-engineered (LR), and learned (SuperL, AUG) detectors on the Soccer
benchmark and prints their precision/recall/F1 side by side — the paper's
core argument in one script: side-effect detectors are one-sided, and
augmentation closes the supervised model's recall gap.

    python examples/method_comparison.py
"""

from __future__ import annotations

from repro import DetectorConfig, HoloDetect, evaluate_predictions, load_dataset, make_split
from repro.baselines import (
    ConstraintViolationDetector,
    ForbiddenItemsetDetector,
    HoloCleanDetector,
    LogisticRegressionDetector,
    OutlierDetector,
    SupervisedDetector,
)


def main() -> None:
    bundle = load_dataset("soccer", num_rows=600, seed=2)
    split = make_split(bundle, training_fraction=0.05, rng=0)
    config = DetectorConfig(epochs=30, seed=0)

    detectors = [
        ("CV (rules)", ConstraintViolationDetector()),
        ("HC (repair)", HoloCleanDetector()),
        ("OD (outliers)", OutlierDetector()),
        ("FBI (itemsets)", ForbiddenItemsetDetector()),
        ("LR (features)", LogisticRegressionDetector(seed=0)),
        ("SuperL (no aug)", SupervisedDetector(config)),
        ("AUG (HoloDetect)", HoloDetect(config)),
    ]

    print(f"{'method':18s} {'P':>6s} {'R':>6s} {'F1':>6s}")
    print("-" * 40)
    for name, detector in detectors:
        detector.fit(bundle.dirty, split.training, bundle.constraints)
        predicted = detector.predict_error_cells(split.test_cells)
        m = evaluate_predictions(predicted, bundle.error_cells, split.test_cells)
        print(f"{name:18s} {m.precision:6.3f} {m.recall:6.3f} {m.f1:6.3f}")


if __name__ == "__main__":
    main()
