"""Inspecting the learned noisy channel (the Appendix A.3 analysis).

Learns transformations Φ and policy Π̂ from each benchmark dataset's errors
and prints what the channel believes about how errors are introduced:

- Hospital: 'x'-substitution typos should dominate;
- Adult: a mix of value swaps and character edits;
- Animal: small categorical domains dominated by value swaps.

Also demonstrates weak supervision: for a dataset with *no* labelled errors
at all, the Naïve Bayes repair model supplies the example pairs.

    python examples/noisy_channel_inspection.py
"""

from __future__ import annotations

from repro import TrainingSet, load_dataset, make_split
from repro.augmentation import NaiveBayesRepairModel, Policy


def show_policy(name: str, probe_value: str) -> None:
    bundle = load_dataset(name, seed=1)
    split = make_split(bundle, 0.3, rng=12)
    training = TrainingSet.from_cells(
        split.training_cells, bundle.dirty, bundle.truth
    )
    policy = Policy.learn(training.error_pairs())
    print(f"\n--- {name}: {len(policy)} transformations learned from "
          f"{len(training.errors)} labelled errors ---")
    print(f"top of conditional distribution Π̂({probe_value!r}):")
    for transformation, probability in policy.top_k(probe_value, 8):
        print(f"  {probability:6.4f}  {transformation}")


def show_weak_supervision() -> None:
    bundle = load_dataset("soccer", seed=1)
    model = NaiveBayesRepairModel().fit(bundle.dirty)
    pairs = model.example_pairs(bundle.dirty)
    print(f"\n--- weak supervision on soccer (zero labels) ---")
    print(f"Naive Bayes produced {len(pairs)} example pairs; sample:")
    for clean, dirty in pairs[:5]:
        print(f"  {clean!r} -> {dirty!r}")
    policy = Policy.learn(pairs)
    print(f"channel learned from weak supervision alone: {len(policy)} transformations")


def main() -> None:
    show_policy("hospital", "scip-inf-4")
    show_policy("adult", "Female")
    show_policy("animal", "R")
    show_weak_supervision()


if __name__ == "__main__":
    main()
