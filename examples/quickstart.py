"""Quickstart: detect errors in a noisy relation with a handful of labels.

Runs HoloDetect end-to-end on the Hospital benchmark: load the dirty
dataset, label 10% of its tuples, fit the detector (which learns the noisy
channel from those few labels and augments the training data), and score
the predictions against ground truth.

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import DetectorConfig, HoloDetect, evaluate_predictions, load_dataset, make_split


def main() -> None:
    # 1. A benchmark bundle: dirty relation + exact ground truth + denial
    #    constraints.  Swap in your own data via repro.dataset.read_csv.
    bundle = load_dataset("hospital", num_rows=500, seed=1)
    print(f"dataset: {bundle.summary()}")

    # 2. Label 10% of the tuples (the paper's Hospital setting).  In a real
    #    deployment this is the only human effort required.
    split = make_split(bundle, training_fraction=0.10, rng=0)
    errors_seen = len(split.training.errors)
    print(f"labelled cells: {len(split.training)} ({errors_seen} errors among them)")

    # 3. Fit: learns transformations + policy from the labelled errors,
    #    augments the training data, and trains the representation +
    #    classifier jointly.
    detector = HoloDetect(DetectorConfig(epochs=30, seed=0))
    detector.fit(bundle.dirty, split.training, bundle.constraints)
    print(
        f"noisy channel: {len(detector.policy)} transformations learned, "
        f"{detector.augmented_count} synthetic errors generated"
    )

    # 4. Predict on the held-out cells and score.
    predictions = detector.predict(split.test_cells)
    metrics = evaluate_predictions(
        predictions.error_cells, bundle.error_cells, split.test_cells
    )
    print(f"precision={metrics.precision:.3f} recall={metrics.recall:.3f} f1={metrics.f1:.3f}")

    # 5. Inspect a few flagged cells.
    flagged = sorted(predictions.error_cells, key=lambda c: (c.row, c.attr))[:5]
    for cell in flagged:
        print(f"  flagged {cell}: observed value {bundle.dirty.value(cell)!r}")


if __name__ == "__main__":
    main()
