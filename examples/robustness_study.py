"""Constraint-robustness study (the Appendix A.2 analysis, interactive).

Shows that HoloDetect degrades gracefully when the denial constraints Σ are
missing, partial, or actively noisy — and demonstrates bootstrapping Σ from
the dirty data itself with `discover_constraints` when the user has none.

    python examples/robustness_study.py
"""

from __future__ import annotations

import numpy as np

from repro import DetectorConfig, HoloDetect, evaluate_predictions, load_dataset, make_split
from repro.constraints import discover_constraints
from repro.constraints.discovery import discover_noisy_constraints, score_candidate_fds


def f1_with(bundle, split, constraints, label: str) -> float:
    detector = HoloDetect(DetectorConfig(epochs=25, seed=0))
    detector.fit(bundle.dirty, split.training, constraints)
    metrics = evaluate_predictions(
        detector.predict_error_cells(split.test_cells), bundle.error_cells, split.test_cells
    )
    count = len(constraints) if constraints else 0
    print(f"  {label:32s} |Σ|={count:2d}  F1={metrics.f1:.3f}")
    return metrics.f1


def main() -> None:
    bundle = load_dataset("hospital", num_rows=400, seed=2)
    split = make_split(bundle, 0.10, rng=0)
    rng = np.random.default_rng(0)

    print("constraint robustness on hospital (400 rows, 10% labels):")

    # Full, halved, and absent constraint sets.
    full = list(bundle.constraints)
    half_idx = rng.choice(len(full), size=len(full) // 2, replace=False)
    half = [full[int(i)] for i in half_idx]
    f1_with(bundle, split, full, "curated Σ (all)")
    f1_with(bundle, split, half, "curated Σ (random half)")
    f1_with(bundle, split, None, "no constraints")

    # Σ discovered from the dirty data itself.
    discovered = discover_constraints(bundle.dirty, min_alpha=0.995, limit=len(full))
    print(f"\n  discovered from dirty data: {[c.name for c in discovered[:5]]} ...")
    f1_with(bundle, split, discovered, "discovered Σ")

    # Deliberately noisy constraints (Definition A.1 bands).
    candidates = score_candidate_fds(bundle.dirty)
    noisy = discover_noisy_constraints(
        bundle.dirty, (0.55, 0.95), limit=len(full), candidates=candidates
    )
    if noisy:
        f1_with(bundle, split, noisy, f"noisy Σ (α ∈ (0.55, 0.95], n={len(noisy)})")
    print(
        "\ntakeaway: the nine other representation models carry the signal; "
        "constraints help but are not load-bearing (Appendix A.2)."
    )


if __name__ == "__main__":
    main()
