"""Setuptools shim for environments without the ``wheel`` package.

``pip install -e .`` needs to build a PEP 660 wheel, which requires the
``wheel`` distribution; fully offline environments may not have it.  This
shim lets ``python setup.py develop`` perform the editable install instead.
Configuration lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
