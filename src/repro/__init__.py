"""repro — a from-scratch reproduction of *HoloDetect: Few-Shot Learning for
Error Detection* (Heidari, McGrath, Ilyas, Rekatsinas — SIGMOD 2019).

Quickstart::

    from repro import HoloDetect, DetectorConfig, load_dataset, make_split

    bundle = load_dataset("hospital", num_rows=500, seed=1)
    split = make_split(bundle, training_fraction=0.1, rng=0)
    detector = HoloDetect(DetectorConfig(seed=0))
    detector.fit(bundle.dirty, split.training, bundle.constraints)
    errors = detector.predict_error_cells(split.test_cells)

The detector is a *composition*, and the composition is describable as
data: a :class:`~repro.spec.DetectorSpec` (TOML/JSON, ``repro.spec/v1``)
names every component — featurizers, augmentation policy, calibrator —
through the unified component registry (:mod:`repro.registry`), and
:func:`repro.build` constructs the detector from it::

    detector = repro.build("examples/detector_default.toml")
    detector.fit(bundle.dirty, split.training, bundle.constraints)

Package map: ``repro.core`` (the detector), ``repro.features`` (the
representation model Q), ``repro.augmentation`` (the learned noisy channel),
``repro.baselines`` (all comparison methods), ``repro.data`` (benchmark
generators), ``repro.constraints`` / ``repro.nn`` / ``repro.embeddings`` /
``repro.text`` / ``repro.dataset`` (substrates), ``repro.evaluation``
(metrics and the experiment runner), ``repro.registry`` / ``repro.spec``
(the declarative public API).
"""

from repro.artifacts import ArtifactStore
from repro.core import DetectionSession, DetectorConfig, ErrorPredictions, HoloDetect
from repro.data import DATASET_NAMES, DatasetBundle, load_dataset
from repro.dataset import Cell, Dataset, DatasetDelta, GroundTruth, LabeledCell, TrainingSet
from repro.evaluation import (
    Metrics,
    ResultStore,
    ScenarioMatrix,
    ScenarioSpec,
    evaluate_predictions,
    make_split,
    run_matrix,
    run_scenario,
    run_trials,
)
from repro.registry import REGISTRY, ComponentError, Registry
from repro.spec import SPEC_SCHEMA, DetectorSpec, SpecError, build, load_spec

__version__ = "1.4.0"

__all__ = [
    "HoloDetect",
    "DetectorSpec",
    "SpecError",
    "SPEC_SCHEMA",
    "build",
    "load_spec",
    "REGISTRY",
    "Registry",
    "ComponentError",
    "ArtifactStore",
    "DetectionSession",
    "DetectorConfig",
    "ErrorPredictions",
    "DatasetDelta",
    "load_dataset",
    "DatasetBundle",
    "DATASET_NAMES",
    "Dataset",
    "Cell",
    "GroundTruth",
    "TrainingSet",
    "LabeledCell",
    "Metrics",
    "evaluate_predictions",
    "make_split",
    "run_trials",
    "ScenarioMatrix",
    "ScenarioSpec",
    "ResultStore",
    "run_matrix",
    "run_scenario",
    "__version__",
]
