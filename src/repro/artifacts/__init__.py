"""Content-addressed store of fitted artifacts (trained embeddings, fitted
featurizer states).

The fit path of the detector is dominated by work that is a *pure function*
of its inputs: a FastText embedding is determined by (corpus content,
embedding config), a co-occurrence table by (relation content).  The
artifact store memoises those fits under a SHA-256 content key, served from
an in-process LRU backed by an optional on-disk object directory, so a warm
``fit()`` skips embedding training entirely and parallel sweep workers
share one fit per (dataset, budget-independent component) instead of one
per scenario.

Modules:

- :mod:`repro.artifacts.keys` — key derivation (canonical-JSON SHA-256 over
  kind + scoped data fingerprint + component config) and the content-derived
  training seeds that make fitted artifacts reusable across detector seeds;
- :mod:`repro.artifacts.store` — :class:`ArtifactStore` (bounded LRU +
  append/latest-wins disk objects, corrupt-tolerant) and its statistics;
- :mod:`repro.artifacts.codec` — payload encode/decode for embeddings and
  whole featurizer states;
- :mod:`repro.artifacts.runtime` — the ambient default store that sweep
  workers attach so every detector built in the process shares one store.
"""

from repro.artifacts.keys import ARTIFACT_SCHEMA, artifact_key, seed_material, training_seed
from repro.artifacts.runtime import get_default_store, set_default_store, use_store
from repro.artifacts.store import ArtifactStats, ArtifactStore

__all__ = [
    "ARTIFACT_SCHEMA",
    "ArtifactStats",
    "ArtifactStore",
    "artifact_key",
    "get_default_store",
    "seed_material",
    "set_default_store",
    "training_seed",
    "use_store",
]
