"""Payload encode/decode for the two artifact granularities.

- **Embedding artifacts** — one trained
  :class:`~repro.embeddings.fasttext.FastTextEmbedding` (the per-column
  char/word models, the tuple and tuple-value models).  The payload is the
  embedding's own serialisable state; arrays ride along as values and the
  store handles their placement.
- **Featurizer-state artifacts** — a whole fitted featurizer, reusing the
  persistence layer's per-type encode/decode handlers (lazily imported to
  avoid an import cycle: persistence imports the feature modules, which
  import :mod:`repro.artifacts`).

Decode always copies arrays out of the (shared, read-only) payload so a
later in-place refit of the rebuilt model can never corrupt the store.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from repro.artifacts.keys import artifact_key, training_seed
from repro.embeddings.fasttext import FastTextEmbedding


def embedding_payload(model: FastTextEmbedding) -> dict:
    """Serialisable payload of a trained embedding."""
    return model.to_state()


def fit_embedding_artifact(
    store,
    kind: str,
    scope: str,
    config: Mapping[str, object],
    train: Callable[[int], FastTextEmbedding],
    meta: Mapping[str, object] | None = None,
) -> tuple[str, FastTextEmbedding]:
    """The one store-consult discipline for every embedding-backed fit.

    Derives the artifact key, serves the trained model from ``store`` when
    possible (a payload that fails to decode is treated as a miss), and
    otherwise calls ``train(seed)`` with the content-derived training seed
    and stores the result.  Returns ``(key, model)``; ``store`` may be
    ``None`` (train only — the key is still the seed source).
    """
    key = artifact_key(kind, scope, config)
    if store is not None:
        payload = store.get(key)
        if payload is not None:
            try:
                return key, embedding_from_payload(payload)
            except Exception:
                pass  # malformed payload: retrain (and overwrite) below
    model = train(training_seed(key))
    if store is not None:
        store.put(key, embedding_payload(model), kind=kind, meta=meta)
    return key, model


def embedding_from_payload(payload: dict) -> FastTextEmbedding:
    """Rebuild a trained embedding from :func:`embedding_payload` output."""
    state = dict(payload)
    state["in_table"] = np.array(payload["in_table"], dtype=np.float64)
    state["out_table"] = np.array(payload["out_table"], dtype=np.float64)
    return FastTextEmbedding.from_state(state)


def _inline_array_store():
    """An ArrayStore stand-in that keeps arrays *inline* in the state.

    The persistence handlers route every array through a store and embed
    the store's reference marker in the state dict.  For artifact payloads
    the arrays stay in place instead (``put`` returns the array itself, and
    ``get`` copies it back out), leaving exactly one array-placement layer
    — the artifact store's own flatten/restore — so the two marker
    namespaces can never collide.
    """
    from repro.persistence.detector_io import ArrayStore

    class InlineArrayStore(ArrayStore):
        def put(self, array):
            return np.asarray(array)

        def get(self, ref):
            # Copy: payloads are shared with the store's LRU (read-only).
            return np.array(ref)

    return InlineArrayStore()


def featurizer_payload(featurizer) -> dict | None:
    """Serialisable payload of a fitted featurizer, or ``None`` when the
    type has no persistence handler (custom components simply refit)."""
    from repro.persistence.detector_io import _encode_featurizer

    try:
        state = _encode_featurizer(featurizer, _inline_array_store())
    except TypeError:
        return None
    return {"state": state}


def featurizer_from_payload(payload: dict):
    """Rebuild a fitted featurizer from :func:`featurizer_payload` output."""
    from repro.persistence.detector_io import _decode_featurizer

    return _decode_featurizer(payload["state"], _inline_array_store())
