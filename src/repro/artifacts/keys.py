"""Artifact key and training-seed derivation.

An artifact key is the SHA-256 of the canonical JSON of

    (schema version, artifact kind, scoped data fingerprint, component
    config, seed material)

so the key — like the scenario fingerprints of
:mod:`repro.evaluation.matrix` — is stable under dict key reordering,
whitespace, processes, and sessions.  The *scope* is the same scoped
fingerprint discipline the feature cache uses: a per-column embedding keys
on its column's content fingerprint, a relation-wide model on the whole
dataset fingerprint, so an edit to column A never invalidates column B's
artifact.

Training seeds are derived *from the key itself* (:func:`training_seed`):
an embedding trained for a given (corpus, config) is seeded by the content
it trains on, which is what makes a fitted artifact a pure function of its
key — and hence shareable across detector seeds, label budgets, and trials
of a sweep.  This is a deliberate, versioned change from the pre-artifact
behaviour where embedding training consumed the detector's shared RNG
stream (see "Fit-path artifacts" in ``docs/architecture.md``).
"""

from __future__ import annotations

import hashlib
import json
from typing import Mapping

import numpy as np

#: Key format version; bump when the derivation changes meaning (a bump
#: invalidates every existing store, which is exactly the point).
ARTIFACT_SCHEMA = "repro.artifact/v1"


def _canonical(payload: object) -> str:
    """Canonical JSON: sorted keys at every depth, no whitespace."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def artifact_key(
    kind: str,
    scope: str,
    config: Mapping[str, object] | None = None,
    seed: int | None = None,
) -> str:
    """The content key of one fitted artifact.

    ``kind`` tags the artifact family (``"embedding/char"``,
    ``"featurizer/cooccurrence"``, ...), ``scope`` is the scoped content
    fingerprint of the data the fit reads, ``config`` the component's
    JSON-able configuration, and ``seed`` optional extra seed material for
    components whose output is not purely content-determined.
    """
    payload = {
        "schema": ARTIFACT_SCHEMA,
        "kind": kind,
        "scope": scope,
        "config": dict(config or {}),
        "seed": seed,
    }
    return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()


def shard_partial_key(
    kind: str,
    shard_fingerprint: str,
    config: Mapping[str, object] | None = None,
) -> str:
    """The content key of one *per-shard partial* of a relation-scoped fit.

    Out-of-core fits of mergeable featurizer states (co-occurrence joint
    counts, FD group tables — see ``repro.features.partials``) compute one
    partial per row shard and merge them.  Each partial is keyed on the
    shard's own content fingerprint (``Relation.shard_fingerprint``) under
    the parent kind with a ``.partial`` suffix, so appending shards to a
    relation reuses every existing shard's partial and computes only the new
    ones.  For a single-shard relation the shard fingerprint equals the
    relation fingerprint, and the partial key degenerates to a
    whole-relation key under the ``.partial`` kind — disjoint from the
    whole-state artifact by construction.
    """
    return artifact_key(f"{kind}.partial", shard_fingerprint, config)


def training_seed(key: str) -> int:
    """A deterministic 63-bit RNG seed derived from an artifact key.

    Components with internal randomness (embedding init, negative sampling,
    epoch shuffling) train from a generator seeded here, so the fitted
    artifact is a pure function of its key: any process that derives the
    same key trains — or reuses — bit-identical weights.
    """
    return int(key[:16], 16) % (2**63)


def seed_material(rng: object) -> int | None:
    """Coerce a legacy ``rng`` constructor argument into key material.

    Featurizers historically accepted an ``rng`` (int seed or live
    generator) that seeded their embedding training.  Training now seeds
    from the artifact key; an explicitly passed ``rng`` survives as extra
    key material so distinct seeds still yield distinct artifacts.  A live
    generator contributes one draw — taken once, at construction — so the
    caller's stream advances identically whether later fits are warm or
    cold.
    """
    if rng is None:
        return None
    if isinstance(rng, (int, np.integer)):
        return int(rng)
    if isinstance(rng, np.random.Generator):
        return int(rng.integers(0, 2**63 - 1))
    raise TypeError(f"expected int, Generator, or None, got {type(rng)!r}")
