"""Ambient default artifact store.

Sweep workers (and anything else that builds many detectors) attach one
store per process; every :class:`~repro.core.detector.HoloDetect` whose
config does not name its own store falls back to the ambient one, so an
entire worker shares a single LRU + object directory with zero per-method
plumbing.  ``repro.evaluation.matrix.run_matrix`` installs it via the pool
initializer (process executor) or around the run (thread/serial).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.artifacts.store import ArtifactStore

_default_store: ArtifactStore | None = None


def get_default_store() -> ArtifactStore | None:
    """The process-wide ambient store, or ``None`` when unset."""
    return _default_store


def set_default_store(store: ArtifactStore | None) -> ArtifactStore | None:
    """Install ``store`` as the ambient default; returns the previous one."""
    global _default_store
    previous = _default_store
    _default_store = store
    return previous


@contextmanager
def use_store(store: ArtifactStore | None) -> Iterator[ArtifactStore | None]:
    """Scoped ambient-store installation (restores the previous on exit)."""
    previous = set_default_store(store)
    try:
        yield store
    finally:
        set_default_store(previous)
