"""The content-addressed artifact store: bounded LRU + optional disk objects.

A *payload* is a JSON-able dict that may carry numpy arrays as values at any
depth (e.g. a :meth:`FastTextEmbedding.to_state` dict).  The store
content-addresses payloads by the caller-derived key
(:func:`repro.artifacts.keys.artifact_key`) at two tiers:

- an **in-process LRU** (``max_entries`` payloads) serving repeated fits in
  one process at dictionary-lookup cost;
- an optional **on-disk object directory** shared across processes::

      <dir>/objects/<key[:2]>/<key>.npz   # arrays + JSON state, one file per key
      <dir>/index.jsonl                   # append-only manifest, latest-wins

  Object writes are atomic (temp file + rename), so concurrent sweep
  workers race benignly: both compute the same content and the second
  rename is a no-op in effect.  The manifest follows the same append-only /
  latest-wins / corrupt-tail-tolerant discipline as
  :mod:`repro.evaluation.store`; it is informational (listing, sizes) —
  reads always probe the object files, so a worker sees artifacts written
  by its siblings after this store was opened.

A corrupt or truncated object file (a killed worker mid-write outside the
atomic path, disk trouble) is treated as a miss: the file is dropped,
``stats.corrupt_dropped`` is bumped, and the caller refits.

**Fault handling** (see ``docs/architecture.md`` → Fault model): disk I/O
is classified through :mod:`repro.faults.taxonomy` and retried through a
:class:`~repro.faults.retry.RetryPolicy` at the ``artifacts.object_write``
/ ``artifacts.object_read`` / ``artifacts.index_append`` fault points.
Transient faults (``EAGAIN``, ``ESTALE``, ``EIO``-on-read, ...) are
retried with backoff; *fatal* faults (``ENOSPC``, ``EROFS``, ``EACCES``)
are never retried — a write hitting one warns once, flips
``stats.degraded``, and is swallowed (the store is a wall-clock
accelerator: the fit that produced the payload must not fail because it
could not be memoised), while a persistent *read* fault reports a miss
without deleting the object (the bytes may be intact; only *corrupt
content* is unlinked).

Payloads returned by :meth:`ArtifactStore.get` are shared with the LRU —
treat them as read-only (the codec copies arrays into fresh models).
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import warnings
from collections import OrderedDict
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterator, Mapping

import numpy as np

from repro.faults.inject import trip
from repro.faults.retry import RetryPolicy, resolve_policy
from repro.faults.taxonomy import is_fatal

#: JSON state entry inside each ``.npz`` object file.
_STATE_KEY = "__state__"


@dataclass
class ArtifactStats:
    """Hit/miss accounting for one :class:`ArtifactStore`."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    corrupt_dropped: int = 0
    write_errors: int = 0
    read_errors: int = 0
    fatal_errors: int = 0
    #: Set when a *fatal* disk fault (``ENOSPC``, ``EROFS``, ``EACCES``)
    #: was observed: the disk tier is compromised, the memory tier still
    #: serves.  Surfaced through ``HoloDetect.artifact_stats`` and serve
    #: health reports.
    degraded: bool = False

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the store (0.0 when never used)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, int]:
        """JSON-able counter snapshot (includes the derived totals)."""
        payload = asdict(self)
        payload["hits"] = self.hits
        payload["lookups"] = self.lookups
        return payload

    def summary(self) -> str:
        text = (
            f"{self.hits} hits / {self.lookups} lookups ({self.hit_rate:.0%}; "
            f"{self.memory_hits} memory, {self.disk_hits} disk), "
            f"{self.puts} stored, {self.corrupt_dropped} corrupt dropped"
        )
        if self.degraded:
            text += f" [DEGRADED: {self.fatal_errors} fatal disk faults]"
        return text


def _flatten(payload: object, arrays: dict[str, np.ndarray]) -> object:
    """Replace ndarray leaves with ``{"__array__": ref}`` markers."""
    if isinstance(payload, np.ndarray):
        ref = f"a{len(arrays)}"
        arrays[ref] = payload
        return {"__array__": ref}
    if isinstance(payload, Mapping):
        return {str(k): _flatten(v, arrays) for k, v in payload.items()}
    if isinstance(payload, (list, tuple)):
        return [_flatten(v, arrays) for v in payload]
    return payload


def _restore(payload: object, arrays: Mapping[str, np.ndarray]) -> object:
    """Inverse of :func:`_flatten`."""
    if isinstance(payload, Mapping):
        if set(payload) == {"__array__"}:
            return arrays[payload["__array__"]]
        return {k: _restore(v, arrays) for k, v in payload.items()}
    if isinstance(payload, list):
        return [_restore(v, arrays) for v in payload]
    return payload


class ArtifactStore:
    """Bounded, thread-safe LRU of fitted-artifact payloads with optional
    shared on-disk backing.

    ``directory=None`` gives a process-local memory-only store (the warm-fit
    case); a directory adds the cross-process object tier (the sweep case).
    The directory is created lazily on the first write.
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        max_entries: int = 64,
        retry_policy: RetryPolicy | None = None,
    ):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.directory = Path(directory) if directory is not None else None
        self.max_entries = max_entries
        self.stats = ArtifactStats()
        self._entries: OrderedDict[str, dict] = OrderedDict()
        self._lock = threading.Lock()
        # None = resolve the process-ambient default at each use, so a
        # test's use_policy() context reaches stores built before it.
        self._retry_policy = retry_policy
        self._warned_fatal = False

    @property
    def retry_policy(self) -> RetryPolicy:
        """The policy disk I/O retries through (ambient default if unset)."""
        return resolve_policy(self._retry_policy)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        where = str(self.directory) if self.directory is not None else "memory"
        return (
            f"ArtifactStore({where}, entries={len(self._entries)}/"
            f"{self.max_entries}, {self.stats.summary()})"
        )

    # ------------------------------------------------------------------ #
    # Paths
    # ------------------------------------------------------------------ #

    def object_path(self, key: str) -> Path | None:
        """Disk path of one artifact object (``None`` for memory-only)."""
        if self.directory is None:
            return None
        return self.directory / "objects" / key[:2] / f"{key}.npz"

    @property
    def index_path(self) -> Path | None:
        if self.directory is None:
            return None
        return self.directory / "index.jsonl"

    # ------------------------------------------------------------------ #
    # Lookup / insert
    # ------------------------------------------------------------------ #

    def get(self, key: str) -> dict | None:
        """The payload stored under ``key``, or ``None`` on a miss.

        Memory first, then the object directory; disk hits are promoted
        into the LRU.  The returned dict is shared — treat as read-only.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.memory_hits += 1
                return entry
        payload = self._read_object(key)
        with self._lock:
            if payload is None:
                self.stats.misses += 1
                return None
            self.stats.disk_hits += 1
            self._insert(key, payload)
        return payload

    def put(self, key: str, payload: dict, kind: str = "artifact",
            meta: Mapping[str, object] | None = None) -> None:
        """Store ``payload`` under ``key`` (memory, and disk when backed).

        ``kind`` and ``meta`` are recorded in the manifest only — the key
        already encodes everything that determines the content.  A failed
        disk write (full disk, lost permissions) is counted and swallowed:
        the store is a wall-clock accelerator, and the fit that just
        produced the payload must never fail because it could not be
        memoised — the memory tier still serves it in-process.  Transient
        faults are retried through the policy first; a *fatal* fault
        additionally warns once and marks the store degraded.
        """
        if self.directory is not None:
            try:
                self.retry_policy.call(
                    lambda: self._write_object(key, payload, kind, meta),
                    point="artifacts.object_write",
                    op="write",
                )
            except OSError as exc:
                self._note_write_fault(exc)
            except Exception:
                with self._lock:
                    self.stats.write_errors += 1
        with self._lock:
            self.stats.puts += 1
            self._insert(key, payload)

    def _note_write_fault(self, exc: OSError) -> None:
        fatal = is_fatal(exc, op="write")
        with self._lock:
            self.stats.write_errors += 1
            if fatal:
                self.stats.fatal_errors += 1
                self.stats.degraded = True
                if self._warned_fatal:
                    return
                self._warned_fatal = True
        if fatal:
            warnings.warn(
                f"artifact store at {self.directory} hit a fatal disk fault "
                f"({exc}); disk tier degraded, memory tier still serves "
                f"(further fatal faults are counted silently)",
                RuntimeWarning,
                stacklevel=3,
            )

    def _insert(self, key: str, payload: dict) -> None:
        # Caller holds the lock.
        self._entries[key] = payload
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear_memory(self) -> None:
        """Drop the in-process tier (disk objects are never evicted)."""
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------ #
    # Disk tier
    # ------------------------------------------------------------------ #

    def _read_object(self, key: str) -> dict | None:
        path = self.object_path(key)
        if path is None or not path.exists():
            return None

        def load() -> dict:
            trip("artifacts.object_read")
            with np.load(path, allow_pickle=False) as npz:
                state = json.loads(str(npz[_STATE_KEY]))
                arrays = {k: npz[k] for k in npz.files if k != _STATE_KEY}
            return _restore(state, arrays)

        try:
            return self.retry_policy.call(
                load, point="artifacts.object_read", op="read"
            )
        except FileNotFoundError:
            # Raced a concurrent unlink between exists() and load: a miss.
            return None
        except OSError:
            # A persistent disk fault, not provably-corrupt content: report
            # a miss but keep the file — the bytes may be intact once the
            # fault clears.
            with self._lock:
                self.stats.read_errors += 1
            return None
        except Exception:
            # Truncated/corrupt object (killed writer outside the atomic
            # path): drop it and report a miss — the caller refits and
            # re-stores.
            with self._lock:
                self.stats.corrupt_dropped += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def _write_object(self, key: str, payload: dict, kind: str,
                      meta: Mapping[str, object] | None) -> None:
        trip("artifacts.object_write")
        path = self.object_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        arrays: dict[str, np.ndarray] = {}
        state = _flatten(payload, arrays)
        arrays[_STATE_KEY] = np.array(json.dumps(state, sort_keys=True))
        # Atomic publish: a reader either sees the complete object or none.
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                np.savez_compressed(f, **arrays)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._append_index(key, kind, path, meta)

    def _append_index(self, key: str, kind: str, path: Path,
                      meta: Mapping[str, object] | None) -> None:
        record = {
            "key": key,
            "kind": kind,
            "nbytes": path.stat().st_size,
        }
        if meta:
            record["meta"] = dict(meta)

        def append() -> None:
            trip("artifacts.index_append")
            with self.index_path.open("a", encoding="utf-8") as f:
                f.write(json.dumps(record, sort_keys=True) + "\n")
                f.flush()

        # The manifest is informational — a persistently failing append
        # must not fail the put (the object itself already landed).
        try:
            self.retry_policy.call(
                append, point="artifacts.index_append", op="write"
            )
        except OSError:
            pass

    def index(self) -> Iterator[dict]:
        """Manifest records (latest per key wins, corrupt lines skipped)."""
        path = self.index_path
        if path is None or not path.exists():
            return iter(())
        records: dict[str, dict] = {}
        with path.open("r", encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    records[record["key"]] = record
                except (json.JSONDecodeError, TypeError, KeyError):
                    continue
        return iter(records.values())
