"""Data augmentation: the learned noisy channel (§5).

The noisy channel H = (Φ, Π): a set of string transformations Φ learned from
example (clean, dirty) pairs via hierarchical pattern matching (Algorithm 1),
and a policy Π — a conditional distribution over Φ given an input value —
estimated empirically (Algorithms 2–3).  Algorithm 4 applies the channel to
correct training examples to synthesise error examples until the training
set is balanced.

When labelled errors are scarce, the unsupervised Naïve Bayes repair model
(§5.4) supplies weakly-supervised example pairs instead.
"""

from repro.augmentation.transformations import Transformation, TransformationKind
from repro.augmentation.learn import (
    empirical_distribution,
    learn_transformations,
)
from repro.augmentation.policy import CompositePolicy, Policy, UniformPolicy
from repro.augmentation.augment import AugmentationResult, augment_training_set
from repro.augmentation.naive_bayes import NaiveBayesRepairModel

__all__ = [
    "Transformation",
    "TransformationKind",
    "learn_transformations",
    "empirical_distribution",
    "Policy",
    "UniformPolicy",
    "CompositePolicy",
    "augment_training_set",
    "AugmentationResult",
    "NaiveBayesRepairModel",
]
