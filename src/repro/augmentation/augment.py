"""Data augmentation (Algorithm 4).

Given the learned channel (Φ, Π̂) and the training set T, synthesise error
examples by transforming *correct* examples until the classes balance — or
until a caller-specified error/correct ratio is reached (the knob behind the
Fig. 6 imbalance study).  Acceptance probability α (a hyper-parameter tuned
on the holdout) throttles how often a drawn example is kept.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.augmentation.policy import Policy
from repro.dataset.training import LabeledCell, TrainingSet
from repro.utils.rng import as_generator


@dataclass
class AugmentationResult:
    """Synthetic examples plus bookkeeping for diagnostics."""

    examples: list[LabeledCell]
    attempts: int
    distinct_sources: int

    def __len__(self) -> int:
        return len(self.examples)


def augment_training_set(
    training: TrainingSet,
    policy: Policy,
    alpha: float = 1.0,
    target_ratio: float | None = None,
    max_examples: int | None = None,
    max_attempts_factor: int = 50,
    rng: int | np.random.Generator | None = None,
) -> AugmentationResult:
    """Algorithm 4: generate synthetic error examples from correct ones.

    - Default target: ``p - n`` new errors (balance the classes), where ``p``
      and ``n`` count correct/erroneous examples in ``training``.
    - ``target_ratio`` overrides the target so that
      ``errors / correct == target_ratio`` after augmentation (Fig. 6).
    - ``alpha`` is the acceptance coin of the paper's Algorithm 4.

    Each synthetic example is a :class:`LabeledCell` whose ``observed`` value
    is the transformed (erroneous) value and ``true`` value is the original —
    it reuses the source example's cell so featurisation keeps the real tuple
    context.
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError("alpha must be in (0, 1]")
    if target_ratio is not None and target_ratio <= 0:
        raise ValueError("target_ratio must be positive")
    gen = as_generator(rng)
    correct = training.correct
    p = len(correct)
    n = len(training.errors)
    if target_ratio is None:
        needed = max(p - n, 0)
    else:
        needed = max(int(round(target_ratio * p)) - n, 0)
    if max_examples is not None:
        needed = min(needed, max_examples)
    if needed == 0 or p == 0 or len(policy) == 0:
        return AugmentationResult([], 0, 0)

    examples: list[LabeledCell] = []
    sources: set[int] = set()
    attempts = 0
    max_attempts = max_attempts_factor * max(needed, 1)
    while len(examples) < needed and attempts < max_attempts:
        attempts += 1
        idx = int(gen.integers(0, p))
        source = correct[idx]
        if gen.random() >= alpha:
            continue
        transformed = policy.transform(source.observed, gen)
        if transformed is None or transformed == source.observed:
            continue
        examples.append(
            LabeledCell(cell=source.cell, observed=transformed, true=source.observed)
        )
        sources.add(idx)
    return AugmentationResult(examples, attempts, len(sources))
