"""Data augmentation (Algorithm 4).

Given the learned channel (Φ, Π̂) and the training set T, synthesise error
examples by transforming *correct* examples until the classes balance — or
until a caller-specified error/correct ratio is reached (the knob behind the
Fig. 6 imbalance study).  Acceptance probability α (a hyper-parameter tuned
on the holdout) throttles how often a drawn example is kept.

The generation loop is batch-vectorised: source indices and acceptance
coins are drawn in fixed-size numpy chunks, and for the standard
single-edit :class:`~repro.augmentation.policy.Policy` the conditional
distribution Π̂(v) is memoised per unique source value and sampled by
cumulative-probability inversion from bulk uniforms — the per-attempt
Python cost drops to a dictionary lookup plus one string splice.  Policies
that override :meth:`~repro.augmentation.policy.Policy.transform` or
``sample`` (composite channels, the random-channel ablation) keep their
custom semantics through a per-draw fallback.

.. note::
   The chunked draw order differs from the historical one-draw-per-attempt
   loop, so a fixed seed produces a *different* (equally valid) example
   sequence than pre-vectorisation versions.  This is part of the
   documented fit-path seed bump (see "Fit-path artifacts" in
   ``docs/architecture.md``); results remain fully deterministic given the
   seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.augmentation.policy import Policy
from repro.augmentation.transformations import Transformation
from repro.dataset.training import LabeledCell, TrainingSet
from repro.utils.rng import as_generator

#: Attempts drawn per RNG chunk.  Fixed so the draw sequence — and hence
#: the generated examples — depend only on the seed, never on `needed`.
_CHUNK = 256


@dataclass
class AugmentationResult:
    """Synthetic examples plus bookkeeping for diagnostics.

    ``attempts`` counts every draw the loop processed; the two rejection
    counters split the unproductive ones so a stalled augmentation run is
    diagnosable at a glance:

    - ``rejected_alpha`` — draws discarded by the acceptance coin (α); high
      values mean α is throttling, not the channel;
    - ``identity_draws`` — draws where the policy produced nothing (no
      applicable transformation) or round-tripped back to the source value;
      high values mean the learned channel cannot perturb these sources.

    ``attempts - rejected_alpha - identity_draws == len(examples)``.
    """

    examples: list[LabeledCell]
    attempts: int
    distinct_sources: int
    rejected_alpha: int = 0
    identity_draws: int = 0

    def __len__(self) -> int:
        return len(self.examples)


class _ConditionalSampler:
    """Memoised Π̂(v) samplers for the vectorised fast path."""

    def __init__(self, policy: Policy):
        self._policy = policy
        self._cache: dict[str, tuple[list[Transformation], np.ndarray] | None] = {}

    def __call__(self, value: str) -> tuple[list[Transformation], np.ndarray] | None:
        try:
            return self._cache[value]
        except KeyError:
            pass
        conditional = self._policy.conditional(value)
        if not conditional:
            sampler = None
        else:
            transformations = list(conditional)
            cumulative = np.cumsum([conditional[t] for t in transformations])
            cumulative[-1] = 1.0  # guard float drift at the top bin
            sampler = (transformations, cumulative)
        self._cache[value] = sampler
        return sampler


def _has_standard_sampling(policy: Policy) -> bool:
    """True when the policy's generative process is the base single-edit
    sample-then-apply — the contract the vectorised path reproduces."""
    return (
        type(policy).transform is Policy.transform
        and type(policy).sample is Policy.sample
    )


def _transform_chunk(
    correct,
    idx: np.ndarray,
    coins: np.ndarray,
    phi_us: np.ndarray,
    pos_us: np.ndarray,
    alpha: float,
    samplers: "_ConditionalSampler",
    occurrences: dict,
) -> tuple[np.ndarray, list]:
    """Apply one chunk of draws, grouped instead of one draw at a time.

    Returns ``(codes, transformed)`` aligned with the chunk: code 1 =
    rejected by the acceptance coin, 2 = identity/no-op draw, 0 = a usable
    transformed value in ``transformed``.  Draws are grouped by source
    value (one vectorised ``searchsorted`` inverts Π̂(v) for all of a
    value's draws at once) and then by transformation, so each kind's
    occurrence scan runs once and its string splices apply in one pass.
    Outcomes are bit-identical to the per-draw loop; the caller's serial
    prefix walk over ``codes`` keeps the attempt/cutoff accounting exact.
    """
    codes = np.zeros(idx.size, dtype=np.int8)
    transformed: list[str | None] = [None] * idx.size
    codes[coins >= alpha] = 1
    accepted = np.flatnonzero(coins < alpha)
    if accepted.size == 0:
        return codes, transformed
    by_value: dict[str, list[int]] = {}
    for k in accepted:
        by_value.setdefault(correct[int(idx[k])].observed, []).append(int(k))
    for value, members in by_value.items():
        sampler = samplers(value)
        ks = np.asarray(members)
        if sampler is None:
            codes[ks] = 2
            continue
        transformations, cumulative = sampler
        choices = np.searchsorted(cumulative, phi_us[ks], side="right")
        by_phi: dict[int, list[int]] = {}
        for j, choice in enumerate(choices):
            by_phi.setdefault(int(choice), []).append(j)
        for choice, group in by_phi.items():
            phi = transformations[choice]
            key = (phi, value)
            positions = occurrences.get(key)
            if positions is None:
                positions = occurrences[key] = phi.occurrences(value)
            count = len(positions)
            gks = ks[np.asarray(group)]
            picks = np.minimum(
                (pos_us[gks] * count).astype(np.int64), count - 1
            )
            dst, src_len = phi.dst, len(phi.src)
            for k, pick in zip(gks, picks):
                pos = positions[int(pick)]
                result = value[:pos] + dst + value[pos + src_len:]
                if result == value:
                    codes[k] = 2
                else:
                    transformed[k] = result
    return codes, transformed


def augment_training_set(
    training: TrainingSet,
    policy: Policy,
    alpha: float = 1.0,
    target_ratio: float | None = None,
    max_examples: int | None = None,
    max_attempts_factor: int = 50,
    rng: int | np.random.Generator | None = None,
) -> AugmentationResult:
    """Algorithm 4: generate synthetic error examples from correct ones.

    - Default target: ``p - n`` new errors (balance the classes), where ``p``
      and ``n`` count correct/erroneous examples in ``training``.
    - ``target_ratio`` overrides the target so that
      ``errors / correct == target_ratio`` after augmentation (Fig. 6).
    - ``alpha`` is the acceptance coin of the paper's Algorithm 4.

    Each synthetic example is a :class:`LabeledCell` whose ``observed`` value
    is the transformed (erroneous) value and ``true`` value is the original —
    it reuses the source example's cell so featurisation keeps the real tuple
    context.
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError("alpha must be in (0, 1]")
    if target_ratio is not None and target_ratio <= 0:
        raise ValueError("target_ratio must be positive")
    gen = as_generator(rng)
    correct = training.correct
    p = len(correct)
    n = len(training.errors)
    if target_ratio is None:
        needed = max(p - n, 0)
    else:
        needed = max(int(round(target_ratio * p)) - n, 0)
    if max_examples is not None:
        needed = min(needed, max_examples)
    if needed == 0 or p == 0 or len(policy) == 0:
        return AugmentationResult([], 0, 0)

    fast = _has_standard_sampling(policy)
    samplers = _ConditionalSampler(policy) if fast else None
    occurrences: dict = {}
    examples: list[LabeledCell] = []
    sources: set[int] = set()
    attempts = rejected_alpha = identity_draws = 0
    max_attempts = max_attempts_factor * max(needed, 1)
    while len(examples) < needed and attempts < max_attempts:
        # One chunk of attempt randomness: source indices, acceptance
        # coins, and (fast path) transformation + position uniforms.
        idx = gen.integers(0, p, size=_CHUNK)
        coins = gen.random(_CHUNK)
        if fast:
            phi_us = gen.random(_CHUNK)
            pos_us = gen.random(_CHUNK)
            # Apply the whole chunk grouped by value/transformation; the
            # serial walk below only does the attempt accounting.  Draws
            # past the needed/max_attempts cutoff are computed and dropped,
            # exactly as their randomness was already drawn and dropped.
            codes, chunk_transformed = _transform_chunk(
                correct, idx, coins, phi_us, pos_us, alpha, samplers,
                occurrences,
            )
        for k in range(_CHUNK):
            if len(examples) >= needed or attempts >= max_attempts:
                break
            attempts += 1
            if fast:
                code = codes[k]
                if code == 1:
                    rejected_alpha += 1
                    continue
                if code == 2:
                    identity_draws += 1
                    continue
                source = correct[int(idx[k])]
                examples.append(
                    LabeledCell(
                        cell=source.cell,
                        observed=chunk_transformed[k],
                        true=source.observed,
                    )
                )
                sources.add(int(idx[k]))
                continue
            if coins[k] >= alpha:
                rejected_alpha += 1
                continue
            source = correct[int(idx[k])]
            value = source.observed
            transformed = policy.transform(value, gen)
            if transformed is None or transformed == value:
                identity_draws += 1
                continue
            examples.append(
                LabeledCell(cell=source.cell, observed=transformed, true=value)
            )
            sources.add(int(idx[k]))
    return AugmentationResult(
        examples, attempts, len(sources),
        rejected_alpha=rejected_alpha, identity_draws=identity_draws,
    )
