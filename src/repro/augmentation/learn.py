"""Transformation learning (Algorithm 1) and the empirical policy
(Algorithm 2).

Algorithm 1 extracts, from one example pair ``(v*, v)``, every
transformation consistent with the noisy channel having produced ``v`` from
``v*``: the full-string rewrite, plus rewrites of the substrings around the
longest common substring, recursively — the hierarchy the paper illustrates
with ``(60612, 6061x2) → {60612⟼6061x2, 12⟼1x2, ε⟼x}``.

Matching follows Ratcliff–Obershelp [51]: after removing the LCS, the left
and right remainders are paired by whichever assignment has the larger total
similarity.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

from repro.augmentation.transformations import Transformation
from repro.text.similarity import longest_common_substring, sequence_similarity

#: Recursion depth bound — Algorithm 1 halves strings every level, so depth
#: beyond the string length is impossible; this guards degenerate inputs.
_MAX_DEPTH = 64


def learn_transformations(clean: str, dirty: str, _depth: int = 0) -> list[Transformation]:
    """Algorithm 1: all transformations valid for the example ``(clean, dirty)``.

    Returns a *list* (with multiplicity, which Algorithm 2's empirical
    distribution consumes); identity rewrites are filtered out.
    """
    results: list[Transformation] = []
    _learn_into(clean, dirty, results, _depth)
    return results


def _learn_into(clean: str, dirty: str, out: list[Transformation], depth: int) -> None:
    if depth > _MAX_DEPTH:
        return
    if clean == "" and dirty == "":
        return
    if clean != dirty:
        out.append(Transformation(clean, dirty))
    start_c, start_d, length = longest_common_substring(clean, dirty)
    if length == 0:
        # No shared characters: the whole-string rewrite is the only split.
        return
    left_clean, right_clean = clean[:start_c], clean[start_c + length :]
    left_dirty, right_dirty = dirty[:start_d], dirty[start_d + length :]
    straight = sequence_similarity(left_clean, left_dirty) + sequence_similarity(
        right_clean, right_dirty
    )
    crossed = sequence_similarity(left_clean, right_dirty) + sequence_similarity(
        right_clean, left_dirty
    )
    if straight >= crossed:
        pairs = ((left_clean, left_dirty), (right_clean, right_dirty))
    else:
        pairs = ((left_clean, right_dirty), (right_clean, left_dirty))
    for sub_clean, sub_dirty in pairs:
        if sub_clean != sub_dirty:
            out.append(Transformation(sub_clean, sub_dirty))
        _learn_into(sub_clean, sub_dirty, out, depth + 1)


def learn_from_pairs(pairs: Iterable[tuple[str, str]]) -> list[list[Transformation]]:
    """Run Algorithm 1 over a set of example pairs ``L = {(v*, v)}``.

    Pairs with ``v* == v`` contribute nothing (they are not errors).
    """
    lists = []
    for clean, dirty in pairs:
        if clean == dirty:
            continue
        transformations = learn_transformations(clean, dirty)
        if transformations:
            lists.append(transformations)
    return lists


def empirical_distribution(
    transformation_lists: Sequence[Sequence[Transformation]],
) -> dict[Transformation, float]:
    """Algorithm 2: empirical probability of each unique transformation.

    ``p(ϕ) = count(ϕ across all lists) / total element count``.
    """
    counts: Counter[Transformation] = Counter()
    total = 0
    for lst in transformation_lists:
        counts.update(lst)
        total += len(lst)
    if total == 0:
        return {}
    return {phi: count / total for phi, count in counts.items()}
