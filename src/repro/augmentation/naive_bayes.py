"""Unsupervised Naïve Bayes repair model for weak supervision (§5.4).

When the labelled errors in T are too few to learn transformations from, the
paper fits a simple high-precision repair model over the noisy dataset D and
uses its (repair, observed) pairs as transformation examples.

For each cell, the model pretends the value is missing and imputes it from
the other attributes of the tuple:

    P(v | tuple) ∝ P(v) · ∏_{B ∈ partners(A)} P(t[B] | v)

with Laplace smoothing, where ``partners(A)`` are the attributes that
actually carry information about A (normalised mutual information above a
threshold) — imputing from uninformative context is what makes plain Naïve
Bayes over-confident.

A repair is *accepted* only when (§5.4's precision contract):

1. the attribute has at least one informative partner,
2. the posterior of the best candidate clears the confidence threshold,
3. the observed value is **contradicted** by the informative context (it
   co-occurs with the tuple's partner values at most ``max_observed_support``
   times — i.e. only through the tuple itself), and
4. the candidate is **supported** (co-occurs with partner values at least
   ``min_candidate_support`` times).

Recall is free to be low; only precision matters, since the accepted pairs
seed transformation learning (Algorithm 1).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.dataset.table import Cell, Dataset
from repro.utils.stats import normalized_mutual_information


@dataclass(frozen=True)
class SuggestedRepair:
    """One accepted repair: the model believes ``observed`` should be ``repair``."""

    cell: Cell
    observed: str
    repair: str
    confidence: float


class NaiveBayesRepairModel:
    """Per-attribute Naïve Bayes imputation over informative co-occurrence."""

    def __init__(
        self,
        confidence_threshold: float = 0.9,
        smoothing: float = 0.1,
        max_candidates: int = 64,
        partner_nmi_threshold: float = 0.15,
        max_observed_support: int = 1,
        min_candidate_support: int = 3,
    ):
        if not 0.0 < confidence_threshold <= 1.0:
            raise ValueError("confidence_threshold must be in (0, 1]")
        self.confidence_threshold = confidence_threshold
        self.smoothing = smoothing
        self.max_candidates = max_candidates
        self.partner_nmi_threshold = partner_nmi_threshold
        self.max_observed_support = max_observed_support
        self.min_candidate_support = min_candidate_support
        self._fitted = False
        self._priors: dict[str, dict[str, float]] = {}
        # (target_attr, target_value, other_attr) -> {other_value -> count}
        self._cooc: dict[tuple[str, str, str], dict[str, int]] = {}
        self._value_counts: dict[str, dict[str, int]] = {}
        self._attributes: tuple[str, ...] = ()
        self._partners: dict[str, list[str]] = {}
        self._num_rows = 0

    def fit(self, dataset: Dataset) -> "NaiveBayesRepairModel":
        """Collect priors, co-occurrence counts, and the partner graph."""
        self._attributes = dataset.attributes
        self._num_rows = dataset.num_rows
        self._value_counts = {a: dataset.value_counts(a) for a in dataset.attributes}
        self._priors = {
            a: {v: c / max(dataset.num_rows, 1) for v, c in counts.items()}
            for a, counts in self._value_counts.items()
        }
        cooc: dict[tuple[str, str, str], dict[str, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        for row in range(dataset.num_rows):
            values = dataset.row_dict(row)
            for attr_a, value_a in values.items():
                for attr_b, value_b in values.items():
                    if attr_a != attr_b:
                        cooc[(attr_a, value_a, attr_b)][value_b] += 1
        self._cooc = {k: dict(v) for k, v in cooc.items()}

        # Informative-partner graph (symmetric by construction of NMI).
        # Near-key attributes are excluded on both sides: two high-
        # cardinality columns have NMI ≈ 1 for the trivial reason that every
        # value pair is unique, and "evidence" from a row identifier is
        # exactly the over-confidence these filters exist to prevent.
        self._partners = {a: [] for a in dataset.attributes}
        max_cardinality = max(2, dataset.num_rows // 2)
        predictive = [
            a
            for a in dataset.attributes
            if len(self._value_counts[a]) <= max_cardinality
        ]
        columns = {a: dataset.column(a) for a in dataset.attributes}
        for i, a in enumerate(predictive):
            for b in predictive[i + 1 :]:
                nmi = normalized_mutual_information(
                    columns[a], columns[b], bias_corrected=True
                )
                if nmi >= self.partner_nmi_threshold:
                    self._partners[a].append(b)
                    self._partners[b].append(a)
        self._fitted = True
        return self

    @property
    def partners(self) -> dict[str, list[str]]:
        """The informative-partner graph (attr → correlated attrs)."""
        if not self._fitted:
            raise RuntimeError("model used before fit()")
        return {a: list(b) for a, b in self._partners.items()}

    def _posterior(self, attr: str, tuple_values: dict[str, str]) -> dict[str, float]:
        """Posterior over candidate values for ``attr`` given its partners."""
        partners = self._partners.get(attr, [])
        candidates = list(self._value_counts[attr])
        if len(candidates) > self.max_candidates:
            # Keep only the most frequent candidates: rare values cannot be
            # confident repairs anyway and this bounds the per-cell cost.
            candidates = sorted(
                candidates, key=lambda v: -self._value_counts[attr][v]
            )[: self.max_candidates]
        domain_sizes = {b: len(self._value_counts[b]) for b in partners}
        log_scores = np.empty(len(candidates))
        for i, candidate in enumerate(candidates):
            support = self._value_counts[attr][candidate]
            log_score = np.log(self._priors[attr][candidate])
            for attr_b in partners:
                count = self._cooc.get((attr, candidate, attr_b), {}).get(
                    tuple_values[attr_b], 0
                )
                log_score += np.log(
                    (count + self.smoothing)
                    / (support + self.smoothing * domain_sizes[attr_b])
                )
            log_scores[i] = log_score
        log_scores -= log_scores.max()
        scores = np.exp(log_scores)
        scores /= scores.sum()
        return dict(zip(candidates, scores))

    def _context_support(self, attr: str, value: str, row_values: dict[str, str]) -> int:
        """Max co-occurrence of (attr=value) with the tuple's partner values.

        1 means the value co-occurs with the informative context only through
        the tuple itself (the model was fit on the dirty data, so a tuple
        always supports its own values once).
        """
        support = 0
        for attr_b in self._partners.get(attr, []):
            count = self._cooc.get((attr, value, attr_b), {}).get(row_values[attr_b], 0)
            support = max(support, count)
        return support

    def suggest_repair(self, cell: Cell, dataset: Dataset) -> SuggestedRepair | None:
        """Accepted repair for one cell, or ``None`` below the bars."""
        if not self._fitted:
            raise RuntimeError("model used before fit()")
        if not self._partners.get(cell.attr):
            return None  # nothing informative to impute from
        observed = dataset.value(cell)
        row_values = dataset.row_dict(cell.row)
        posterior = self._posterior(cell.attr, row_values)
        if not posterior:
            return None
        best_value = max(posterior, key=lambda v: (posterior[v], v))
        confidence = posterior[best_value]
        if best_value == observed or confidence < self.confidence_threshold:
            return None
        if self._context_support(cell.attr, observed, row_values) > self.max_observed_support:
            return None
        if self._context_support(cell.attr, best_value, row_values) < self.min_candidate_support:
            return None
        return SuggestedRepair(cell, observed, best_value, confidence)

    def suggest_repairs(
        self, dataset: Dataset, max_cells: int | None = None
    ) -> list[SuggestedRepair]:
        """Scan the dataset and return every accepted repair.

        ``max_cells`` bounds the scan (cells are visited in a fixed
        attribute-major order, so the bound is deterministic).
        """
        repairs = []
        for i, cell in enumerate(dataset.cells()):
            if max_cells is not None and i >= max_cells:
                break
            suggestion = self.suggest_repair(cell, dataset)
            if suggestion is not None:
                repairs.append(suggestion)
        return repairs

    def example_pairs(
        self, dataset: Dataset, max_cells: int | None = None
    ) -> list[tuple[str, str]]:
        """Weakly supervised pairs ``(v̂, v)`` for transformation learning."""
        return [
            (r.repair, r.observed) for r in self.suggest_repairs(dataset, max_cells)
        ]
