"""The augmentation policy Π (Algorithm 3).

Π(v) is the empirical distribution of Algorithm 2 restricted to
transformations applicable to ``v`` (``src`` a substring of ``v``, or an
ADD) and re-normalised.  Sampling from Π(v) plus a uniformly random firing
position realises the paper's generative noisy-channel process.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.augmentation.learn import empirical_distribution, learn_from_pairs
from repro.augmentation.transformations import Transformation
from repro.registry import ComponentError, register
from repro.utils.rng import as_generator


class Policy:
    """Learned policy: empirical distribution + conditional re-normalisation."""

    def __init__(self, distribution: Mapping[Transformation, float]):
        total = float(sum(distribution.values()))
        if distribution and not np.isclose(total, 1.0, atol=1e-6):
            # Tolerate unnormalised input — normalise defensively.
            distribution = {t: p / total for t, p in distribution.items()}
        self._dist: dict[Transformation, float] = dict(distribution)
        self._transformations = list(self._dist)

    @classmethod
    def learn(cls, pairs: Iterable[tuple[str, str]]) -> "Policy":
        """Learn Φ and Π̂ from example pairs ``L = {(v*, v)}`` (Algorithms 1+2)."""
        return cls(empirical_distribution(learn_from_pairs(pairs)))

    @property
    def transformations(self) -> list[Transformation]:
        """The learned transformation set Φ."""
        return list(self._transformations)

    def __len__(self) -> int:
        return len(self._dist)

    def probability(self, phi: Transformation) -> float:
        """Unconditional empirical probability ``p(ϕ)``."""
        return self._dist.get(phi, 0.0)

    def conditional(self, value: str) -> dict[Transformation, float]:
        """Algorithm 3: ``Π̂(v) = P(Φ_v | v)`` re-normalised over applicable Φ."""
        applicable = {t: p for t, p in self._dist.items() if t.applicable(value)}
        mass = sum(applicable.values())
        if mass == 0:
            return {}
        return {t: p / mass for t, p in applicable.items()}

    def top_k(self, value: str, k: int) -> list[tuple[Transformation, float]]:
        """The ``k`` most probable entries of Π̂(v), for inspection (Fig. 8)."""
        conditional = self.conditional(value)
        ranked = sorted(conditional.items(), key=lambda item: (-item[1], str(item[0])))
        return ranked[:k]

    def sample(self, value: str, rng: int | np.random.Generator | None = None) -> Transformation | None:
        """Draw ``ϕ ~ Π̂(v)``; ``None`` when no transformation applies."""
        conditional = self.conditional(value)
        if not conditional:
            return None
        gen = as_generator(rng)
        transformations = list(conditional)
        probs = np.array([conditional[t] for t in transformations])
        probs = probs / probs.sum()
        idx = int(gen.choice(len(transformations), p=probs))
        return transformations[idx]

    def transform(self, value: str, rng: int | np.random.Generator | None = None) -> str | None:
        """Sample a transformation and apply it once at a random position."""
        gen = as_generator(rng)
        phi = self.sample(value, gen)
        if phi is None:
            return None
        return phi.apply(value, gen)


class CompositePolicy(Policy):
    """Extension: a channel that applies up to ``max_edits`` transformations.

    The paper deliberately limits its policies to a single transformation
    per example (§7: richer policies need expensive search) and leaves
    multi-edit channels as future work.  This extension composes the
    learned single-edit policy: after the first edit, each further edit is
    applied with probability ``continue_probability`` (a geometric length
    distribution), re-conditioning Π̂ on the intermediate value each time.

    Useful when a dataset's errors stack (e.g. a typo inside a swapped
    value); for single-error datasets it reduces to the base behaviour in
    expectation as ``continue_probability → 0``.
    """

    def __init__(self, base: Policy, max_edits: int = 3, continue_probability: float = 0.3):
        if max_edits < 1:
            raise ValueError("max_edits must be >= 1")
        if not 0.0 <= continue_probability < 1.0:
            raise ValueError("continue_probability must be in [0, 1)")
        super().__init__({t: base.probability(t) for t in base.transformations})
        self.max_edits = max_edits
        self.continue_probability = continue_probability

    def transform(self, value: str, rng: int | np.random.Generator | None = None) -> str | None:
        gen = as_generator(rng)
        current = super().transform(value, gen)
        if current is None:
            return None
        edits = 1
        while edits < self.max_edits and gen.random() < self.continue_probability:
            next_value = super().transform(current, gen)
            if next_value is None:
                break
            current = next_value
            edits += 1
        # Guard: composition may round-trip back to the original value.
        return current if current != value else None


class UniformPolicy(Policy):
    """Ablation policy: learned Φ, but uniform over applicable transformations.

    This is the "AUG w/o Policy" variant of Table 4 — it discards the
    empirical distribution and picks any valid transformation uniformly.
    """

    def __init__(self, transformations: Sequence[Transformation]):
        unique = list(dict.fromkeys(transformations))
        if unique:
            super().__init__({t: 1.0 / len(unique) for t in unique})
        else:
            super().__init__({})

    def conditional(self, value: str) -> dict[Transformation, float]:
        applicable = [t for t in self._transformations if t.applicable(value)]
        if not applicable:
            return {}
        p = 1.0 / len(applicable)
        return {t: p for t in applicable}


# --------------------------------------------------------------------- #
# Registry wiring: augmentation policies are "policy" components.  A
# component builds to one of three shapes the detector understands:
#
# - ``None`` — learn the policy from the data (the AUG default);
# - a :class:`Policy` instance — use it verbatim as the override;
# - a callable ``(learned: Policy) -> Policy`` — learn first, then wrap
#   (how the Table 4 "AUG w/o Policy" uniform ablation is expressed).
# --------------------------------------------------------------------- #


@register(
    "policy", "learned",
    description="learn (Φ, Π̂) from the labelled errors (the AUG default)",
)
def _learned_policy(params) -> None:
    if params:
        raise ComponentError(f"takes no parameters, got {sorted(params)}")
    return None


@register(
    "policy", "uniform",
    description="learned Φ, uniform over applicable transformations (Table 4)",
)
def _uniform_policy(params):
    if params:
        raise ComponentError(f"takes no parameters, got {sorted(params)}")
    return lambda learned: UniformPolicy(learned.transformations)
