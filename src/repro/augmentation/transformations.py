"""String transformations: the alphabet of the noisy channel (§5.1).

Every transformation maps a source substring to a target substring and falls
into one of three templates:

- ``add``:       ε ⟼ s   (insert characters at a random position)
- ``remove``:    s ⟼ ε   (delete one occurrence of ``s``)
- ``exchange``:  s ⟼ s'  (replace one occurrence of ``s`` with ``s'``)

A transformation applies *once*, at a position/occurrence chosen uniformly
at random, exactly matching the paper's generative process.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.utils.rng import as_generator


class TransformationKind(enum.Enum):
    ADD = "add"
    REMOVE = "remove"
    EXCHANGE = "exchange"


@dataclass(frozen=True, slots=True)
class Transformation:
    """One rewrite ``src ⟼ dst`` (identity rewrites are disallowed)."""

    src: str
    dst: str

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError("identity transformations are not allowed")

    @property
    def kind(self) -> TransformationKind:
        if self.src == "":
            return TransformationKind.ADD
        if self.dst == "":
            return TransformationKind.REMOVE
        return TransformationKind.EXCHANGE

    def applicable(self, value: str) -> bool:
        """Whether this transformation can fire on ``value``.

        ADD applies to any value (there is always an insertion point);
        REMOVE/EXCHANGE require ``src`` to occur as a substring.
        """
        if self.kind is TransformationKind.ADD:
            return True
        return self.src in value

    def occurrences(self, value: str) -> list[int]:
        """Start offsets where the transformation could fire."""
        if self.kind is TransformationKind.ADD:
            return list(range(len(value) + 1))
        positions = []
        start = 0
        while True:
            idx = value.find(self.src, start)
            if idx < 0:
                break
            positions.append(idx)
            start = idx + 1
        return positions

    def apply(self, value: str, rng: int | np.random.Generator | None = None) -> str:
        """Fire once at a uniformly random applicable position.

        Raises ``ValueError`` when not applicable — callers filter through
        :meth:`applicable` (the policy does this for them).
        """
        positions = self.occurrences(value)
        if not positions:
            raise ValueError(f"{self} does not apply to {value!r}")
        gen = as_generator(rng)
        pos = positions[int(gen.integers(0, len(positions)))]
        return value[:pos] + self.dst + value[pos + len(self.src) :]

    def __str__(self) -> str:
        return f"{self.src!r} -> {self.dst!r}"
