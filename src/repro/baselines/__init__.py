"""Competing error-detection methods (§6.1).

Every baseline follows the same protocol as :class:`repro.core.HoloDetect`:
``fit(dataset, training, constraints)`` then ``predict_error_cells(cells)``.
Unsupervised methods ignore ``training``.

- **CV** — flag all cells participating in denial-constraint violations;
- **HC** — a compact HoloClean [55]-style repair engine; flags cells whose
  value the repair step changes;
- **OD** — correlation-based outlier detection over pairwise conditionals;
- **FBI** — forbidden itemsets via the lift measure [50];
- **LR** — supervised logistic regression over co-occurrence + violation
  features;
- **SuperL** — the HoloDetect model trained on T only (no augmentation);
- **SemiL** — self-training semi-supervised variant;
- **ActiveL** — uncertainty-sampling active learning variant;
- **resampling** — minority-class oversampling instead of augmentation;
- augmentation-strategy ablations (random channel / uniform policy).
"""

from repro.baselines.constraint_violations import ConstraintViolationDetector
from repro.baselines.holoclean import HoloCleanDetector
from repro.baselines.outlier import OutlierDetector
from repro.baselines.forbidden_itemsets import ForbiddenItemsetDetector
from repro.baselines.logistic_regression import LogisticRegressionDetector
from repro.baselines.supervised import SupervisedDetector
from repro.baselines.semi_supervised import SemiSupervisedDetector
from repro.baselines.active_learning import ActiveLearningDetector, GroundTruthOracle
from repro.baselines.resampling import ResamplingDetector
from repro.baselines.augmentation_variants import (
    RandomChannelPolicy,
    uniform_policy_from,
)
from repro.baselines.adapters import build_method, method_names

__all__ = [
    "build_method",
    "method_names",
    "ConstraintViolationDetector",
    "HoloCleanDetector",
    "OutlierDetector",
    "ForbiddenItemsetDetector",
    "LogisticRegressionDetector",
    "SupervisedDetector",
    "SemiSupervisedDetector",
    "ActiveLearningDetector",
    "GroundTruthOracle",
    "ResamplingDetector",
    "RandomChannelPolicy",
    "uniform_policy_from",
]
