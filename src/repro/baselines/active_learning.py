"""ActiveL: active learning around the supervised HoloDetect model (§6.1).

Round 0 trains the supervised model on T.  Each of the ``k`` loops scores
the sampling pool, selects up to 50 cells by a *selection strategy*, queries
the oracle for their labels, and retrains.  The paper evaluates k ∈ {5, 10,
20, 100} (Fig. 4) with uncertainty sampling [57]; this module additionally
implements the standard alternatives (entropy, error-seeking, random) so the
choice can be ablated.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Sequence

import numpy as np

from repro.constraints.dc import DenialConstraint
from repro.core.detector import DetectorConfig, HoloDetect
from repro.data.bundle import DatasetBundle
from repro.dataset.table import Cell, Dataset
from repro.dataset.training import LabeledCell, TrainingSet

#: An oracle answers a label query for one cell.
Oracle = Callable[[Cell], LabeledCell]


class GroundTruthOracle:
    """Oracle backed by a benchmark bundle's exact ground truth."""

    def __init__(self, bundle: DatasetBundle):
        self._bundle = bundle
        self.queries = 0

    def __call__(self, cell: Cell) -> LabeledCell:
        self.queries += 1
        return LabeledCell(
            cell=cell,
            observed=self._bundle.dirty.value(cell),
            true=self._bundle.truth.true_value(cell),
        )


def uncertainty_selection(probabilities: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Closest to the decision boundary first (the paper's strategy)."""
    return np.argsort(np.abs(probabilities - 0.5))


def entropy_selection(probabilities: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Highest predictive entropy first (equivalent ranking to uncertainty
    for a binary classifier, kept for API parity with the AL literature)."""
    p = np.clip(probabilities, 1e-9, 1 - 1e-9)
    entropy = -(p * np.log(p) + (1 - p) * np.log(1 - p))
    return np.argsort(-entropy)


def error_seeking_selection(probabilities: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Most-likely-errors first — greedily confirms suspected errors, a
    common practitioner strategy that trades exploration for precision."""
    return np.argsort(-probabilities)


def random_selection(probabilities: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Uniform random — the control arm of any selection-strategy ablation."""
    return rng.permutation(probabilities.size)


#: Registry of selection strategies, addressable by name.
SELECTION_STRATEGIES: dict[str, Callable[[np.ndarray, np.random.Generator], np.ndarray]] = {
    "uncertainty": uncertainty_selection,
    "entropy": entropy_selection,
    "error_seeking": error_seeking_selection,
    "random": random_selection,
}


class ActiveLearningDetector:
    """Label-querying loop around the supervised HoloDetect model."""

    def __init__(
        self,
        oracle: Oracle,
        sampling_pool: Sequence[Cell],
        loops: int = 5,
        labels_per_loop: int = 50,
        config: DetectorConfig | None = None,
        strategy: str = "uncertainty",
    ):
        if strategy not in SELECTION_STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; choose from {sorted(SELECTION_STRATEGIES)}"
            )
        self.oracle = oracle
        self.sampling_pool = list(sampling_pool)
        self.loops = loops
        self.labels_per_loop = labels_per_loop
        self.base_config = replace(config or DetectorConfig(), augment=False)
        self.strategy = strategy
        self._select = SELECTION_STRATEGIES[strategy]
        self._detector: HoloDetect | None = None
        self.total_queried = 0

    def fit(
        self,
        dataset: Dataset,
        training: TrainingSet | None = None,
        constraints: Sequence[DenialConstraint] | None = None,
    ) -> "ActiveLearningDetector":
        if training is None:
            raise ValueError("ActiveL is supervised: a training set is required")
        current = training
        labeled = set(training.cells)
        for loop in range(self.loops + 1):
            self._detector = HoloDetect(
                replace(self.base_config, seed=self.base_config.seed + loop)
            )
            self._detector.fit(dataset, current, constraints)
            if loop == self.loops:
                break
            pool = [c for c in self.sampling_pool if c not in labeled]
            if not pool:
                break
            predictions = self._detector.predict(pool)
            rng = np.random.default_rng(self.base_config.seed + loop)
            order = self._select(predictions.probabilities, rng)
            chosen = [predictions.cells[int(i)] for i in order[: self.labels_per_loop]]
            new_examples = [self.oracle(c) for c in chosen]
            self.total_queried += len(new_examples)
            labeled.update(chosen)
            current = current.extend(new_examples)
        return self

    def predict_error_cells(self, cells: Sequence[Cell] | None = None) -> set[Cell]:
        if self._detector is None:
            raise RuntimeError("detector used before fit()")
        return self._detector.predict_error_cells(cells)
