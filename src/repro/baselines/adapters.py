"""Uniform method adapters: name → ``MethodFn`` for the sweep harness.

Every detector in the library — the HoloDetect model, its ablations, and
the §6.1 baselines — is wrapped here behind one calling convention, the
``MethodFn`` shape the experiment runner consumes::

    method(bundle, split, rng) -> set[Cell]      # predicted error cells

:func:`build_method` resolves a method *name* plus a parameter mapping into
such a callable, so sweep specs (and the benchmark harness) can refer to
methods declaratively.  Stochastic methods draw their model seed from the
per-trial ``rng`` stream, which keeps a sweep reproducible end-to-end from
a single seed while still varying the seed across trials.

Every method is a registered ``method`` component in :mod:`repro.registry`;
:func:`build_method` is a thin resolver over it, which also means sweep
specs accept user-defined methods as ``"module:attr"`` references (the
attribute is called with the parameter mapping's entries as keyword
arguments and must return a ``MethodFn``).

.. deprecated::
    The module-level ``_BUILDERS`` dict predates the registry; reading it
    still works but emits a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import replace
from typing import Callable, Mapping

from repro.baselines.active_learning import ActiveLearningDetector, GroundTruthOracle
from repro.baselines.constraint_violations import ConstraintViolationDetector
from repro.baselines.forbidden_itemsets import ForbiddenItemsetDetector
from repro.baselines.holoclean import HoloCleanDetector
from repro.baselines.logistic_regression import LogisticRegressionDetector
from repro.baselines.outlier import OutlierDetector
from repro.baselines.resampling import ResamplingDetector
from repro.baselines.semi_supervised import SemiSupervisedDetector
from repro.baselines.supervised import SupervisedDetector
from repro.core.detector import DetectorConfig, HoloDetect
from repro.registry import REGISTRY, ComponentError, deprecated_name_map

#: A method under evaluation (same shape as ``repro.evaluation.runner.MethodFn``).
MethodFn = Callable[..., set]

_CONFIG_FIELDS = {f.name for f in dataclasses.fields(DetectorConfig)}


def _trial_seed(rng) -> int:
    """The per-trial model seed, drawn from the trial's RNG stream."""
    return int(rng.integers(0, 2**31))


def detector_config(params: Mapping[str, object]) -> DetectorConfig:
    """Build a :class:`DetectorConfig` from a sweep-spec parameter mapping.

    Unknown keys raise so typos in spec files fail loudly instead of being
    silently ignored.  (Ablation overrides like SuperL's ``augment=False``
    live in the detector wrappers themselves, not here.)
    """
    unknown = set(params) - _CONFIG_FIELDS
    if unknown:
        raise ValueError(
            f"unknown detector parameters {sorted(unknown)}; "
            f"valid keys: {sorted(_CONFIG_FIELDS)}"
        )
    return DetectorConfig(**params)  # type: ignore[arg-type]


def _holodetect(params: Mapping[str, object]) -> MethodFn:
    config = detector_config(params)

    def run(bundle, split, rng):
        det = HoloDetect(replace(config, seed=_trial_seed(rng)))
        det.fit(bundle.dirty, split.training, bundle.constraints)
        return det.predict_error_cells(split.test_cells)

    return run


def _superl(params: Mapping[str, object]) -> MethodFn:
    config = detector_config(params)

    def run(bundle, split, rng):
        det = SupervisedDetector(replace(config, seed=_trial_seed(rng)))
        det.fit(bundle.dirty, split.training, bundle.constraints)
        return det.predict_error_cells(split.test_cells)

    return run


def _semil(params: Mapping[str, object]) -> MethodFn:
    params = dict(params)
    rounds = int(params.pop("rounds", 1))
    pool = int(params.pop("unlabeled_pool_size", 1000))
    config = detector_config(params)

    def run(bundle, split, rng):
        det = SemiSupervisedDetector(
            replace(config, seed=_trial_seed(rng)),
            rounds=rounds,
            unlabeled_pool_size=pool,
        )
        det.fit(bundle.dirty, split.training, bundle.constraints)
        return det.predict_error_cells(split.test_cells)

    return run


def _activel(params: Mapping[str, object]) -> MethodFn:
    params = dict(params)
    loops = int(params.pop("loops", 3))
    labels_per_loop = int(params.pop("labels_per_loop", 50))
    config = detector_config(params)

    def run(bundle, split, rng):
        det = ActiveLearningDetector(
            GroundTruthOracle(bundle),
            split.sampling_cells,
            loops=loops,
            labels_per_loop=labels_per_loop,
            config=replace(config, seed=_trial_seed(rng)),
        )
        det.fit(bundle.dirty, split.training, bundle.constraints)
        return det.predict_error_cells(split.test_cells)

    return run


def _resampling(params: Mapping[str, object]) -> MethodFn:
    config = detector_config(params)

    def run(bundle, split, rng):
        det = ResamplingDetector(replace(config, seed=_trial_seed(rng)))
        det.fit(bundle.dirty, split.training, bundle.constraints)
        return det.predict_error_cells(split.test_cells)

    return run


def _lr(params: Mapping[str, object]) -> MethodFn:
    if params:
        raise ValueError(f"takes no parameters, got {sorted(params)}")

    def run(bundle, split, rng):
        det = LogisticRegressionDetector(seed=_trial_seed(rng))
        det.fit(bundle.dirty, split.training, bundle.constraints)
        return det.predict_error_cells(split.test_cells)

    return run


def _unsupervised(detector_cls, needs_constraints: bool):
    def build(params: Mapping[str, object]) -> MethodFn:
        if params:
            raise ValueError(f"takes no parameters, got {sorted(params)}")

        def run(bundle, split, rng):
            det = detector_cls()
            if needs_constraints:
                det.fit(bundle.dirty, constraints=bundle.constraints)
            else:
                det.fit(bundle.dirty)
            return det.predict_error_cells(split.test_cells)

        return run

    return build


#: Registered built-in methods, in registration order.  "aug" is the
#: paper's name for the full HoloDetect model (augmentation on).
_METHOD_REGISTRATIONS: tuple[tuple[str, Callable[[Mapping[str, object]], MethodFn], str], ...] = (
    ("holodetect", _holodetect, "the full AUG model: learned channel + augmentation"),
    ("aug", _holodetect, "alias of 'holodetect' (the paper's Table 2 name)"),
    ("superl", _superl, "HoloDetect trained on T only (no augmentation)"),
    ("semil", _semil, "self-training semi-supervised variant"),
    ("activel", _activel, "uncertainty-sampling active learning variant"),
    ("resampling", _resampling, "minority-class oversampling instead of augmentation"),
    ("lr", _lr, "logistic regression over co-occurrence + violation features"),
    ("cv", _unsupervised(ConstraintViolationDetector, needs_constraints=True),
     "flag all cells in denial-constraint violations"),
    ("hc", _unsupervised(HoloCleanDetector, needs_constraints=True),
     "HoloClean-style repair engine"),
    ("od", _unsupervised(OutlierDetector, needs_constraints=False),
     "correlation-based outlier detection"),
    ("fbi", _unsupervised(ForbiddenItemsetDetector, needs_constraints=False),
     "forbidden itemsets via the lift measure"),
)

for _name, _builder, _doc in _METHOD_REGISTRATIONS:
    REGISTRY.add("method", _name, _builder, description=_doc)


def method_names() -> tuple[str, ...]:
    """Names accepted by :func:`build_method` (spec-file vocabulary)."""
    return REGISTRY.names("method")


def build_method(name: str, params: Mapping[str, object] | None = None) -> MethodFn:
    """Resolve a method name + parameter mapping into a ``MethodFn``.

    ``name`` is a registered method key or a ``"module:attr"`` reference to
    a user-defined method factory (called as ``attr(**params)``).
    """
    try:
        method = REGISTRY.create("method", name, dict(params or {}))
    except ComponentError as exc:
        raise ValueError(str(exc)) from exc
    if not callable(method):
        raise ValueError(
            f"method {name!r} built {type(method).__name__}, expected a "
            "callable MethodFn(bundle, split, rng) -> set[Cell]"
        )
    return method


def _register_legacy_builder(key: str, builder) -> None:
    """Write-through for the deprecated ``_BUILDERS`` map: an assigned
    builder registers like a built-in, so ``build_method`` keeps finding it."""
    REGISTRY.add(
        "method", key, builder,
        description="legacy _BUILDERS registration", replace=True,
    )


def __getattr__(name: str):
    if name == "_BUILDERS":
        warnings.warn(
            "repro.baselines.adapters._BUILDERS is deprecated; resolve methods "
            "through repro.registry (kind 'method') or build_method()",
            DeprecationWarning,
            stacklevel=2,
        )
        return deprecated_name_map(
            "method",
            lambda key: REGISTRY.entry("method", key).factory,
            writer=_register_legacy_builder,
        )
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
