"""Uniform method adapters: name → ``MethodFn`` for the sweep harness.

Every detector in the library — the HoloDetect model, its ablations, and
the §6.1 baselines — is wrapped here behind one calling convention, the
``MethodFn`` shape the experiment runner consumes::

    method(bundle, split, rng) -> set[Cell]      # predicted error cells

:func:`build_method` resolves a method *name* plus a parameter mapping into
such a callable, so sweep specs (and the benchmark harness) can refer to
methods declaratively.  Stochastic methods draw their model seed from the
per-trial ``rng`` stream, which keeps a sweep reproducible end-to-end from
a single seed while still varying the seed across trials.
"""

from __future__ import annotations

import dataclasses
from dataclasses import replace
from typing import Callable, Mapping

from repro.baselines.active_learning import ActiveLearningDetector, GroundTruthOracle
from repro.baselines.constraint_violations import ConstraintViolationDetector
from repro.baselines.forbidden_itemsets import ForbiddenItemsetDetector
from repro.baselines.holoclean import HoloCleanDetector
from repro.baselines.logistic_regression import LogisticRegressionDetector
from repro.baselines.outlier import OutlierDetector
from repro.baselines.resampling import ResamplingDetector
from repro.baselines.semi_supervised import SemiSupervisedDetector
from repro.baselines.supervised import SupervisedDetector
from repro.core.detector import DetectorConfig, HoloDetect

#: A method under evaluation (same shape as ``repro.evaluation.runner.MethodFn``).
MethodFn = Callable[..., set]

_CONFIG_FIELDS = {f.name for f in dataclasses.fields(DetectorConfig)}


def _trial_seed(rng) -> int:
    """The per-trial model seed, drawn from the trial's RNG stream."""
    return int(rng.integers(0, 2**31))


def detector_config(params: Mapping[str, object]) -> DetectorConfig:
    """Build a :class:`DetectorConfig` from a sweep-spec parameter mapping.

    Unknown keys raise so typos in spec files fail loudly instead of being
    silently ignored.  (Ablation overrides like SuperL's ``augment=False``
    live in the detector wrappers themselves, not here.)
    """
    unknown = set(params) - _CONFIG_FIELDS
    if unknown:
        raise ValueError(
            f"unknown detector parameters {sorted(unknown)}; "
            f"valid keys: {sorted(_CONFIG_FIELDS)}"
        )
    return DetectorConfig(**params)  # type: ignore[arg-type]


def _holodetect(params: Mapping[str, object]) -> MethodFn:
    config = detector_config(params)

    def run(bundle, split, rng):
        det = HoloDetect(replace(config, seed=_trial_seed(rng)))
        det.fit(bundle.dirty, split.training, bundle.constraints)
        return det.predict_error_cells(split.test_cells)

    return run


def _superl(params: Mapping[str, object]) -> MethodFn:
    config = detector_config(params)

    def run(bundle, split, rng):
        det = SupervisedDetector(replace(config, seed=_trial_seed(rng)))
        det.fit(bundle.dirty, split.training, bundle.constraints)
        return det.predict_error_cells(split.test_cells)

    return run


def _semil(params: Mapping[str, object]) -> MethodFn:
    params = dict(params)
    rounds = int(params.pop("rounds", 1))
    pool = int(params.pop("unlabeled_pool_size", 1000))
    config = detector_config(params)

    def run(bundle, split, rng):
        det = SemiSupervisedDetector(
            replace(config, seed=_trial_seed(rng)),
            rounds=rounds,
            unlabeled_pool_size=pool,
        )
        det.fit(bundle.dirty, split.training, bundle.constraints)
        return det.predict_error_cells(split.test_cells)

    return run


def _activel(params: Mapping[str, object]) -> MethodFn:
    params = dict(params)
    loops = int(params.pop("loops", 3))
    labels_per_loop = int(params.pop("labels_per_loop", 50))
    config = detector_config(params)

    def run(bundle, split, rng):
        det = ActiveLearningDetector(
            GroundTruthOracle(bundle),
            split.sampling_cells,
            loops=loops,
            labels_per_loop=labels_per_loop,
            config=replace(config, seed=_trial_seed(rng)),
        )
        det.fit(bundle.dirty, split.training, bundle.constraints)
        return det.predict_error_cells(split.test_cells)

    return run


def _resampling(params: Mapping[str, object]) -> MethodFn:
    config = detector_config(params)

    def run(bundle, split, rng):
        det = ResamplingDetector(replace(config, seed=_trial_seed(rng)))
        det.fit(bundle.dirty, split.training, bundle.constraints)
        return det.predict_error_cells(split.test_cells)

    return run


def _lr(params: Mapping[str, object]) -> MethodFn:
    if params:
        raise ValueError(f"takes no parameters, got {sorted(params)}")

    def run(bundle, split, rng):
        det = LogisticRegressionDetector(seed=_trial_seed(rng))
        det.fit(bundle.dirty, split.training, bundle.constraints)
        return det.predict_error_cells(split.test_cells)

    return run


def _unsupervised(detector_cls, needs_constraints: bool):
    def build(params: Mapping[str, object]) -> MethodFn:
        if params:
            raise ValueError(f"takes no parameters, got {sorted(params)}")

        def run(bundle, split, rng):
            det = detector_cls()
            if needs_constraints:
                det.fit(bundle.dirty, constraints=bundle.constraints)
            else:
                det.fit(bundle.dirty)
            return det.predict_error_cells(split.test_cells)

        return run

    return build


#: name → builder(params) → MethodFn.  "aug" is the paper's name for the
#: full HoloDetect model (augmentation on).
_BUILDERS: dict[str, Callable[[Mapping[str, object]], MethodFn]] = {
    "holodetect": _holodetect,
    "aug": _holodetect,
    "superl": _superl,
    "semil": _semil,
    "activel": _activel,
    "resampling": _resampling,
    "lr": _lr,
    "cv": _unsupervised(ConstraintViolationDetector, needs_constraints=True),
    "hc": _unsupervised(HoloCleanDetector, needs_constraints=True),
    "od": _unsupervised(OutlierDetector, needs_constraints=False),
    "fbi": _unsupervised(ForbiddenItemsetDetector, needs_constraints=False),
}


def method_names() -> tuple[str, ...]:
    """Names accepted by :func:`build_method` (spec-file vocabulary)."""
    return tuple(_BUILDERS)


def build_method(name: str, params: Mapping[str, object] | None = None) -> MethodFn:
    """Resolve a method name + parameter mapping into a ``MethodFn``."""
    if name not in _BUILDERS:
        raise ValueError(f"unknown method {name!r}; choose from {method_names()}")
    try:
        return _BUILDERS[name](dict(params or {}))
    except (TypeError, ValueError) as exc:
        raise ValueError(f"method {name!r}: {exc}") from exc
