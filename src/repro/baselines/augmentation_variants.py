"""Augmentation-strategy ablations (Table 4).

- ``RandomChannelPolicy`` — "Rand. Trans.": augmentation with completely
  random transformations (generic typo channels and random value garbling)
  *not* learned from the data;
- ``uniform_policy_from`` — "AUG w/o Policy": the transformation set Φ is
  learned from the data with Algorithm 1, but transformations are applied
  uniformly at random instead of via the learned distribution Π̂.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.augmentation.naive_bayes import NaiveBayesRepairModel
from repro.augmentation.policy import Policy, UniformPolicy
from repro.augmentation.transformations import Transformation
from repro.dataset.table import Dataset
from repro.dataset.training import TrainingSet
from repro.errors.typos import random_typo
from repro.registry import register
from repro.utils.rng import as_generator


class RandomChannelPolicy(Policy):
    """A channel of dataset-agnostic random transformations.

    ``transform`` applies either a random typo channel or a random shuffle /
    truncation of the value — errors of plausible *categories* but with no
    connection to how the dataset's actual errors look.
    """

    def __init__(self, seed: int = 0):
        # Seed the distribution with a placeholder so ``len`` is truthy and
        # Algorithm 4 does not bail out early; sampling is overridden.
        super().__init__({Transformation("", "?"): 1.0})
        self._seed = seed

    def transform(self, value: str, rng=None) -> str | None:
        gen = as_generator(rng)
        choice = int(gen.integers(0, 4))
        if choice == 0:
            return random_typo(value, gen)
        if choice == 1 and len(value) >= 2:
            # Shuffle the characters (misalignment-style garbling).
            chars = list(value)
            gen.shuffle(chars)
            shuffled = "".join(chars)
            return shuffled if shuffled != value else random_typo(value, gen)
        if choice == 2 and len(value) >= 2:
            # Truncate to a random prefix.
            cut = int(gen.integers(1, len(value)))
            return value[:cut]
        return random_typo(value, gen)


def uniform_policy_from(
    dataset: Dataset,
    training: TrainingSet,
    min_error_pairs: int = 10,
    weak_supervision_max_cells: int = 20_000,
) -> UniformPolicy:
    """Learn Φ exactly as AUG does, but discard the distribution Π̂.

    Mirrors :meth:`repro.core.detector.HoloDetect._learn_policy`'s data
    sourcing (labelled errors topped up by Naïve Bayes weak supervision) so
    that Table 4 isolates the *policy*, not the transformation set.
    """
    pairs = training.error_pairs()
    if len(pairs) < min_error_pairs:
        weak = NaiveBayesRepairModel().fit(dataset)
        pairs = pairs + weak.example_pairs(dataset, max_cells=weak_supervision_max_cells)
    learned = Policy.learn(pairs)
    return UniformPolicy(learned.transformations)


# --------------------------------------------------------------------- #
# Registry wiring (see repro.augmentation.policy for the contract).
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class RandomChannelConfig:
    """Typed config of the random-channel policy (registry key
    ``random-channel``)."""

    seed: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int) or self.seed < 0:
            raise ValueError(f"seed must be a non-negative integer, got {self.seed!r}")


@register(
    "policy", "random-channel",
    config=RandomChannelConfig,
    description="dataset-agnostic random transformations (Table 4 'Rand. Trans.')",
)
def _random_channel(cfg: RandomChannelConfig) -> RandomChannelPolicy:
    return RandomChannelPolicy(seed=cfg.seed)
