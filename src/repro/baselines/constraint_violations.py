"""CV: the rule-based detector (§6.1).

Flags as erroneous every cell in a group of cells that participates in a
denial-constraint violation — the proxy for classic rule-based error
detection [12].  High recall when errors violate rules, low precision
because whole violating groups are flagged.
"""

from __future__ import annotations

from typing import Sequence

from repro.constraints.dc import DenialConstraint
from repro.constraints.violations import ViolationEngine
from repro.dataset.table import Cell, Dataset
from repro.dataset.training import TrainingSet


class ConstraintViolationDetector:
    """Unsupervised: errors = cells touched by any DC violation."""

    def __init__(self) -> None:
        self._flagged: set[Cell] | None = None

    def fit(
        self,
        dataset: Dataset,
        training: TrainingSet | None = None,
        constraints: Sequence[DenialConstraint] | None = None,
    ) -> "ConstraintViolationDetector":
        engine = ViolationEngine(list(constraints or []))
        self._flagged = engine.violating_cells(dataset)
        return self

    def predict_error_cells(self, cells: Sequence[Cell] | None = None) -> set[Cell]:
        if self._flagged is None:
            raise RuntimeError("detector used before fit()")
        if cells is None:
            return set(self._flagged)
        return self._flagged & set(cells)
