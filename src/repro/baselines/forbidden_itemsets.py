"""FBI: forbidden itemsets via the lift measure (Rammelaere et al. [50]).

A pair of values (a, b) across two attributes is a *forbidden itemset* when
it co-occurs far less than independence predicts — lift =
P(a,b) / (P(a)·P(b)) below a threshold τ — while both values individually
have significant support.  Cells participating in forbidden pairs are
flagged.

The support requirement is what gives FBI the behaviour §6.2 reports: high
precision when forbidden sets have significant support, inability to catch
errors whose values occur only a handful of times (typos).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from repro.constraints.dc import DenialConstraint
from repro.dataset.table import Cell, Dataset
from repro.dataset.training import TrainingSet


class ForbiddenItemsetDetector:
    """Unsupervised low-lift co-occurrence detector."""

    def __init__(self, max_lift: float = 0.25, min_support: int = 5):
        if max_lift <= 0:
            raise ValueError("max_lift must be positive")
        self.max_lift = max_lift
        self.min_support = min_support
        self._flagged: set[Cell] | None = None

    def fit(
        self,
        dataset: Dataset,
        training: TrainingSet | None = None,
        constraints: Sequence[DenialConstraint] | None = None,
    ) -> "ForbiddenItemsetDetector":
        n = dataset.num_rows
        attrs = dataset.attributes
        columns = {a: dataset.column(a) for a in attrs}
        value_counts = {a: dataset.value_counts(a) for a in attrs}

        joint: dict[tuple[str, str], dict[tuple[str, str], int]] = defaultdict(
            lambda: defaultdict(int)
        )
        for row in range(n):
            for i, a in enumerate(attrs):
                for b in attrs[i + 1 :]:
                    joint[(a, b)][(columns[a][row], columns[b][row])] += 1

        flagged: set[Cell] = set()
        for row in range(n):
            for i, a in enumerate(attrs):
                va = columns[a][row]
                support_a = value_counts[a][va]
                if support_a < self.min_support:
                    continue
                for b in attrs[i + 1 :]:
                    vb = columns[b][row]
                    support_b = value_counts[b][vb]
                    if support_b < self.min_support:
                        continue
                    p_joint = joint[(a, b)][(va, vb)] / n
                    lift = p_joint / ((support_a / n) * (support_b / n))
                    if lift < self.max_lift:
                        flagged.add(Cell(row, a))
                        flagged.add(Cell(row, b))
        self._flagged = flagged
        return self

    def predict_error_cells(self, cells: Sequence[Cell] | None = None) -> set[Cell]:
        if self._flagged is None:
            raise RuntimeError("detector used before fit()")
        if cells is None:
            return set(self._flagged)
        return self._flagged & set(cells)
