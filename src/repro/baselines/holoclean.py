"""HC: a compact HoloClean-style repair engine used as a detector (§6.1).

HoloClean [55] repairs data in three steps: detect noisy cells (here: the
cells CV flags), build a candidate domain per noisy cell, and pick the most
probable candidate under a statistical model learned from the clean part of
the data.  The HC *detector* then flags exactly the cells whose value the
repair engine changed — trading CV's recall for precision, the behaviour
Table 2 exercises.

Our statistical model is a Naïve Bayes pseudo-likelihood over co-occurrence
with the tuple's other attributes, fit on tuples untouched by violations
(HoloClean's "learn from clean cells"), combined with a violation-reduction
check: a repair is accepted only when it strictly reduces the tuple's
constraint violations (evaluated through the same FD group indexes the
feature layer uses, so the check is O(1) per candidate).
"""

from __future__ import annotations

from typing import Sequence

from repro.augmentation.naive_bayes import NaiveBayesRepairModel
from repro.constraints.dc import DenialConstraint
from repro.constraints.violations import ViolationEngine
from repro.dataset.table import Cell, Dataset
from repro.dataset.training import TrainingSet
from repro.features.dataset_level import ConstraintViolationFeaturizer


class HoloCleanDetector:
    """Errors = cells whose value the repair engine changes."""

    def __init__(self, repair_confidence: float = 0.5):
        self.repair_confidence = repair_confidence
        self._flagged: set[Cell] | None = None

    def fit(
        self,
        dataset: Dataset,
        training: TrainingSet | None = None,
        constraints: Sequence[DenialConstraint] | None = None,
    ) -> "HoloCleanDetector":
        constraints = list(constraints or [])
        engine = ViolationEngine(constraints)
        noisy_cells = engine.violating_cells(dataset)
        if not noisy_cells:
            self._flagged = set()
            return self

        # Learn the repair model from rows not involved in any violation —
        # when almost everything is dirty (low-precision CV, as on Soccer)
        # fall back to all rows, which is exactly the failure mode §6.2
        # observes there.
        noisy_rows = {c.row for c in noisy_cells}
        clean_rows = [r for r in range(dataset.num_rows) if r not in noisy_rows]
        if len(clean_rows) >= max(20, dataset.num_rows // 10):
            reference = Dataset.from_rows(
                dataset.attributes, [dataset.row_values(r) for r in clean_rows]
            )
        else:
            reference = dataset
        model = NaiveBayesRepairModel(confidence_threshold=self.repair_confidence)
        model.fit(reference)

        # The featurizer's FD indexes answer "how many violations would this
        # tuple have if this one cell held value v" in O(1).
        violation_counter = ConstraintViolationFeaturizer(constraints).fit(dataset)

        flagged: set[Cell] = set()
        for cell in noisy_cells:
            posterior = model._posterior(cell.attr, dataset.row_dict(cell.row))
            if not posterior:
                continue
            best = max(posterior, key=lambda v: (posterior[v], v))
            observed = dataset.value(cell)
            if best == observed or posterior[best] < self.repair_confidence:
                continue
            before = violation_counter.transform([cell], dataset).sum()
            after = violation_counter.transform([cell], dataset, values=[best]).sum()
            if after < before:
                flagged.add(cell)
        self._flagged = flagged
        return self

    def predict_error_cells(self, cells: Sequence[Cell] | None = None) -> set[Cell]:
        if self._flagged is None:
            raise RuntimeError("detector used before fit()")
        if cells is None:
            return set(self._flagged)
        return self._flagged & set(cells)
