"""LR: supervised logistic regression over engineered features (§6.1).

The features are exactly the paper's: pairwise co-occurrence statistics of
attribute values and constraint-violation counts — a *linear* ensemble of
the OD and CV signals.  Its consistently poor Table 2 performance is the
paper's argument for representation learning over feature engineering.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.constraints.dc import DenialConstraint
from repro.dataset.table import Cell, Dataset
from repro.dataset.training import TrainingSet
from repro.features.dataset_level import ConstraintViolationFeaturizer
from repro.features.pipeline import FeaturePipeline
from repro.features.tuple_level import CooccurrenceFeaturizer
from repro.nn import Linear, Tensor, binary_cross_entropy_with_logits, Adam
from repro.utils.rng import as_generator


class LogisticRegressionDetector:
    """A single linear layer over co-occurrence + violation features."""

    def __init__(self, epochs: int = 150, lr: float = 0.05, seed: int = 0, threshold: float = 0.5):
        self.epochs = epochs
        self.lr = lr
        self.seed = seed
        self.threshold = threshold
        self._pipeline: FeaturePipeline | None = None
        self._linear: Linear | None = None
        self._dataset: Dataset | None = None
        self._train_cells: set[Cell] = set()

    def fit(
        self,
        dataset: Dataset,
        training: TrainingSet | None = None,
        constraints: Sequence[DenialConstraint] | None = None,
    ) -> "LogisticRegressionDetector":
        if training is None or len(training) == 0:
            raise ValueError("LR is supervised: a training set is required")
        rng = as_generator(self.seed)
        featurizers = [CooccurrenceFeaturizer()]
        if constraints:
            featurizers.append(ConstraintViolationFeaturizer(constraints))
        self._pipeline = FeaturePipeline(featurizers).fit(dataset)
        self._dataset = dataset
        self._train_cells = set(training.cells)

        features = self._pipeline.transform(
            training.cells, dataset, values=[e.observed for e in training]
        ).numeric
        labels = np.array([[1.0 if e.is_error else 0.0] for e in training])
        self._linear = Linear(features.shape[1], 1, rng=rng)
        optimizer = Adam(self._linear.parameters(), lr=self.lr)
        x = Tensor(features)
        for _ in range(self.epochs):
            optimizer.zero_grad()
            loss = binary_cross_entropy_with_logits(self._linear(x), labels)
            loss.backward()
            optimizer.step()
        return self

    def predict_error_cells(self, cells: Sequence[Cell] | None = None) -> set[Cell]:
        if self._linear is None or self._pipeline is None or self._dataset is None:
            raise RuntimeError("detector used before fit()")
        if cells is None:
            cells = [c for c in self._dataset.cells() if c not in self._train_cells]
        cells = list(cells)
        flagged: set[Cell] = set()
        batch = 2048
        for start in range(0, len(cells), batch):
            chunk = cells[start : start + batch]
            numeric = self._pipeline.transform(chunk, self._dataset).numeric
            logits = (numeric @ self._linear.weight.data + self._linear.bias.data).ravel()
            probs = 1.0 / (1.0 + np.exp(-np.clip(logits, -60, 60)))
            flagged.update(c for c, p in zip(chunk, probs) if p >= self.threshold)
        return flagged
