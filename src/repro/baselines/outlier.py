"""OD: correlation-based outlier detection (§6.1).

For a cell of attribute A, the method looks at attributes correlated with A
and checks the pairwise conditional distributions: if the observed value is
improbable given *every* correlated attribute's value in the tuple, the cell
is an outlier.  Correlation between attributes is measured with normalised
mutual information on the noisy data itself.

Matches the paper's observed behaviour: high precision (a value contradicted
by all correlated evidence is almost surely wrong), recall that swings with
how strongly the dataset's errors distort co-occurrence.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from repro.constraints.dc import DenialConstraint
from repro.dataset.table import Cell, Dataset
from repro.dataset.training import TrainingSet
from repro.utils.stats import normalized_mutual_information

__all__ = ["OutlierDetector", "normalized_mutual_information"]


class OutlierDetector:
    """Unsupervised conditional-probability outlier detector."""

    def __init__(self, correlation_threshold: float = 0.35, probability_threshold: float = 0.05):
        self.correlation_threshold = correlation_threshold
        self.probability_threshold = probability_threshold
        self._flagged: set[Cell] | None = None

    def fit(
        self,
        dataset: Dataset,
        training: TrainingSet | None = None,
        constraints: Sequence[DenialConstraint] | None = None,
    ) -> "OutlierDetector":
        attrs = dataset.attributes
        columns = {a: dataset.column(a) for a in attrs}

        # Correlated-attribute graph via NMI.
        correlated: dict[str, list[str]] = {a: [] for a in attrs}
        for i, a in enumerate(attrs):
            for b in attrs[i + 1 :]:
                if normalized_mutual_information(columns[a], columns[b]) >= self.correlation_threshold:
                    correlated[a].append(b)
                    correlated[b].append(a)

        # Conditional co-occurrence counts P(t[A]=v | t[B]=w).
        cond: dict[tuple[str, str, str], dict[str, int]] = defaultdict(lambda: defaultdict(int))
        marginals: dict[tuple[str, str], int] = defaultdict(int)
        for row in range(dataset.num_rows):
            for a in attrs:
                if not correlated[a]:
                    continue
                v = columns[a][row]
                for b in correlated[a]:
                    w = columns[b][row]
                    cond[(a, b, w)][v] += 1
                    marginals[(b, w)] += 1

        flagged: set[Cell] = set()
        for row in range(dataset.num_rows):
            for a in attrs:
                if not correlated[a]:
                    continue
                v = columns[a][row]
                # Improbable under every correlated attribute => outlier.
                max_conditional = 0.0
                for b in correlated[a]:
                    w = columns[b][row]
                    total = marginals[(b, w)]
                    if total == 0:
                        continue
                    p = cond[(a, b, w)].get(v, 0) / total
                    max_conditional = max(max_conditional, p)
                if max_conditional < self.probability_threshold:
                    flagged.add(Cell(row, a))
        self._flagged = flagged
        return self

    def predict_error_cells(self, cells: Sequence[Cell] | None = None) -> set[Cell]:
        if self._flagged is None:
            raise RuntimeError("detector used before fit()")
        if cells is None:
            return set(self._flagged)
        return self._flagged & set(cells)
