"""Resampling: the traditional imbalance remedy compared in Table 3.

Instead of synthesising new error examples, the minority (error) class is
oversampled — labelled errors are duplicated until the classes balance.
Table 3 shows this fails under heterogeneity: duplicating the few observed
errors cannot cover the error types the training set never sampled.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

import numpy as np

from repro.constraints.dc import DenialConstraint
from repro.core.detector import DetectorConfig, HoloDetect
from repro.dataset.table import Cell, Dataset
from repro.dataset.training import TrainingSet


def oversample_errors(
    training: TrainingSet, rng: int | np.random.Generator | None = 0
) -> TrainingSet:
    """Duplicate error examples until classes balance.

    With zero labelled errors the set is returned unchanged (there is
    nothing to resample — the regime where Table 3 reports F1 = 0).
    """
    from repro.utils.rng import as_generator

    gen = as_generator(rng)
    errors = training.errors
    correct = training.correct
    if not errors or len(errors) >= len(correct):
        return training
    deficit = len(correct) - len(errors)
    idx = gen.integers(0, len(errors), size=deficit)
    return training.extend(errors[int(i)] for i in idx)


class ResamplingDetector:
    """The HoloDetect model trained on an oversampled training set."""

    def __init__(self, config: DetectorConfig | None = None):
        self.base_config = replace(config or DetectorConfig(), augment=False)
        self._detector: HoloDetect | None = None

    def fit(
        self,
        dataset: Dataset,
        training: TrainingSet | None = None,
        constraints: Sequence[DenialConstraint] | None = None,
    ) -> "ResamplingDetector":
        if training is None:
            raise ValueError("resampling is supervised: a training set is required")
        resampled = oversample_errors(training, rng=self.base_config.seed)
        self._detector = HoloDetect(self.base_config)
        self._detector.fit(dataset, resampled, constraints)
        return self

    def predict_error_cells(self, cells: Sequence[Cell] | None = None) -> set[Cell]:
        if self._detector is None:
            raise RuntimeError("detector used before fit()")
        return self._detector.predict_error_cells(cells)
