"""SemiL: self-training semi-supervised learning [64] (§6.1).

Round 0 trains the HoloDetect model on T alone; every subsequent round
applies the model to unlabelled cells, adopts the most confident predictions
as pseudo-labels, and retrains on the enlarged set.  Only high-confidence
labels are added per round, as the paper specifies.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

import numpy as np

from repro.constraints.dc import DenialConstraint
from repro.core.detector import DetectorConfig, HoloDetect
from repro.dataset.table import Cell, Dataset
from repro.dataset.training import LabeledCell, TrainingSet


class SemiSupervisedDetector:
    """Self-training wrapper around the supervised HoloDetect model."""

    def __init__(
        self,
        config: DetectorConfig | None = None,
        rounds: int = 2,
        confidence: float = 0.95,
        max_new_labels_per_round: int = 500,
        unlabeled_pool_size: int = 3000,
    ):
        self.base_config = replace(config or DetectorConfig(), augment=False)
        self.rounds = rounds
        self.confidence = confidence
        self.max_new_labels_per_round = max_new_labels_per_round
        self.unlabeled_pool_size = unlabeled_pool_size
        self._detector: HoloDetect | None = None

    def fit(
        self,
        dataset: Dataset,
        training: TrainingSet | None = None,
        constraints: Sequence[DenialConstraint] | None = None,
    ) -> "SemiSupervisedDetector":
        if training is None:
            raise ValueError("SemiL is supervised: a training set is required")
        current = training
        labeled_cells = set(training.cells)
        rng = np.random.default_rng(self.base_config.seed)

        pool = [c for c in dataset.cells() if c not in labeled_cells]
        if len(pool) > self.unlabeled_pool_size:
            idx = rng.choice(len(pool), size=self.unlabeled_pool_size, replace=False)
            pool = [pool[int(i)] for i in idx]

        for round_idx in range(self.rounds + 1):
            self._detector = HoloDetect(replace(self.base_config, seed=self.base_config.seed + round_idx))
            self._detector.fit(dataset, current, constraints)
            if round_idx == self.rounds:
                break
            remaining = [c for c in pool if c not in labeled_cells]
            if not remaining:
                break
            predictions = self._detector.predict(remaining)
            # Adopt the most confident predictions on both sides as truth.
            new_examples: list[LabeledCell] = []
            order = np.argsort(np.abs(predictions.probabilities - 0.5))[::-1]
            for i in order[: self.max_new_labels_per_round]:
                cell = predictions.cells[int(i)]
                p = predictions.probabilities[int(i)]
                if p >= self.confidence:
                    # Pseudo-error: pretend the observed value is wrong.  The
                    # "true" value is unknown, so a sentinel that differs from
                    # the observation stands in (only the label matters).
                    observed = dataset.value(cell)
                    new_examples.append(
                        LabeledCell(cell, observed, observed + "\x00pseudo")
                    )
                elif p <= 1.0 - self.confidence:
                    observed = dataset.value(cell)
                    new_examples.append(LabeledCell(cell, observed, observed))
            if not new_examples:
                break
            labeled_cells.update(e.cell for e in new_examples)
            current = current.extend(new_examples)
        return self

    def predict_error_cells(self, cells: Sequence[Cell] | None = None) -> set[Cell]:
        if self._detector is None:
            raise RuntimeError("detector used before fit()")
        return self._detector.predict_error_cells(cells)
