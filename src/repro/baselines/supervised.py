"""SuperL: the HoloDetect model trained on T only (§6.1).

Identical representation Q and classifier M — supervision is simply limited
to the labelled examples, no augmentation.  The paper's Table 2 shows this
yields high precision but recall capped by the few labelled errors, the gap
augmentation closes.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.constraints.dc import DenialConstraint
from repro.core.detector import DetectorConfig, HoloDetect
from repro.dataset.table import Cell, Dataset
from repro.dataset.training import TrainingSet


class SupervisedDetector:
    """HoloDetect with ``augment=False``."""

    def __init__(self, config: DetectorConfig | None = None):
        base = config or DetectorConfig()
        self._detector = HoloDetect(replace(base, augment=False))

    @property
    def config(self) -> DetectorConfig:
        return self._detector.config

    def fit(
        self,
        dataset: Dataset,
        training: TrainingSet | None = None,
        constraints: Sequence[DenialConstraint] | None = None,
    ) -> "SupervisedDetector":
        if training is None:
            raise ValueError("SuperL is supervised: a training set is required")
        self._detector.fit(dataset, training, constraints)
        return self

    def predict_error_cells(self, cells: Sequence[Cell] | None = None) -> set[Cell]:
        return self._detector.predict_error_cells(cells)

    def predict(self, cells: Sequence[Cell] | None = None):
        return self._detector.predict(cells)
