"""Command-line interface.

Ten subcommands::

    python -m repro detect    --input data.csv --labels labels.csv ...
    python -m repro rescore   --input data.csv --labels labels.csv --edits edits.csv ...
    python -m repro benchmark --dataset hospital --rows 300
    python -m repro sweep     --spec sweep.toml --workers 4 --store results.jsonl --resume
    python -m repro report    --store results.jsonl --spec sweep.toml
    python -m repro spec      validate detector.toml   (or: describe)
    python -m repro serve     --models models/ --port 8765
    python -m repro client    detect --fingerprint ab12cd --input data.csv --tenant acme
    python -m repro policy    --input data.csv --labels labels.csv --value "60612"
    python -m repro shard     convert --input big.csv --out big-shards/   (or: info, verify)

``detect`` runs the full detector on a CSV and writes a triage CSV of
per-cell error probabilities (``--json`` additionally writes a
machine-readable ``repro.detect/v1`` report).  ``rescore`` drives the
interactive repair loop incrementally: it applies a batch of cell edits
through a :class:`~repro.core.detector.DetectionSession` and re-scores only
the affected cells instead of re-predicting the whole relation.
``benchmark`` evaluates the detector on one of the built-in benchmark
bundles.  ``sweep`` expands a declarative scenario matrix (datasets × error
profiles × label budgets × methods) and executes it on a worker pool with a
resumable on-disk result store; with ``--coordinate``, N invocations on
hosts sharing a filesystem drain one matrix cooperatively through lease
files (:mod:`repro.coordination`).  ``report`` renders a live
markdown/JSON dashboard — per-axis progress, in-flight leases, ETA — from
a store other workers are still filling (see ``docs/architecture.md``).
``spec``
validates and pretty-prints declarative detector specs
(``repro.spec/v1``; see :mod:`repro.spec`) — ``detect`` and ``benchmark``
accept one via ``--spec`` in place of the individual model flags.
``serve`` runs the long-lived multi-tenant detection server over a
directory of saved models, routing requests by spec fingerprint (see
:mod:`repro.serving`); ``client`` drives a running server (score a CSV,
apply repairs through the server-side session, health/registry/evict).
``policy`` prints the learned noisy channel's conditional distribution for
a probe value.  ``shard`` manages out-of-core shard directories
(:mod:`repro.dataset.sharded`): ``convert`` streams a CSV into
memory-mapped shards at bounded memory, ``info`` prints the manifest
summary, and ``verify`` recomputes every shard digest.

File formats:

- **labels CSV** — header ``row,attribute,true_value``; one line per cell
  the user has verified.  ``row`` is the 0-based row index in the input
  CSV.  A cell is an error example when ``true_value`` differs from the
  observed value.
- **edits CSV** — header ``row,attribute,value``; one line per cell repair
  to apply before re-scoring (``value`` is the new cell content).
- **constraints file** — one denial constraint per line in the parser
  syntax (``t1.Zip == t2.Zip & t1.City != t2.City``); blank lines and
  ``#`` comments are ignored.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
import time
from pathlib import Path

from repro.augmentation.policy import Policy
from repro.constraints.dc import DenialConstraint, parse_denial_constraint
from repro.core.detector import DetectionSession, DetectorConfig, ErrorPredictions, HoloDetect
from repro.dataset.loader import read_csv
from repro.dataset.table import Cell, Dataset
from repro.dataset.training import LabeledCell, TrainingSet


def load_constraints(path: str | Path) -> list[DenialConstraint]:
    """Parse a constraints file (one DC per line, # comments allowed)."""
    constraints = []
    for line_number, line in enumerate(Path(path).read_text(encoding="utf-8").splitlines(), 1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        try:
            constraints.append(parse_denial_constraint(stripped))
        except ValueError as exc:
            raise SystemExit(f"{path}:{line_number}: {exc}") from exc
    return constraints


def load_labels(path: str | Path, dataset: Dataset) -> TrainingSet:
    """Read a ``row,attribute,true_value`` labels CSV into a TrainingSet."""
    examples = []
    with Path(path).open(newline="", encoding="utf-8") as f:
        reader = csv.DictReader(f)
        required = {"row", "attribute", "true_value"}
        if reader.fieldnames is None or not required <= set(reader.fieldnames):
            raise SystemExit(
                f"{path}: labels CSV needs columns {sorted(required)}, "
                f"got {reader.fieldnames}"
            )
        for record in reader:
            row = _parse_row_index(record["row"], dataset, path)
            attr = record["attribute"]
            if attr not in dataset.schema:
                raise SystemExit(f"{path}: unknown attribute {attr!r}")
            cell = Cell(row, attr)
            examples.append(
                LabeledCell(cell, observed=dataset.value(cell), true=record["true_value"])
            )
    return TrainingSet(examples)


def _parse_row_index(raw: str, dataset: Dataset, path: str | Path) -> int:
    try:
        row = int(raw)
    except ValueError:
        raise SystemExit(f"{path}: row {raw!r} is not an integer") from None
    if not 0 <= row < dataset.num_rows:
        raise SystemExit(f"{path}: row {row} out of range")
    return row


def load_edits(path: str | Path, dataset: Dataset) -> dict[Cell, str]:
    """Read a ``row,attribute,value`` edits CSV into a cell→value mapping."""
    edits: dict[Cell, str] = {}
    with Path(path).open(newline="", encoding="utf-8") as f:
        reader = csv.DictReader(f)
        required = {"row", "attribute", "value"}
        if reader.fieldnames is None or not required <= set(reader.fieldnames):
            raise SystemExit(
                f"{path}: edits CSV needs columns {sorted(required)}, "
                f"got {reader.fieldnames}"
            )
        for record in reader:
            row = _parse_row_index(record["row"], dataset, path)
            attr = record["attribute"]
            if attr not in dataset.schema:
                raise SystemExit(f"{path}: unknown attribute {attr!r}")
            edits[Cell(row, attr)] = record["value"]
    return edits


def _write_triage(
    path: str | Path, dataset: Dataset, predictions: ErrorPredictions, threshold: float
) -> int:
    """Write the ranked per-cell triage CSV; returns the flagged-cell count.

    Delegates to the shared report helpers (:mod:`repro.serving.reports`) so
    the CSV, the ``--json`` report, and the serving layer's responses all
    rank and flag identically.
    """
    from repro.serving.reports import write_triage_csv

    return write_triage_csv(path, dataset, predictions, threshold)


def _detector_config(args: argparse.Namespace) -> DetectorConfig:
    try:
        return DetectorConfig(
            epochs=args.epochs,
            embedding_dim=args.embedding_dim,
            seed=args.seed,
            augment=not args.no_augment,
            prediction_batch=args.prediction_batch,
            prediction_workers=args.prediction_workers,
            feature_cache=not args.no_feature_cache,
            artifact_dir=getattr(args, "artifacts", None),
            backend=getattr(args, "backend", None),
        )
    except ValueError as exc:
        raise SystemExit(f"invalid detector configuration: {exc}") from exc


def _build_detector(args: argparse.Namespace) -> HoloDetect:
    """The detector for ``detect``/``rescore``/``benchmark``: ``--spec``
    (declarative, wins over the individual model flags) or flag-derived."""
    if getattr(args, "spec", None):
        from repro.spec import DetectorSpec, SpecError

        try:
            spec = DetectorSpec.from_file(args.spec)
        except SpecError as exc:
            raise SystemExit(f"detector spec error: {exc}") from exc
        print(f"spec: {args.spec} (fingerprint {spec.fingerprint()[:12]})", file=sys.stderr)
        detector = HoloDetect.from_spec(spec)
        if getattr(args, "artifacts", None):
            # The flag wins over the spec's own [artifacts] table.
            detector.use_artifacts(args.artifacts)
        if getattr(args, "backend", None):
            # The flag wins over the spec's own [compute] table; neither
            # affects the fingerprint, so this is always safe.
            detector.config.backend = args.backend
        return detector
    return HoloDetect(_detector_config(args))


def _write_detect_json(
    path: str | Path,
    args: argparse.Namespace,
    dataset: Dataset,
    detector: HoloDetect,
    predictions: ErrorPredictions,
) -> None:
    """The machine-readable ``repro.detect/v1`` companion of the triage CSV.

    One report builder feeds both this file and the serving layer's
    ``POST /v1/detect`` responses (:mod:`repro.serving.reports`), so the two
    outputs cannot drift; the CLI only adds its file-path context.
    """
    from repro.serving.reports import build_detect_report

    payload = build_detect_report(
        dataset, predictions, args.threshold, detector=detector
    )
    payload["input"] = str(args.input)
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def cmd_detect(args: argparse.Namespace) -> int:
    dataset = read_csv(args.input)
    training = load_labels(args.labels, dataset)
    constraints = load_constraints(args.constraints) if args.constraints else []
    print(
        f"dataset: {dataset.num_rows} rows x {len(dataset.attributes)} attrs; "
        f"{len(training)} labels ({len(training.errors)} errors); "
        f"{len(constraints)} constraints",
        file=sys.stderr,
    )
    detector = _build_detector(args)
    detector.fit(dataset, training, constraints)
    if detector.policy is not None:
        print(
            f"learned {len(detector.policy)} transformations; "
            f"generated {detector.augmented_count} synthetic errors",
            file=sys.stderr,
        )
    predictions = detector.predict()
    flagged = _write_triage(args.output, dataset, predictions, args.threshold)
    print(f"wrote {args.output}: {flagged} cells flagged", file=sys.stderr)
    if args.json:
        _write_detect_json(args.json, args, dataset, detector, predictions)
        print(f"wrote {args.json}", file=sys.stderr)
    if detector.cache_stats is not None:
        print(f"feature cache: {detector.cache_stats.summary()}", file=sys.stderr)
    if detector.artifact_stats is not None:
        print(f"artifact store: {detector.artifact_stats.summary()}", file=sys.stderr)
    if args.save_model:
        from repro.persistence import save_detector

        save_detector(detector, args.save_model)
        print(f"saved model to {args.save_model}", file=sys.stderr)
    return 0


def cmd_rescore(args: argparse.Namespace) -> int:
    dataset = read_csv(args.input)
    if args.model:
        from repro.persistence import load_detector

        detector = load_detector(args.model, dataset)
        if args.artifacts:
            detector.use_artifacts(args.artifacts)
        print(f"loaded model from {args.model}", file=sys.stderr)
    elif args.labels:
        training = load_labels(args.labels, dataset)
        constraints = load_constraints(args.constraints) if args.constraints else []
        detector = HoloDetect(_detector_config(args))
        detector.fit(dataset, training, constraints)
    else:
        raise SystemExit("rescore needs --model (saved detector) or --labels (fit fresh)")
    # The session needs a baseline scoring of the pre-edit relation; within
    # one process every further apply() is then proportional to the edit.
    started = time.perf_counter()
    session = DetectionSession(detector)
    baseline_elapsed = time.perf_counter() - started
    print(
        f"initial full pass: {len(session.predictions.cells)} cells "
        f"in {baseline_elapsed:.3f}s",
        file=sys.stderr,
    )
    edits = load_edits(args.edits, dataset)
    started = time.perf_counter()
    predictions = session.apply(edits, refresh=args.refresh)
    elapsed = time.perf_counter() - started
    print(
        f"applied {len(edits)} edits "
        f"({len(session.last_delta.cells)} effective, "
        f"{len(session.last_delta.columns)} columns, "
        f"{len(session.last_delta.rows)} rows); "
        f"incremental re-score of {session.rescored_cells} cells "
        f"in {elapsed:.3f}s",
        file=sys.stderr,
    )
    flagged = _write_triage(args.output, dataset, predictions, args.threshold)
    print(f"wrote {args.output}: {flagged} cells flagged", file=sys.stderr)
    if detector.cache_stats is not None:
        print(f"feature cache: {detector.cache_stats.summary()}", file=sys.stderr)
    if detector.artifact_stats is not None:
        print(f"artifact store: {detector.artifact_stats.summary()}", file=sys.stderr)
    return 0


def cmd_benchmark(args: argparse.Namespace) -> int:
    from repro.data import load_dataset
    from repro.evaluation import evaluate_predictions, make_split

    bundle = load_dataset(args.dataset, num_rows=args.rows, seed=args.seed)
    split = make_split(bundle, args.training_fraction, rng=args.seed)
    detector = _build_detector(args)

    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    detector.fit(bundle.dirty, split.training, bundle.constraints)
    flagged = detector.predict_error_cells(split.test_cells)
    if profiler is not None:
        profiler.disable()
        profiler.dump_stats(args.profile)
        print(
            f"wrote {args.profile} (inspect with: python -m pstats {args.profile})",
            file=sys.stderr,
        )
    metrics = evaluate_predictions(
        flagged,
        bundle.error_cells,
        split.test_cells,
    )
    if detector.timings:
        stages = "  ".join(
            f"{stage}={seconds:.3f}s"
            for stage, seconds in sorted(detector.timings.items())
        )
        print(f"timings: {stages}", file=sys.stderr)
    print(f"{args.dataset}: P={metrics.precision:.3f} R={metrics.recall:.3f} F1={metrics.f1:.3f}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.evaluation.matrix import (
        CoordinateOptions,
        MatrixSpecError,
        ScenarioMatrix,
        run_matrix,
    )
    from repro.evaluation.store import ResultStore

    try:
        matrix = ScenarioMatrix.from_file(args.spec)
    except MatrixSpecError as exc:
        raise SystemExit(f"sweep spec error: {exc}") from exc
    if not args.coordinate:
        for flag, default in (("worker_id", None), ("lease_ttl", None)):
            if getattr(args, flag) is not None:
                raise SystemExit(
                    f"--{flag.replace('_', '-')} only applies with --coordinate"
                )
    if args.compact and not args.store:
        raise SystemExit("--compact requires --store (there is nothing to compact)")
    coordinate = None
    if args.coordinate:
        if not args.store:
            raise SystemExit(
                "--coordinate requires --store: the store is the shared "
                "completion ledger all workers drain against"
            )
        coordinate = CoordinateOptions(
            worker_id=args.worker_id,
            ttl=args.lease_ttl if args.lease_ttl is not None else 60.0,
        )
    store = None
    if args.store:
        store_path = Path(args.store)
        # --coordinate implies resume: cooperating workers share one store,
        # so "already exists" is the normal case, not a mistake.
        if store_path.exists() and not args.resume and not args.coordinate:
            raise SystemExit(
                f"{store_path} already exists; pass --resume to serve completed "
                "scenarios from it, or remove it for a fresh sweep"
            )
        store = ResultStore(store_path)
        if store.skipped_lines:
            print(
                f"store: skipped {store.skipped_lines} unparseable line(s) "
                "(tail of a killed run?)",
                file=sys.stderr,
            )
    elif args.resume:
        raise SystemExit("--resume requires --store (there is nothing to resume from)")

    total = len(matrix.expand())
    done = 0

    def progress(record: dict) -> None:
        nonlocal done
        done += 1
        spec = record["spec"]
        if record.get("remote"):
            source = "remote"
        elif record.get("cached"):
            source = "cached"
        else:
            source = "run"
        print(
            f"[{done}/{total}] {spec['dataset']}/{spec['error_profile']}"
            f"/{spec['label_budget']:g}/{spec['method']}: "
            f"F1={record['metrics']['f1']:.3f} ({source})",
            file=sys.stderr,
        )

    started = time.perf_counter()
    report = run_matrix(
        matrix,
        store=store,
        workers=args.workers,
        resume=args.resume,
        executor=args.executor,
        on_result=progress,
        artifact_dir=args.artifacts,
        backend=args.backend,
        coordinate=coordinate,
    )
    elapsed = time.perf_counter() - started
    print(report.table())
    print(
        f"sweep: {report.total} scenarios ({report.executed} run, "
        f"{report.cached} cached) with {report.workers} worker(s) in {elapsed:.1f}s",
        file=sys.stderr,
    )
    if report.artifacts is not None:
        stats = report.artifacts["stats"]
        print(
            f"artifact store {report.artifacts['dir']}: "
            f"{stats.get('hits', 0)} hits / {stats.get('lookups', 0)} lookups, "
            f"{stats.get('puts', 0)} stored",
            file=sys.stderr,
        )
    if report.coordination is not None:
        coord = report.coordination
        print(
            f"coordination {coord['dir']}: worker {coord['worker']} executed "
            f"{coord['executed']}, peers contributed {coord['remote']} "
            f"({coord['initially_cached']} already stored)",
            file=sys.stderr,
        )
    if args.compact and store is not None:
        kept, dropped = store.compact()
        print(
            f"compacted {store.path}: kept {kept} record(s), "
            f"dropped {dropped} superseded line(s)",
            file=sys.stderr,
        )
    if args.report:
        payload = report.to_json()
        payload["spec_file"] = str(args.spec)
        payload["wall_time"] = elapsed
        Path(args.report).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"wrote {args.report}", file=sys.stderr)
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Render the live sweep dashboard (``repro.report/v1``).

    Read-only: safe to run against a store other hosts are appending to
    right now — that is the point (observing a cooperative sweep's health
    while it runs).
    """
    from repro.coordination import build_report, coordination_dir, render_markdown
    from repro.evaluation.matrix import MatrixSpecError, ScenarioMatrix
    from repro.evaluation.store import ResultStore

    store_path = Path(args.store)
    if not store_path.exists() and not args.spec:
        raise SystemExit(
            f"{store_path} does not exist; pass --spec to report on a sweep "
            "that has not produced results yet"
        )
    store = ResultStore(store_path)
    matrix = None
    if args.spec:
        try:
            matrix = ScenarioMatrix.from_file(args.spec)
        except MatrixSpecError as exc:
            raise SystemExit(f"sweep spec error: {exc}") from exc
    leases = args.leases
    if leases is None:
        default_dir = coordination_dir(store_path)
        if default_dir.is_dir():
            leases = default_dir
    payload = build_report(
        store, matrix=matrix, coordination=leases, ttl=args.lease_ttl
    )
    print(render_markdown(payload), end="")
    if args.json:
        Path(args.json).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"wrote {args.json}", file=sys.stderr)
    return 0


def cmd_spec(args: argparse.Namespace) -> int:
    from repro.spec import DetectorSpec, SpecError

    try:
        spec = DetectorSpec.from_file(args.file)
    except SpecError as exc:
        raise SystemExit(f"detector spec error: {exc}") from exc
    if args.action == "validate":
        featurizers = (
            "default pipeline"
            if spec.featurizers is None
            else f"{len(spec.featurizers)} featurizer(s)"
        )
        print(
            f"{args.file}: valid repro.spec/v1 "
            f"({featurizers}, policy={spec.policy[0]}, "
            f"calibrator={spec.calibrator[0]})"
        )
        print(f"fingerprint: {spec.fingerprint()}")
    else:  # describe
        print(spec.describe())
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serving.server import DetectionServer, ServeConfig

    try:
        config = ServeConfig(
            model_root=args.models,
            host=args.host,
            port=args.port,
            capacity=args.capacity,
            artifact_root=args.artifacts,
            max_body=args.max_body,
            read_timeout=args.read_timeout,
            batch_window=args.batch_window,
            max_batch_cells=args.max_batch_cells,
            backend=args.backend,
            max_inflight=args.max_inflight,
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown=args.breaker_cooldown,
        )
    except ValueError as exc:
        raise SystemExit(f"invalid server configuration: {exc}") from exc
    server = DetectionServer(config)
    fingerprints = server.registry.fingerprints
    if not fingerprints:
        print(
            f"warning: no servable models under {args.models} "
            "(save one with: repro detect --spec ... --save-model DIR)",
            file=sys.stderr,
        )

    async def run() -> None:
        await server.start()
        print(
            f"serving {len(fingerprints)} model(s) on "
            f"http://{config.host}:{server.port} "
            f"(registry capacity {config.capacity}, "
            f"batch window {config.batch_window * 1000:.1f}ms)",
            file=sys.stderr,
        )
        for fingerprint in fingerprints:
            print(f"  {fingerprint[:12]}  {server.registry.path_of(fingerprint)}",
                  file=sys.stderr)
        await server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    return 0


def cmd_client(args: argparse.Namespace) -> int:
    from repro.serving.client import ServeClient, ServeClientError

    client = ServeClient(args.host, args.port, binary=args.binary)
    try:
        return _run_client_action(args, client)
    except ServeClientError as exc:
        raise SystemExit(f"server error: {exc}") from exc
    except (ConnectionError, OSError) as exc:
        raise SystemExit(
            f"cannot reach server at {args.host}:{args.port}: {exc}"
        ) from exc


def _run_client_action(args: argparse.Namespace, client) -> int:
    if args.action == "health":
        print(json.dumps(client.health(), indent=2, sort_keys=True))
        return 0
    if args.action == "registry":
        print(json.dumps(client.registry(), indent=2, sort_keys=True))
        return 0
    if args.action == "evict":
        if not args.fingerprint and not args.tenant:
            raise SystemExit("client evict needs --fingerprint and/or --tenant")
        response = client.evict(fingerprint=args.fingerprint, tenant=args.tenant)
        print(json.dumps(response, indent=2, sort_keys=True))
        return 0
    if args.action == "detect":
        if not args.input:
            raise SystemExit("client detect needs --input")
        if not args.fingerprint and not args.tenant:
            raise SystemExit("client detect needs --fingerprint (or a registered --tenant)")
        dataset = read_csv(args.input)
        response = client.detect(
            args.fingerprint or None,
            dataset=dataset,
            tenant=args.tenant,
            threshold=args.threshold,
        )
    elif args.action == "rescore":
        if not args.tenant:
            raise SystemExit("client rescore needs --tenant")
        if not args.edits:
            raise SystemExit("client rescore needs --edits")
        edits = _load_wire_edits(args.edits)
        response = client.rescore(
            args.tenant, edits, refresh=args.refresh, threshold=args.threshold
        )
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown client action {args.action!r}")

    report = response.get("report", {})
    print(
        f"{args.action}: {report.get('scored_cells', 0)} cells scored, "
        f"{report.get('flagged_cells', 0)} flagged "
        f"(fingerprint {str(response.get('fingerprint'))[:12]})",
        file=sys.stderr,
    )
    if args.action == "rescore":
        print(
            f"applied {response.get('applied_edits', 0)} edits; "
            f"re-scored {response.get('rescored_cells', 0)} cells",
            file=sys.stderr,
        )
    if args.output:
        _write_report_triage(args.output, report)
        print(f"wrote {args.output}", file=sys.stderr)
    if args.json:
        Path(args.json).write_text(
            json.dumps(response, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"wrote {args.json}", file=sys.stderr)
    return 0


def _load_wire_edits(path: str | Path) -> list[dict]:
    """Read a ``row,attribute,value`` edits CSV into wire edit objects.

    Range/attribute validation happens server-side (the server owns the
    tenant's relation; the client may not have a copy at all).
    """
    edits = []
    with Path(path).open(newline="", encoding="utf-8") as f:
        reader = csv.DictReader(f)
        required = {"row", "attribute", "value"}
        if reader.fieldnames is None or not required <= set(reader.fieldnames):
            raise SystemExit(
                f"{path}: edits CSV needs columns {sorted(required)}, "
                f"got {reader.fieldnames}"
            )
        for record in reader:
            try:
                row = int(record["row"])
            except ValueError:
                raise SystemExit(f"{path}: row {record['row']!r} is not an integer")
            edits.append(
                {"row": row, "attribute": record["attribute"], "value": record["value"]}
            )
    return edits


def _write_report_triage(path: str | Path, report: dict) -> None:
    """Render a served detect report's ranked cells as the triage CSV."""
    from repro.serving.reports import report_cells

    with Path(path).open("w", newline="", encoding="utf-8") as f:
        writer = csv.writer(f)
        writer.writerow(["row", "attribute", "value", "error_probability", "flagged"])
        for entry in report_cells(report):
            writer.writerow(
                [
                    entry["row"],
                    entry["attribute"],
                    entry["value"],
                    f"{entry['error_probability']:.4f}",
                    int(entry["flagged"]),
                ]
            )


def cmd_policy(args: argparse.Namespace) -> int:
    dataset = read_csv(args.input)
    training = load_labels(args.labels, dataset)
    pairs = training.error_pairs()
    if not pairs:
        print("no labelled errors: learning from weak supervision", file=sys.stderr)
        from repro.augmentation.naive_bayes import NaiveBayesRepairModel

        pairs = NaiveBayesRepairModel().fit(dataset).example_pairs(dataset)
    policy = Policy.learn(pairs)
    print(f"{len(policy)} transformations learned from {len(pairs)} example pairs")
    for transformation, probability in policy.top_k(args.value, args.top):
        print(f"  {probability:6.4f}  {transformation}")
    return 0


def cmd_shard(args: argparse.Namespace) -> int:
    from repro.dataset.sharded import ShardedDataset

    if args.shard_command == "convert":
        sharded = ShardedDataset.from_csv(
            args.input,
            args.out,
            shard_rows=args.rows_per_shard,
            force=args.force,
        )
        print(
            f"wrote {sharded.num_rows} rows x {len(sharded.attributes)} "
            f"attributes into {sharded.num_shards} shards at {args.out}"
        )
        print(f"fingerprint: {sharded.fingerprint()}")
        return 0
    sharded = ShardedDataset(args.dir)
    if args.shard_command == "info":
        info = {
            "dir": str(args.dir),
            "rows": sharded.num_rows,
            "attributes": list(sharded.attributes),
            "shards": sharded.num_shards,
            "fingerprint": sharded.fingerprint(),
            "inmemory_bytes": sharded.inmemory_bytes,
        }
        print(json.dumps(info, indent=2))
        return 0
    # verify: recompute every per-shard column digest against the manifest.
    try:
        sharded.verify()
    except ValueError as exc:
        print(f"FAILED: {exc}", file=sys.stderr)
        return 1
    print(
        f"ok: {sharded.num_shards} shards, {sharded.num_rows} rows, "
        f"fingerprint {sharded.fingerprint()}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro", description="HoloDetect few-shot error detection"
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_model_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--epochs", type=int, default=40, help="training epochs")
        p.add_argument("--embedding-dim", type=int, default=16, help="embedding width")
        p.add_argument("--seed", type=int, default=0, help="random seed")
        p.add_argument(
            "--no-augment", action="store_true", help="disable data augmentation (SuperL mode)"
        )
        p.add_argument(
            "--prediction-batch",
            type=int,
            default=512,
            help="cells featurised per prediction chunk",
        )
        p.add_argument(
            "--prediction-workers",
            type=int,
            default=1,
            help="threads featurising prediction chunks concurrently",
        )
        p.add_argument(
            "--no-feature-cache",
            action="store_true",
            help="disable memoisation of transformed feature blocks",
        )
        p.add_argument(
            "--artifacts",
            metavar="DIR",
            help="fitted-artifact store directory: reuse trained embeddings "
            "and fitted featurizer states across runs (see docs/architecture.md)",
        )
        p.add_argument(
            "--backend",
            metavar="NAME",
            help="compute backend for training/scoring: numpy (fused "
            "kernels, default), reference (autodiff graph), torch, or a "
            "module:attr reference (see docs/architecture.md)",
        )

    detect = sub.add_parser("detect", help="detect errors in a CSV")
    detect.add_argument("--input", required=True, help="input CSV (header row required)")
    detect.add_argument("--labels", required=True, help="labels CSV (row,attribute,true_value)")
    detect.add_argument("--constraints", help="denial constraints file (optional)")
    detect.add_argument("--output", required=True, help="output triage CSV")
    detect.add_argument("--threshold", type=float, default=0.5, help="flagging threshold")
    detect.add_argument("--save-model", help="directory to save the fitted detector")
    detect.add_argument(
        "--spec",
        help="declarative detector spec (repro.spec/v1 .toml/.json); "
        "supersedes the individual model flags",
    )
    detect.add_argument(
        "--json", help="also write a machine-readable repro.detect/v1 JSON report"
    )
    add_model_args(detect)
    detect.set_defaults(func=cmd_detect)

    rescore = sub.add_parser(
        "rescore", help="apply cell repairs and incrementally re-score"
    )
    rescore.add_argument("--input", required=True, help="input CSV (header row required)")
    rescore.add_argument("--edits", required=True, help="edits CSV (row,attribute,value)")
    rescore.add_argument("--output", required=True, help="output triage CSV")
    rescore.add_argument("--labels", help="labels CSV to fit a fresh detector")
    rescore.add_argument("--model", help="directory of a saved detector (skips fitting)")
    rescore.add_argument("--constraints", help="denial constraints file (optional)")
    rescore.add_argument("--threshold", type=float, default=0.5, help="flagging threshold")
    rescore.add_argument(
        "--refresh",
        action="store_true",
        help="also refit representation models dirtied by the edits",
    )
    add_model_args(rescore)
    rescore.set_defaults(func=cmd_rescore)

    bench = sub.add_parser("benchmark", help="evaluate on a built-in benchmark")
    bench.add_argument("--dataset", default="hospital", help="benchmark name")
    bench.add_argument("--rows", type=int, default=300, help="dataset scale")
    bench.add_argument(
        "--training-fraction", type=float, default=0.1, help="fraction of tuples labelled"
    )
    bench.add_argument(
        "--spec",
        help="declarative detector spec (repro.spec/v1 .toml/.json); "
        "supersedes the individual model flags",
    )
    bench.add_argument(
        "--profile",
        metavar="FILE",
        help="profile fit+predict with cProfile and write the pstats dump here",
    )
    add_model_args(bench)
    bench.set_defaults(func=cmd_benchmark)

    sweep = sub.add_parser("sweep", help="run a declarative scenario-matrix sweep")
    sweep.add_argument("--spec", required=True, help="matrix spec file (.toml or .json)")
    sweep.add_argument(
        "--workers",
        type=int,
        default=1,
        help="parallel workers (clamped to the pending-scenario count)",
    )
    sweep.add_argument(
        "--executor",
        choices=("process", "thread", "serial"),
        default="process",
        help="worker pool flavour (scenarios are CPU-bound: use process)",
    )
    sweep.add_argument("--store", help="resumable JSONL result store path")
    sweep.add_argument(
        "--artifacts",
        metavar="DIR",
        help="shared fitted-artifact store directory: workers reuse one "
        "embedding/featurizer fit per (data, config) instead of one per scenario",
    )
    sweep.add_argument(
        "--backend",
        metavar="NAME",
        help="compute backend every worker trains on (numpy, reference, "
        "torch, or module:attr)",
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help="serve scenarios already in --store from disk; run only the missing ones",
    )
    sweep.add_argument(
        "--coordinate",
        action="store_true",
        help="cooperatively drain the matrix with other 'repro sweep "
        "--coordinate' processes (possibly on other hosts) sharing --store: "
        "scenarios are claimed via lease files in <store>.coord/ (implies "
        "--resume)",
    )
    sweep.add_argument(
        "--worker-id",
        help="worker name in leases and the audit log "
        "(default: <hostname>-<pid>; requires --coordinate)",
    )
    sweep.add_argument(
        "--lease-ttl",
        type=float,
        help="seconds without a heartbeat before another worker may reclaim "
        "a lease (default: 60; requires --coordinate)",
    )
    sweep.add_argument(
        "--compact",
        action="store_true",
        help="after the sweep, rewrite --store keeping only latest-wins "
        "records (long cooperative sweeps grow the append-only log unboundedly)",
    )
    sweep.add_argument("--report", help="write the full sweep summary as JSON")
    sweep.set_defaults(func=cmd_sweep)

    report = sub.add_parser(
        "report",
        help="render a live dashboard from a (partially filled) sweep store",
    )
    report.add_argument("--store", required=True, help="sweep result store (JSONL)")
    report.add_argument(
        "--spec",
        help="matrix spec file: adds grid totals, per-axis progress, and ETA "
        "for scenarios not yet run",
    )
    report.add_argument(
        "--leases",
        help="coordination directory with live leases "
        "(default: <store>.coord when it exists)",
    )
    report.add_argument(
        "--lease-ttl",
        type=float,
        default=60.0,
        help="TTL used to label in-flight leases as stale (default: 60)",
    )
    report.add_argument("--json", help="write the repro.report/v1 payload here")
    report.set_defaults(func=cmd_report)

    spec = sub.add_parser(
        "spec", help="validate / describe a declarative detector spec"
    )
    spec.add_argument(
        "action", choices=("validate", "describe"), help="what to do with the spec"
    )
    spec.add_argument("file", help="detector spec file (repro.spec/v1 .toml/.json)")
    spec.set_defaults(func=cmd_spec)

    serve = sub.add_parser(
        "serve", help="run the multi-tenant detection server over saved models"
    )
    serve.add_argument(
        "--models", required=True,
        help="model root: a directory of saved detectors (repro detect --save-model)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8765, help="bind port (0 = ephemeral)"
    )
    serve.add_argument(
        "--capacity", type=int, default=8,
        help="hot-registry LRU capacity (loaded detectors kept in memory)",
    )
    serve.add_argument(
        "--artifacts", metavar="DIR",
        help="root for per-tenant fitted-artifact stores (<DIR>/tenants/<name>)",
    )
    serve.add_argument(
        "--max-body", type=int, default=8 * 1024 * 1024,
        help="reject request bodies larger than this many bytes",
    )
    serve.add_argument(
        "--read-timeout", type=float, default=10.0,
        help="seconds before a slow client is timed out",
    )
    serve.add_argument(
        "--batch-window", type=float, default=0.002,
        help="seconds concurrent small detect requests wait to coalesce",
    )
    serve.add_argument(
        "--max-batch-cells", type=int, default=4096,
        help="bound on one coalesced scoring pass, in cells",
    )
    serve.add_argument(
        "--backend",
        metavar="NAME",
        help="compute backend every served detector scores on (numpy, "
        "reference, torch, or module:attr)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=64,
        help="shed connections with a 503 beyond this many in flight",
    )
    serve.add_argument(
        "--breaker-threshold", type=int, default=3,
        help="consecutive model-load failures that open a fingerprint's circuit",
    )
    serve.add_argument(
        "--breaker-cooldown", type=float, default=30.0,
        help="seconds an open circuit fast-fails before admitting a probe load",
    )
    serve.set_defaults(func=cmd_serve)

    client = sub.add_parser(
        "client", help="drive a running detection server (repro serve)"
    )
    client.add_argument(
        "action",
        choices=("detect", "rescore", "health", "registry", "evict"),
        help="what to ask the server",
    )
    client.add_argument("--host", default="127.0.0.1", help="server address")
    client.add_argument("--port", type=int, default=8765, help="server port")
    client.add_argument(
        "--fingerprint", help="spec fingerprint of the detector (prefix ok)"
    )
    client.add_argument(
        "--tenant", help="tenant name (registers/uses a server-side session)"
    )
    client.add_argument("--input", help="input CSV to score (detect)")
    client.add_argument("--edits", help="edits CSV row,attribute,value (rescore)")
    client.add_argument(
        "--refresh", action="store_true",
        help="also refit representation models dirtied by the edits (rescore)",
    )
    client.add_argument(
        "--threshold", type=float, default=None, help="flagging threshold"
    )
    client.add_argument("--output", help="write the served triage CSV here")
    client.add_argument("--json", help="write the full wire response as JSON")
    client.add_argument(
        "--binary", action="store_true",
        help="speak the compact repro-pack wire format instead of JSON",
    )
    client.set_defaults(func=cmd_client)

    policy = sub.add_parser("policy", help="inspect the learned noisy channel")
    policy.add_argument("--input", required=True, help="input CSV")
    policy.add_argument("--labels", required=True, help="labels CSV")
    policy.add_argument("--value", required=True, help="probe value for the conditional")
    policy.add_argument("--top", type=int, default=10, help="entries to print")
    add_model_args(policy)
    policy.set_defaults(func=cmd_policy)

    shard = sub.add_parser(
        "shard", help="convert/inspect out-of-core shard directories"
    )
    shard_sub = shard.add_subparsers(dest="shard_command", required=True)
    convert = shard_sub.add_parser(
        "convert", help="stream a CSV into a memory-mapped shard directory"
    )
    convert.add_argument("--input", required=True, help="input CSV (header row required)")
    convert.add_argument("--out", required=True, help="shard directory to create")
    convert.add_argument(
        "--rows-per-shard",
        type=int,
        default=4096,
        help="rows per shard chunk (default 4096)",
    )
    convert.add_argument(
        "--force", action="store_true", help="overwrite an existing shard directory"
    )
    convert.set_defaults(func=cmd_shard)
    info = shard_sub.add_parser("info", help="print a shard directory's manifest summary")
    info.add_argument("dir", help="shard directory")
    info.set_defaults(func=cmd_shard)
    verify = shard_sub.add_parser(
        "verify", help="recompute shard digests against the manifest"
    )
    verify.add_argument("dir", help="shard directory")
    verify.set_defaults(func=cmd_shard)
    return parser


def main(argv: list[str] | None = None) -> int:
    # Chaos harness hook: a REPRO_FAULTS spec in the environment installs a
    # deterministic fault injector for this process (and, via inheritance,
    # every worker subprocess a sweep spawns).  No-op when unset.
    from repro.faults.inject import install_from_env

    install_from_env()
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
