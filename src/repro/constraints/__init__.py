"""Denial-constraint substrate.

Denial constraints (§2.1) are the optional integrity-constraint input Σ of
HoloDetect.  This package provides the constraint representation and parser
(:mod:`repro.constraints.dc`), an efficient violation engine used both by the
dataset-level representation features and by the CV/HC baselines
(:mod:`repro.constraints.violations`), and the α-noisy constraint discovery
used by the Appendix A.2.2 robustness study (:mod:`repro.constraints.discovery`).
"""

from repro.constraints.dc import (
    DenialConstraint,
    Predicate,
    functional_dependency,
    parse_denial_constraint,
)
from repro.constraints.violations import ViolationEngine
from repro.constraints.discovery import discover_constraints, discover_noisy_constraints

__all__ = [
    "DenialConstraint",
    "Predicate",
    "functional_dependency",
    "parse_denial_constraint",
    "ViolationEngine",
    "discover_constraints",
    "discover_noisy_constraints",
]
