"""Denial constraints: representation, FD sugar, and a small parser.

A denial constraint (DC, §2.1) forbids tuple pairs that jointly satisfy every
predicate: ``∀ t1, t2: ¬(P1 ∧ … ∧ PK)`` with predicates of the form
``t1.A op t2.B`` or ``t1.A op const`` and ``op ∈ {==, !=, <, <=, >, >=}``.
Comparisons are lexicographic over the string values — numeric attributes in
the benchmark datasets are zero-padded by their generators, the same
convention the original benchmarks use.

The ubiquitous special case is a functional dependency ``X → Y``:
``¬(t1.X == t2.X ∧ t1.Y != t2.Y)``; :func:`functional_dependency` builds it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

_OPS: dict[str, Callable[[str, str], bool]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_NEGATION = {"==": "!=", "!=": "==", "<": ">=", ">=": "<", ">": "<=", "<=": ">"}


@dataclass(frozen=True)
class Predicate:
    """One predicate ``t1.left op (t2.right | const)``.

    ``right_attr`` references the second tuple; ``constant`` pins a literal.
    Exactly one of the two must be set.
    """

    left_attr: str
    op: str
    right_attr: str | None = None
    constant: str | None = None

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unsupported operator {self.op!r}")
        if (self.right_attr is None) == (self.constant is None):
            raise ValueError("exactly one of right_attr or constant must be given")

    @property
    def is_equality_join(self) -> bool:
        """``t1.A == t2.A`` predicates enable hash-join evaluation."""
        return self.op == "==" and self.right_attr is not None

    def holds(self, t1: Mapping[str, str], t2: Mapping[str, str]) -> bool:
        """Evaluate against a pair of tuples (dicts attr → value)."""
        left = t1[self.left_attr]
        right = self.constant if self.constant is not None else t2[self.right_attr]
        return _OPS[self.op](left, right)

    def attributes(self) -> set[str]:
        attrs = {self.left_attr}
        if self.right_attr is not None:
            attrs.add(self.right_attr)
        return attrs

    def __str__(self) -> str:
        rhs = f"t2.{self.right_attr}" if self.right_attr is not None else repr(self.constant)
        return f"t1.{self.left_attr} {self.op} {rhs}"


@dataclass(frozen=True)
class DenialConstraint:
    """A conjunction of predicates that no tuple pair may satisfy."""

    predicates: tuple[Predicate, ...]
    name: str = ""

    def __post_init__(self) -> None:
        if not self.predicates:
            raise ValueError("a denial constraint needs at least one predicate")

    def violated_by(self, t1: Mapping[str, str], t2: Mapping[str, str]) -> bool:
        """Whether the ordered pair ``(t1, t2)`` violates this constraint."""
        return all(p.holds(t1, t2) for p in self.predicates)

    def attributes(self) -> set[str]:
        """All attributes mentioned by any predicate."""
        out: set[str] = set()
        for p in self.predicates:
            out |= p.attributes()
        return out

    def equality_join_attrs(self) -> list[str]:
        """Attributes usable as hash-join keys (``t1.A == t2.A``)."""
        return [
            p.left_attr
            for p in self.predicates
            if p.is_equality_join and p.left_attr == p.right_attr
        ]

    def residual_predicates(self) -> list[Predicate]:
        """Predicates that are not same-attribute equality joins."""
        keys = set(self.equality_join_attrs())
        return [
            p
            for p in self.predicates
            if not (p.is_equality_join and p.left_attr == p.right_attr and p.left_attr in keys)
        ]

    def __str__(self) -> str:
        label = f"{self.name}: " if self.name else ""
        return label + " & ".join(str(p) for p in self.predicates)


def functional_dependency(lhs: str | Sequence[str], rhs: str, name: str = "") -> DenialConstraint:
    """Build the DC encoding of the FD ``lhs → rhs``.

    ``¬(t1.X == t2.X ∧ … ∧ t1.rhs != t2.rhs)``.
    """
    lhs_attrs = [lhs] if isinstance(lhs, str) else list(lhs)
    if rhs in lhs_attrs:
        raise ValueError("FD right-hand side must not appear on the left")
    predicates = [Predicate(a, "==", right_attr=a) for a in lhs_attrs]
    predicates.append(Predicate(rhs, "!=", right_attr=rhs))
    label = name or f"{'&'.join(lhs_attrs)}->{rhs}"
    return DenialConstraint(tuple(predicates), name=label)


_PRED_RE = re.compile(
    r"^t1\.(?P<left>\w+)\s*(?P<op>==|!=|<=|>=|<|>)\s*"
    r"(?:t2\.(?P<right>\w+)|(?P<quote>['\"])(?P<const>.*?)(?P=quote))$"
)


def parse_denial_constraint(text: str, name: str = "") -> DenialConstraint:
    """Parse ``"t1.Zip == t2.Zip & t1.City != t2.City"`` into a DC.

    Predicates are ``&``-separated; constants are quoted.  This covers the
    two-tuple DC fragment the paper's experiments use.
    """
    predicates = []
    for part in text.split("&"):
        part = part.strip()
        match = _PRED_RE.match(part)
        if match is None:
            raise ValueError(f"cannot parse predicate {part!r}")
        if match.group("right") is not None:
            predicates.append(
                Predicate(match.group("left"), match.group("op"), right_attr=match.group("right"))
            )
        else:
            predicates.append(
                Predicate(match.group("left"), match.group("op"), constant=match.group("const"))
            )
    return DenialConstraint(tuple(predicates), name=name or text)
