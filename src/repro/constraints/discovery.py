"""α-noisy denial-constraint discovery (Appendix A.2.2).

Definition A.1: a DC is *α-noisy* on D when it satisfies α percent of all
tuple pairs.  The appendix discovers constraints with the method of Chu et
al. [11] and groups them into α bands.  We implement the FD-shaped fragment
of that search: enumerate candidate single-attribute FDs ``A → B``, measure
each candidate's satisfaction ratio exactly, and return candidates whose α
falls into a requested band.

This is all the noisy-constraint study needs — the bands (0.55, 0.95] are by
construction *not* valid constraints, so the search space of imperfect FDs
supplies them in abundance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.dc import DenialConstraint, functional_dependency
from repro.constraints.violations import ViolationEngine
from repro.dataset.table import Dataset


@dataclass(frozen=True)
class ScoredConstraint:
    """A candidate constraint with its measured satisfaction ratio α."""

    constraint: DenialConstraint
    alpha: float


def score_candidate_fds(
    dataset: Dataset,
    max_lhs_cardinality: int | None = None,
    max_lhs_size: int = 1,
) -> list[ScoredConstraint]:
    """Score candidate FDs ``X → B`` by satisfaction ratio.

    ``max_lhs_size`` controls the lattice level: 1 enumerates single-
    attribute left-hand sides, 2 additionally enumerates attribute pairs
    (pruned to pairs whose singleton parents are not already near-perfect —
    the standard lattice pruning of Chu et al. [11]).

    ``max_lhs_cardinality`` skips near-key attributes (an FD whose LHS is
    almost unique is trivially satisfied and tells the detector nothing);
    defaults to 90% of the row count.
    """
    if max_lhs_size not in (1, 2):
        raise ValueError("max_lhs_size must be 1 or 2")
    if max_lhs_cardinality is None:
        max_lhs_cardinality = int(0.9 * dataset.num_rows)
    engine = ViolationEngine([])
    usable = [
        a for a in dataset.attributes if len(dataset.domain(a)) <= max_lhs_cardinality
    ]
    scored: list[ScoredConstraint] = []
    singleton_alpha: dict[tuple[str, str], float] = {}
    for lhs in usable:
        for rhs in dataset.attributes:
            if rhs == lhs:
                continue
            candidate = functional_dependency(lhs, rhs)
            alpha = engine.satisfaction_ratio(dataset, candidate)
            singleton_alpha[(lhs, rhs)] = alpha
            scored.append(ScoredConstraint(candidate, alpha))
    if max_lhs_size == 2:
        for i, lhs_a in enumerate(usable):
            for lhs_b in usable[i + 1 :]:
                for rhs in dataset.attributes:
                    if rhs in (lhs_a, lhs_b):
                        continue
                    # Prune: if either parent already (nearly) holds, the
                    # pair-LHS FD is implied and uninformative.
                    if (
                        singleton_alpha.get((lhs_a, rhs), 0.0) > 0.999
                        or singleton_alpha.get((lhs_b, rhs), 0.0) > 0.999
                    ):
                        continue
                    candidate = functional_dependency([lhs_a, lhs_b], rhs)
                    alpha = engine.satisfaction_ratio(dataset, candidate)
                    scored.append(ScoredConstraint(candidate, alpha))
    return scored


def discover_constraints(
    dataset: Dataset,
    min_alpha: float = 0.999,
    limit: int | None = None,
    max_lhs_size: int = 1,
) -> list[DenialConstraint]:
    """Discover (near-)valid FD-shaped constraints from a dataset.

    The entry point for users with no Σ of their own: returns constraints
    whose satisfaction ratio is at least ``min_alpha`` (on noisy data, valid
    constraints are violated by the errors themselves, so a threshold
    slightly below 1 is the practical setting).  Results are ordered by
    descending α, ties broken by constraint name for determinism.
    """
    scored = score_candidate_fds(dataset, max_lhs_size=max_lhs_size)
    matching = sorted(
        (s for s in scored if s.alpha >= min_alpha),
        key=lambda s: (-s.alpha, s.constraint.name),
    )
    constraints = [s.constraint for s in matching]
    return constraints if limit is None else constraints[:limit]


def discover_noisy_constraints(
    dataset: Dataset,
    alpha_range: tuple[float, float],
    limit: int | None = None,
    candidates: list[ScoredConstraint] | None = None,
) -> list[DenialConstraint]:
    """Constraints whose satisfaction ratio lies in ``(alpha_lo, alpha_hi]``.

    Pass precomputed ``candidates`` (from :func:`score_candidate_fds`) when
    sampling several bands from the same dataset to avoid rescoring.
    """
    lo, hi = alpha_range
    if not lo < hi:
        raise ValueError("alpha_range must satisfy lo < hi")
    if candidates is None:
        candidates = score_candidate_fds(dataset)
    matching = [c.constraint for c in candidates if lo < c.alpha <= hi]
    return matching if limit is None else matching[:limit]
