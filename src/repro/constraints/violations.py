"""Violation engine: count DC violations per tuple and per cell.

The dataset-level representation exports, for every cell, the number of
violations of each constraint that the cell's *tuple* participates in
(Table 7: "#constraints" dimensions); the CV baseline flags the cells of
violating tuples directly.

Evaluation strategy: constraints whose predicates include same-attribute
equality joins (the FD-shaped fragment, which is everything the benchmark
datasets use) are evaluated with a hash join — tuples are grouped by the
join key, and only within-group pairs are checked against the residual
predicates.  Constraints with no usable join key fall back to a bounded
pairwise scan so pathological inputs stay tractable.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

import numpy as np

from repro.constraints.dc import DenialConstraint
from repro.dataset.table import Cell, Dataset


class ViolationEngine:
    """Evaluates a fixed constraint set against datasets.

    The engine is stateless across datasets; construct once per Σ and reuse.
    ``pair_scan_limit`` bounds the quadratic fallback for join-free
    constraints (pairs beyond the limit are sampled deterministically).
    """

    def __init__(self, constraints: Sequence[DenialConstraint], pair_scan_limit: int = 2_000_000):
        self.constraints = list(constraints)
        self.pair_scan_limit = pair_scan_limit

    # ------------------------------------------------------------------ #
    # Core evaluation
    # ------------------------------------------------------------------ #

    def tuple_violation_counts(self, dataset: Dataset) -> np.ndarray:
        """``[num_rows, num_constraints]`` array of violation counts.

        Entry ``(i, k)`` is the number of tuple pairs involving row ``i``
        that violate constraint ``k``.
        """
        counts = np.zeros((dataset.num_rows, len(self.constraints)), dtype=np.float64)
        for k, constraint in enumerate(self.constraints):
            for row_a, row_b in self._violating_pairs(dataset, constraint):
                counts[row_a, k] += 1
                counts[row_b, k] += 1
        return counts

    def _violating_pairs(self, dataset: Dataset, constraint: DenialConstraint):
        join_attrs = constraint.equality_join_attrs()
        if join_attrs:
            yield from self._hash_join_pairs(dataset, constraint, join_attrs)
        else:
            yield from self._scan_pairs(dataset, constraint)

    def _hash_join_pairs(
        self, dataset: Dataset, constraint: DenialConstraint, join_attrs: list[str]
    ):
        groups: dict[tuple[str, ...], list[int]] = defaultdict(list)
        columns = [dataset.column(a) for a in join_attrs]
        for row in range(dataset.num_rows):
            key = tuple(col[row] for col in columns)
            groups[key].append(row)
        residual = constraint.residual_predicates()
        for rows in groups.values():
            if len(rows) < 2:
                continue
            dicts = {r: dataset.row_dict(r) for r in rows}
            for i, row_a in enumerate(rows):
                for row_b in rows[i + 1 :]:
                    ta, tb = dicts[row_a], dicts[row_b]
                    # DCs are over ordered pairs; check both orientations.
                    if all(p.holds(ta, tb) for p in residual) or all(
                        p.holds(tb, ta) for p in residual
                    ):
                        yield row_a, row_b

    def _scan_pairs(self, dataset: Dataset, constraint: DenialConstraint):
        n = dataset.num_rows
        total_pairs = n * (n - 1) // 2
        dicts = [dataset.row_dict(r) for r in range(n)]
        if total_pairs <= self.pair_scan_limit:
            for i in range(n):
                for j in range(i + 1, n):
                    if constraint.violated_by(dicts[i], dicts[j]) or constraint.violated_by(
                        dicts[j], dicts[i]
                    ):
                        yield i, j
            return
        # Deterministic subsample of pairs for very large join-free constraints.
        rng = np.random.default_rng(0)
        for _ in range(self.pair_scan_limit):
            i, j = rng.integers(0, n, size=2)
            if i == j:
                continue
            if constraint.violated_by(dicts[i], dicts[j]):
                yield int(min(i, j)), int(max(i, j))

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #

    def cell_violation_matrix(self, dataset: Dataset) -> dict[str, np.ndarray]:
        """Per-attribute view of tuple violation counts.

        A cell inherits its tuple's violation count for constraint ``k`` only
        when its attribute participates in constraint ``k`` — the convention
        the CV detector uses ("all cells in a group of cells that participate
        in a violation", §6.2) and the feature the dataset-level context
        exports.
        Returns ``{attr: [num_rows, num_constraints]}``.
        """
        tuple_counts = self.tuple_violation_counts(dataset)
        result: dict[str, np.ndarray] = {}
        for attr in dataset.attributes:
            mask = np.array(
                [1.0 if attr in c.attributes() else 0.0 for c in self.constraints]
            )
            result[attr] = tuple_counts * mask
        return result

    def violating_cells(self, dataset: Dataset) -> set[Cell]:
        """Cells flagged by the CV detector: all participating cells."""
        tuple_counts = self.tuple_violation_counts(dataset)
        flagged: set[Cell] = set()
        for k, constraint in enumerate(self.constraints):
            rows = np.nonzero(tuple_counts[:, k] > 0)[0]
            attrs = constraint.attributes()
            for row in rows:
                for attr in attrs:
                    if attr in dataset.schema:
                        flagged.add(Cell(int(row), attr))
        return flagged

    def satisfaction_ratio(self, dataset: Dataset, constraint: DenialConstraint) -> float:
        """Fraction of tuple pairs that satisfy (do not violate) ``constraint``.

        This is the α of Definition A.1; used by noisy-constraint discovery.
        """
        n = dataset.num_rows
        total_pairs = n * (n - 1) // 2
        if total_pairs == 0:
            return 1.0
        violating = sum(1 for _ in self._violating_pairs(dataset, constraint))
        return 1.0 - violating / total_pairs
