"""Multi-host cooperative sweep coordination over a shared filesystem.

``repro.coordination`` lets N independent ``repro sweep --coordinate``
invocations — on different hosts sharing one directory tree — drain a
single :class:`~repro.evaluation.matrix.ScenarioMatrix` with **no central
coordinator**.  The protocol rests on three pre-existing invariants:

1. scenarios are pure functions of their fingerprinted spec (PR 3), so
   *who* runs one is irrelevant to the result;
2. the :class:`~repro.evaluation.store.ResultStore` is append-only
   latest-wins, so concurrent (even duplicated) completions converge;
3. the artifact store is a shared cache with atomic writes (PR 5), so
   fits are shared across hosts for free.

On top of those, this package adds exactly what distribution needs:
race-free work *claiming* (:class:`WorkQueue`, ``O_CREAT|O_EXCL`` lease
files keyed by scenario fingerprint), *liveness* (heartbeat renewal from
:class:`HeartbeatThread`, stale-lease reclaim with a TTL), and
*observability* (the shared audit log plus :func:`build_report`, the
``repro report`` dashboard).

See ``docs/architecture.md`` ("Distributed sweeps") for the lease
lifecycle, TTL guidance, and the shared-filesystem assumptions.
"""

from repro.coordination.heartbeat import HeartbeatThread
from repro.coordination.leases import (
    DEFAULT_TTL,
    LEASE_SCHEMA,
    CoordinationError,
    LeaseInfo,
    WorkQueue,
    coordination_dir,
    default_worker_id,
    iter_leases,
    read_audit,
)
from repro.coordination.report import REPORT_SCHEMA, build_report, render_markdown

__all__ = [
    "DEFAULT_TTL",
    "LEASE_SCHEMA",
    "REPORT_SCHEMA",
    "CoordinationError",
    "HeartbeatThread",
    "LeaseInfo",
    "WorkQueue",
    "build_report",
    "coordination_dir",
    "default_worker_id",
    "iter_leases",
    "read_audit",
    "render_markdown",
]
