"""Background heartbeat renewal for held leases.

A worker's drain loop spends its time executing scenarios; if it also had
to renew leases between scenarios, a single scenario longer than the TTL
would get its lease reclaimed mid-run.  The heartbeat therefore runs on a
daemon thread, renewing *every* currently-held lease on a fixed interval —
the drain loop never thinks about liveness, and a ``kill -9`` stops the
heartbeats exactly when it stops the work, which is what makes the TTL a
truthful death signal.
"""

from __future__ import annotations

import threading

from repro.coordination.leases import CoordinationError, WorkQueue


class HeartbeatThread(threading.Thread):
    """Renews the queue's held leases every ``interval`` seconds.

    ``interval`` defaults to a quarter of the queue's TTL, so a worker
    must miss four consecutive renewals before anyone may reclaim it —
    one slow filesystem round-trip never looks like a death.

    Leases that could not be renewed because another worker reclaimed
    them accumulate in :attr:`lost`; the drain loop treats those
    scenarios as no longer its own (results stay correct either way —
    scenarios are pure and the store is latest-wins — so a lost lease
    only risks duplicated effort, never corruption).

    Usable as a context manager::

        with HeartbeatThread(queue):
            ...drain...
    """

    def __init__(self, queue: WorkQueue, interval: float | None = None):
        if interval is None:
            interval = queue.ttl / 4.0
        if not 0 < interval:
            raise CoordinationError(
                f"heartbeat interval must be positive, got {interval!r}"
            )
        if interval >= queue.ttl:
            raise CoordinationError(
                f"heartbeat interval {interval!r} must be below the lease "
                f"TTL {queue.ttl!r}, or every lease goes stale between beats"
            )
        super().__init__(daemon=True, name=f"lease-heartbeat-{queue.worker_id}")
        self.queue = queue
        self.interval = float(interval)
        self.lost: set[str] = set()
        self.renewals = 0
        self.errors = 0
        self._stop_event = threading.Event()

    def run(self) -> None:
        while not self._stop_event.wait(self.interval):
            # The heartbeat must outlive any single bad beat: a dead
            # heartbeat thread silently turns every held lease stale, so a
            # surprise exception is counted and the next beat tries again.
            try:
                self.lost.update(self.queue.renew_held())
            except Exception:
                self.errors += 1
            self.renewals += 1

    def stop(self) -> None:
        """Signal the thread and wait for the in-flight beat to finish."""
        self._stop_event.set()
        if self.is_alive():
            self.join(timeout=max(5.0, 2 * self.interval))

    def __enter__(self) -> "HeartbeatThread":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
