"""Lease files: race-free scenario claiming over a shared directory.

The cooperative-sweep protocol has no coordinator process — the
*filesystem* is the coordinator.  Every scenario fingerprint maps to one
lease path ``leases/<fingerprint>.lease``; a worker claims the scenario by
creating that file with ``O_CREAT | O_EXCL``, which is atomic on POSIX
filesystems and on NFS-class network filesystems (v3 and later implement
exclusive create server-side), so exactly one of N racing workers wins.

A lease is a *liveness* signal, not a lock: the claiming worker renews a
heartbeat timestamp inside the file from a background thread
(:class:`~repro.coordination.heartbeat.HeartbeatThread`), and any other
worker may **reclaim** a lease whose heartbeat is older than the TTL — a
``kill -9``'d worker's scenarios are re-run by survivors.  Reclaiming only
unlinks the stale file; re-claiming is the ordinary :meth:`WorkQueue.claim`
race afterwards, so two simultaneous reclaimers still resolve to one owner.

The protocol is an *efficiency* mechanism, not a correctness one: scenario
results are pure functions of their spec and the result store is
latest-wins, so the rare double-execution (a worker paused past its TTL
revives after being reclaimed) wastes CPU but can never corrupt results.

Every state transition is appended to ``audit.jsonl`` (single-``write()``
``O_APPEND`` records, so concurrent workers cannot shear a line), which is
what the CI smoke and :mod:`benchmarks.bench_distributed_sweep` replay to
prove no scenario executed twice.

Transient filesystem faults (``ESTALE`` from an NFS export, ``EAGAIN``,
``EINTR``) are retried through a :class:`~repro.faults.retry.RetryPolicy`
at the ``lease.claim`` / ``lease.renew`` / ``lease.release`` /
``lease.audit`` fault points.  The fault *boundaries* respect the
protocol: a ``FileExistsError`` on claim is an answer (lost the race),
never a fault; a persistently unrenewable lease is still believed held
(the TTL arbitrates); a persistently unreleasable lease is audited and
left for reclaim.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.faults.inject import checked_write, trip
from repro.faults.retry import RetryPolicy, resolve_policy

#: Lease payload schema identifier.
LEASE_SCHEMA = "repro.lease/v1"

#: Suffix of lease files under ``<coordination dir>/leases/``.
LEASE_SUFFIX = ".lease"

#: Default heartbeat TTL (seconds): a lease silent for longer is stale.
DEFAULT_TTL = 60.0


class CoordinationError(RuntimeError):
    """A coordination invariant was violated (bad TTL, missing store, ...)."""


def default_worker_id() -> str:
    """``<hostname>-<pid>``: unique across the hosts sharing a store."""
    return f"{socket.gethostname()}-{os.getpid()}"


def coordination_dir(store_path: str | Path) -> Path:
    """The conventional coordination directory for a result store.

    Derived from the store path (``<store>.coord/``) so every worker and
    ``repro report`` agree on it without extra flags.
    """
    return Path(f"{store_path}.coord")


@dataclass(frozen=True)
class LeaseInfo:
    """One lease file, decoded: who holds which scenario since when."""

    fingerprint: str
    worker: str
    claimed_at: float
    renewed_at: float
    path: Path

    def age(self, now: float) -> float:
        """Seconds since the scenario was claimed."""
        return max(0.0, now - self.claimed_at)

    def heartbeat_age(self, now: float) -> float:
        """Seconds since the last heartbeat renewal."""
        return max(0.0, now - self.renewed_at)

    def is_stale(self, ttl: float, now: float) -> bool:
        """True when the holder missed heartbeats for longer than ``ttl``."""
        return self.heartbeat_age(now) > ttl


def _decode_lease(path: Path) -> LeaseInfo | None:
    """Decode one lease file; ``None`` if it vanished (released/reclaimed).

    An unparseable payload is *not* an error: a racing claimer has created
    the file but not yet written it.  The file's mtime stands in for both
    timestamps then — freshly created, so never spuriously stale.
    """
    try:
        raw = path.read_bytes()
        mtime = path.stat().st_mtime
    except (FileNotFoundError, OSError):
        return None
    fingerprint = path.name.removesuffix(LEASE_SUFFIX)
    try:
        payload = json.loads(raw.decode("utf-8"))
        return LeaseInfo(
            fingerprint=str(payload.get("fingerprint") or fingerprint),
            worker=str(payload["worker"]),
            claimed_at=float(payload["claimed_at"]),
            renewed_at=float(payload["renewed_at"]),
            path=path,
        )
    except (json.JSONDecodeError, UnicodeDecodeError, KeyError, TypeError, ValueError):
        return LeaseInfo(
            fingerprint=fingerprint,
            worker="(claiming)",
            claimed_at=mtime,
            renewed_at=mtime,
            path=path,
        )


def iter_leases(
    directory: str | Path, fingerprints: Iterable[str] | None = None
) -> Iterator[LeaseInfo]:
    """Decode the live leases under a coordination directory.

    Read-only (safe for ``repro report`` against a sweep in flight): no
    directories are created and vanished files are skipped.  With
    ``fingerprints`` given, only those leases are probed — O(interesting)
    instead of a full directory scan.
    """
    lease_dir = Path(directory) / "leases"
    if fingerprints is not None:
        paths: Iterable[Path] = (
            lease_dir / f"{fp}{LEASE_SUFFIX}" for fp in fingerprints
        )
    elif lease_dir.is_dir():
        paths = sorted(lease_dir.glob(f"*{LEASE_SUFFIX}"))
    else:
        return
    for path in paths:
        info = _decode_lease(path)
        if info is not None:
            yield info


def append_jsonl(
    path: Path,
    payload: dict,
    point: str = "lease.audit",
    policy: RetryPolicy | None = None,
) -> None:
    """Append one record as a single ``O_APPEND`` ``write()``.

    ``O_APPEND`` makes the kernel pick the offset atomically per write, so
    concurrent appenders from different processes/hosts interleave whole
    lines, never sheared ones.  Transient faults — including a torn write,
    whose partial fragment is newline-terminated before the line is
    reissued — retry through ``policy`` at fault point ``point``.
    """
    line = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")

    def append() -> None:
        fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            checked_write(point, fd, line)
        finally:
            os.close(fd)

    def heal(_exc: BaseException, _attempt: int) -> None:
        # Terminate a possible torn fragment so the reissued line starts
        # fresh; readers skip the resulting blank/partial line.
        try:
            fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        except OSError:
            return
        try:
            os.write(fd, b"\n")
        finally:
            os.close(fd)

    resolve_policy(policy).call(append, point=point, op="write", on_retry=heal)


def read_audit(directory: str | Path) -> list[dict]:
    """Decode the audit log (complete lines only; partial tails skipped)."""
    path = Path(directory) / "audit.jsonl"
    events: list[dict] = []
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        return events
    for line in raw.split(b"\n"):
        if not line.strip():
            continue
        try:
            event = json.loads(line.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            continue
        if isinstance(event, dict):
            events.append(event)
    return events


class WorkQueue:
    """Claim/renew/release/reclaim scenario leases in a shared directory.

    One instance per worker process.  Thread-safe: the heartbeat thread
    renews held leases while the drain loop claims and releases them.

    ``clock`` is injectable so staleness/TTL logic is testable without
    real sleeps; production uses ``time.time`` (wall-clock, comparable
    across hosts — monotonic clocks are per-host and useless in lease
    files read by other machines).
    """

    def __init__(
        self,
        directory: str | Path,
        worker_id: str | None = None,
        ttl: float = DEFAULT_TTL,
        clock: Callable[[], float] = time.time,
        retry_policy: RetryPolicy | None = None,
    ):
        if ttl <= 0:
            raise CoordinationError(f"lease TTL must be positive, got {ttl!r}")
        self.directory = Path(directory)
        self.lease_dir = self.directory / "leases"
        self.audit_path = self.directory / "audit.jsonl"
        self.worker_id = worker_id or default_worker_id()
        self.ttl = float(ttl)
        self._clock = clock
        self._lock = threading.Lock()
        self._held: dict[str, float] = {}  # fingerprint -> claimed_at
        # None = resolve the process-ambient default at each use.
        self._retry_policy = retry_policy
        self.renew_errors = 0  # persistent renewal faults (lease still held)
        self.release_errors = 0  # leases we could not unlink (left to reclaim)
        self.lease_dir.mkdir(parents=True, exist_ok=True)

    @property
    def retry_policy(self) -> RetryPolicy:
        """The policy lease I/O retries through (ambient default if unset)."""
        return resolve_policy(self._retry_policy)

    # -- paths and payloads ----------------------------------------------

    def lease_path(self, fingerprint: str) -> Path:
        return self.lease_dir / f"{fingerprint}{LEASE_SUFFIX}"

    def _payload(self, fingerprint: str, claimed_at: float, renewed_at: float) -> bytes:
        return json.dumps(
            {
                "schema": LEASE_SCHEMA,
                "fingerprint": fingerprint,
                "worker": self.worker_id,
                "claimed_at": claimed_at,
                "renewed_at": renewed_at,
            },
            sort_keys=True,
        ).encode("utf-8")

    # -- the lease lifecycle ---------------------------------------------

    def claim(self, fingerprint: str) -> bool:
        """Try to claim a scenario; True iff this worker won the race.

        The ``O_CREAT | O_EXCL`` open *is* the claim — the payload write
        that follows is informational (readers of a not-yet-written lease
        fall back to the file's mtime, see :func:`_decode_lease`).

        Transient faults on the open are retried; ``FileExistsError`` is
        *not* a fault (the taxonomy classes it UNKNOWN, never retried) —
        it is the answer "another worker won", including the edge where
        our own earlier attempt created the file before faulting, which
        the TTL reclaim eventually resolves.
        """
        path = self.lease_path(fingerprint)

        def create() -> int:
            trip("lease.claim")
            return os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)

        try:
            fd = self.retry_policy.call(create, point="lease.claim", op="write")
        except FileExistsError:
            return False
        except OSError:
            # A persistent fault: indistinguishable from losing the race.
            return False
        now = self._clock()
        try:
            os.write(fd, self._payload(fingerprint, now, now))
        except OSError:
            pass  # readers fall back to the file's mtime
        finally:
            os.close(fd)
        with self._lock:
            self._held[fingerprint] = now
        self.audit("claim", fingerprint)
        return True

    def renew(self, fingerprint: str) -> bool:
        """Refresh the heartbeat on a held lease; False if it was lost.

        Ownership is verified first: if the on-disk lease now names another
        worker, this worker was reclaimed (it slept past the TTL) and must
        not clobber the new owner — the scenario is theirs now.  The rename
        is atomic, so readers always see a whole payload.
        """
        with self._lock:
            claimed_at = self._held.get(fingerprint)
        if claimed_at is None:
            return False
        current = _decode_lease(self.lease_path(fingerprint))
        if current is None or current.worker != self.worker_id:
            with self._lock:
                self._held.pop(fingerprint, None)
            self.audit("lost", fingerprint, new_worker=None if current is None else current.worker)
            return False
        tmp = self.lease_dir / f".renew-{self.worker_id}-{fingerprint[:16]}.tmp"

        def publish() -> None:
            trip("lease.renew")
            tmp.write_bytes(self._payload(fingerprint, claimed_at, self._clock()))
            os.replace(tmp, self.lease_path(fingerprint))

        try:
            self.retry_policy.call(publish, point="lease.renew", op="write")
        except OSError:
            # A persistently unrefreshable heartbeat is not a lost lease —
            # the on-disk file still names this worker.  Count it and keep
            # the claim; if the fault outlasts the TTL, reclaim arbitrates.
            self.renew_errors += 1
            try:
                os.unlink(tmp)
            except OSError:
                pass
        return True

    def renew_held(self) -> list[str]:
        """Renew every held lease; returns the fingerprints that were lost."""
        with self._lock:
            held = list(self._held)
        return [fp for fp in held if not self.renew(fp)]

    def release(self, fingerprint: str, event: str = "release") -> None:
        """Drop a held lease (scenario finished, skipped, or failed).

        Ownership is re-verified before the unlink: if this worker slept
        past its TTL, was reclaimed, and the scenario was re-claimed by a
        peer, the on-disk lease is *theirs* — unlinking it would strip the
        live owner's claim.  A lease that cannot be unlinked through the
        retry budget is audited and left behind; its heartbeat stops with
        this release, so peers reclaim it after the TTL.
        """
        with self._lock:
            self._held.pop(fingerprint, None)
        path = self.lease_path(fingerprint)
        current = _decode_lease(path)
        if current is not None and current.worker not in (self.worker_id, "(claiming)"):
            self.audit("lost", fingerprint, new_worker=current.worker)
            return

        def unlink() -> None:
            trip("lease.release")
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass

        try:
            self.retry_policy.call(unlink, point="lease.release", op="write")
        except OSError:
            self.release_errors += 1
            self.audit(event, fingerprint, unlink_failed=True)
            return
        self.audit(event, fingerprint)

    def held(self) -> set[str]:
        """Fingerprints this worker currently believes it holds."""
        with self._lock:
            return set(self._held)

    # -- other workers' leases -------------------------------------------

    def read_lease(self, fingerprint: str) -> LeaseInfo | None:
        return _decode_lease(self.lease_path(fingerprint))

    def active_leases(
        self, fingerprints: Iterable[str] | None = None
    ) -> list[LeaseInfo]:
        return list(iter_leases(self.directory, fingerprints))

    def reclaim_stale(
        self, fingerprints: Iterable[str] | None = None
    ) -> list[str]:
        """Unlink other workers' leases whose heartbeat exceeded the TTL.

        Returns the reclaimed fingerprints.  The caller does *not* own
        them afterwards — it (and everyone else) competes for them through
        the ordinary :meth:`claim` race, which keeps the two-simultaneous-
        reclaimers case single-owner.
        """
        now = self._clock()
        reclaimed: list[str] = []
        for info in self.active_leases(fingerprints):
            if info.worker == self.worker_id:
                continue  # our own leases are the heartbeat thread's job
            if not info.is_stale(self.ttl, now):
                continue
            try:
                os.unlink(info.path)
            except FileNotFoundError:
                continue  # another reclaimer got there first
            except OSError:
                continue  # transient trouble: the next sweep retries
            self.audit(
                "reclaim",
                info.fingerprint,
                stale_worker=info.worker,
                heartbeat_age=round(info.heartbeat_age(now), 3),
            )
            reclaimed.append(info.fingerprint)
        return reclaimed

    # -- audit trail ------------------------------------------------------

    def audit(self, event: str, fingerprint: str, **extra: object) -> None:
        """Append one event to the shared audit log (atomic per record).

        Best-effort under persistent faults: the audit trail is evidence,
        not a lock — losing a record must not wedge the lease protocol.
        """
        try:
            append_jsonl(
                self.audit_path,
                {
                    "time": self._clock(),
                    "worker": self.worker_id,
                    "event": event,
                    "fingerprint": fingerprint,
                    **extra,
                },
                point="lease.audit",
                policy=self._retry_policy,
            )
        except OSError:
            pass
