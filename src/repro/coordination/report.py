"""Live sweep dashboard: progress, leases, and ETA from a partial store.

A cooperative sweep has no coordinator process to ask "how far along are
we?" — but all of its state lives in two shared places: the result store
(completed scenarios) and the coordination directory (in-flight leases).
:func:`build_report` reads both *without writing anything*, so it is safe
to point ``repro report`` at a sweep that other hosts are draining right
now.

The payload (schema ``repro.report/v1``) carries:

- overall counts: total / completed / in-flight / pending;
- per-axis progress (datasets, error profiles, label budgets, methods) —
  which slice of the grid is lagging;
- the live lease table: worker, claim age, heartbeat age, staleness
  against the TTL;
- per-worker completion counts replayed from the audit log;
- an ETA extrapolated from completed scenarios' wall-clocks and the
  currently observed parallelism (in-flight lease count).

Without a matrix spec the report still works, but the grid total is
unknowable — it degrades to "what the store has seen so far" plus live
leases.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Mapping

from repro.coordination.leases import DEFAULT_TTL, iter_leases, read_audit
from repro.evaluation.report import markdown_table
from repro.evaluation.store import ResultStore

#: JSON schema identifier for dashboard payloads.
REPORT_SCHEMA = "repro.report/v1"

#: The spec axes the progress breakdown groups by, in display order.
_AXES = ("dataset", "error_profile", "label_budget", "method")


def _axis_value(spec: Mapping[str, object], axis: str) -> str:
    value = spec.get(axis)
    if axis == "label_budget" and isinstance(value, (int, float)):
        return f"{float(value):g}"
    return str(value)


def build_report(
    store: ResultStore,
    matrix=None,
    coordination: str | Path | None = None,
    ttl: float = DEFAULT_TTL,
    now: float | None = None,
) -> dict:
    """Assemble the ``repro.report/v1`` dashboard payload.

    ``matrix`` is a :class:`~repro.evaluation.matrix.ScenarioMatrix` (or
    anything with a compatible ``expand()``); when given, progress is
    measured against the full grid and scenarios the store holds from
    *other* sweeps are reported separately rather than inflating the
    counts.  ``coordination`` is the lease directory; ``ttl`` is only used
    to label leases as stale (reclaim is the workers' job, not the
    report's).
    """
    if now is None:
        now = time.time()
    store.refresh()

    if matrix is not None:
        specs = matrix.expand()
        fingerprints = [spec.fingerprint() for spec in specs]
        spec_dicts = {fp: spec.to_dict() for fp, spec in zip(fingerprints, specs)}
        completed = [fp for fp in fingerprints if fp in store]
        unrelated = len(store.fingerprints - set(fingerprints))
        total = len(fingerprints)
    else:
        spec_dicts = {
            record["fingerprint"]: record.get("spec", {}) for record in store
        }
        fingerprints = list(spec_dicts)
        completed = list(fingerprints)
        unrelated = 0
        total = None  # unknowable without the grid

    completed_set = set(completed)

    leases = []
    if coordination is not None:
        scope = fingerprints if matrix is not None else None
        for info in iter_leases(coordination, scope):
            if info.fingerprint in completed_set:
                continue  # completed between the store scan and the lease scan
            leases.append(
                {
                    "fingerprint": info.fingerprint,
                    "worker": info.worker,
                    "age": round(info.age(now), 3),
                    "heartbeat_age": round(info.heartbeat_age(now), 3),
                    "stale": info.is_stale(ttl, now),
                }
            )

    in_flight = len(leases)
    pending = None if total is None else max(0, total - len(completed) - in_flight)

    # Per-axis progress over the grid (or over what the store has seen).
    progress: dict[str, dict[str, dict[str, int]]] = {}
    for axis in _AXES:
        tally: dict[str, dict[str, int]] = {}
        for fp in fingerprints:
            value = _axis_value(spec_dicts.get(fp, {}), axis)
            bucket = tally.setdefault(value, {"done": 0, "total": 0})
            bucket["total"] += 1
            if fp in completed_set:
                bucket["done"] += 1
        progress[axis] = tally

    # Per-worker completions, replayed from the audit trail when present.
    workers: dict[str, int] = {}
    if coordination is not None:
        for event in read_audit(coordination):
            if event.get("event") == "complete":
                worker = str(event.get("worker"))
                workers[worker] = workers.get(worker, 0) + 1

    # ETA: mean completed wall-clock × remaining ÷ observed parallelism.
    elapsed = [
        float(record["elapsed"])
        for fp in completed
        if isinstance((record := store.get(fp)), dict)
        and isinstance(record.get("elapsed"), (int, float))
    ]
    eta = None
    if elapsed and total is not None and total > len(completed):
        mean = sum(elapsed) / len(elapsed)
        remaining = total - len(completed)
        parallelism = max(1, in_flight)
        eta = {
            "mean_scenario_seconds": mean,
            "remaining": remaining,
            "assumed_parallelism": parallelism,
            "eta_seconds": mean * remaining / parallelism,
        }

    return {
        "schema": REPORT_SCHEMA,
        "generated_at": now,
        "store": str(store.path),
        "total": total,
        "completed": len(completed),
        "in_flight": in_flight,
        "pending": pending,
        "unrelated_records": unrelated,
        "progress": progress,
        "leases": leases,
        "workers": workers,
        "eta": eta,
    }


def render_markdown(report: Mapping[str, object]) -> str:
    """Render a dashboard payload as the ``repro report`` markdown page."""
    lines: list[str] = ["# Sweep report", ""]

    total = report.get("total")
    completed = report.get("completed", 0)
    in_flight = report.get("in_flight", 0)
    if total is None:
        lines.append(
            f"**{completed}** scenario(s) completed, **{in_flight}** in "
            "flight (no matrix spec given — grid total unknown)."
        )
    else:
        pending = report.get("pending", 0)
        pct = 100.0 * completed / total if total else 100.0
        lines.append(
            f"**{completed}/{total}** scenarios completed ({pct:.0f}%), "
            f"**{in_flight}** in flight, **{pending}** unclaimed."
        )
    if report.get("unrelated_records"):
        lines.append(
            f"(store also holds {report['unrelated_records']} record(s) "
            "outside this matrix)"
        )

    eta = report.get("eta")
    if isinstance(eta, Mapping):
        lines.append(
            f"ETA: ~{float(eta['eta_seconds']):.0f}s "
            f"({eta['remaining']} remaining × "
            f"{float(eta['mean_scenario_seconds']):.1f}s mean ÷ "
            f"{eta['assumed_parallelism']} in-flight worker slot(s))."
        )

    progress = report.get("progress")
    if isinstance(progress, Mapping):
        for axis, tally in progress.items():
            if not tally:
                continue
            lines += ["", f"## Progress by {axis}", ""]
            rows = [
                [value, str(bucket["done"]), str(bucket["total"]),
                 f"{100.0 * bucket['done'] / bucket['total']:.0f}%"
                 if bucket["total"] else "100%"]
                for value, bucket in sorted(tally.items())
            ]
            lines.append(markdown_table([axis, "done", "total", "%"], rows))

    leases = report.get("leases")
    if leases:
        lines += ["", "## In-flight leases", ""]
        rows = [
            [
                lease["fingerprint"][:12],
                lease["worker"],
                f"{lease['age']:.1f}s",
                f"{lease['heartbeat_age']:.1f}s",
                "STALE" if lease["stale"] else "live",
            ]
            for lease in leases
        ]
        lines.append(
            markdown_table(
                ["fingerprint", "worker", "age", "heartbeat", "state"], rows
            )
        )

    workers = report.get("workers")
    if workers:
        lines += ["", "## Completions by worker", ""]
        rows = [
            [worker, str(count)]
            for worker, count in sorted(workers.items(), key=lambda kv: -kv[1])
        ]
        lines.append(markdown_table(["worker", "completed"], rows))

    return "\n".join(lines) + "\n"
