"""HoloDetect core: the joint representation + classification model and the
public few-shot error detector.

- :mod:`repro.core.model` — the wide-and-deep joint model of Fig. 2/Fig. 7:
  learnable highway branches over embedding features, concatenated with the
  fixed numeric block, feeding classifier M;
- :mod:`repro.core.training` — minibatch ADAM training loop;
- :mod:`repro.core.calibration` — Platt scaling on a training holdout;
- :mod:`repro.core.detector` — :class:`HoloDetect`, the end-to-end detector
  (representation learning + data augmentation), §3.3's three modules wired
  together.
"""

from repro.core.model import JointModel
from repro.core.training import TrainerConfig, train_model
from repro.core.calibration import PlattScaler
from repro.core.detector import (
    DetectionSession,
    DetectorConfig,
    ErrorPredictions,
    HoloDetect,
)

__all__ = [
    "JointModel",
    "TrainerConfig",
    "train_model",
    "PlattScaler",
    "HoloDetect",
    "DetectionSession",
    "DetectorConfig",
    "ErrorPredictions",
]
