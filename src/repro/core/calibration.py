"""Platt scaling (§4.2).

Classifier scores ``z`` are mapped to calibrated probabilities
``q̂ = σ(a·z + b)`` where the scalars ``a, b`` minimise the negative
log-likelihood on a holdout split of T.  The parameters of Q and M stay
fixed; only ``a`` and ``b`` are learned, by Newton-style full-batch gradient
descent (the problem is 2-parameter convex, so this converges quickly).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.registry import ComponentError, register


class PlattScaler:
    """Two-parameter sigmoid calibration ``q̂ = σ(a·z + b)``."""

    def __init__(self, epochs: int = 100, lr: float = 0.1):
        self.epochs = epochs
        self.lr = lr
        self.a = 1.0
        self.b = 0.0
        self._fitted = False

    def fit(self, scores: np.ndarray, targets: np.ndarray) -> "PlattScaler":
        """Fit on holdout ``scores`` and binary ``targets`` (1 = error).

        Uses the Platt prior-corrected targets ``(n+ + 1)/(n+ + 2)`` and
        ``1/(n- + 2)`` which regularise the fit when the holdout is tiny —
        the standard trick from Platt's original paper [46], essential here
        because holdouts of few-shot training sets are small.
        """
        scores = np.asarray(scores, dtype=np.float64).ravel()
        targets = np.asarray(targets, dtype=np.float64).ravel()
        if scores.shape != targets.shape:
            raise ValueError("scores and targets must have the same shape")
        if scores.size == 0:
            # Degenerate holdout: keep the identity calibration.
            self._fitted = True
            return self
        n_pos = float(targets.sum())
        n_neg = float(targets.size - n_pos)
        soft_pos = (n_pos + 1.0) / (n_pos + 2.0)
        soft_neg = 1.0 / (n_neg + 2.0)
        soft = np.where(targets > 0.5, soft_pos, soft_neg)
        a, b = 1.0, 0.0
        for _ in range(self.epochs):
            z = a * scores + b
            p = 1.0 / (1.0 + np.exp(-np.clip(z, -60, 60)))
            residual = p - soft
            grad_a = float((residual * scores).mean())
            grad_b = float(residual.mean())
            a -= self.lr * grad_a
            b -= self.lr * grad_b
        self.a, self.b = a, b
        self._fitted = True
        return self

    def probability(self, scores: np.ndarray) -> np.ndarray:
        """Calibrated error probability for raw scores."""
        if not self._fitted:
            raise RuntimeError("PlattScaler used before fit()")
        z = self.a * np.asarray(scores, dtype=np.float64) + self.b
        return 1.0 / (1.0 + np.exp(-np.clip(z, -60, 60)))


# --------------------------------------------------------------------- #
# Registry wiring: calibrators are "calibrator" components so a
# DetectorSpec can choose (and parameterise) the calibration step.
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class PlattCalibratorConfig:
    """Typed config of the Platt scaler (registry key ``platt``)."""

    epochs: int = 100
    lr: float = 0.1

    def __post_init__(self) -> None:
        if not isinstance(self.epochs, int) or self.epochs < 1:
            raise ValueError(f"epochs must be a positive integer, got {self.epochs!r}")
        if not self.lr > 0:
            raise ValueError(f"lr must be positive, got {self.lr!r}")


@register(
    "calibrator", "platt",
    config=PlattCalibratorConfig,
    description="two-parameter sigmoid calibration on a training holdout",
)
def _platt(cfg: PlattCalibratorConfig) -> PlattScaler:
    return PlattScaler(epochs=cfg.epochs, lr=cfg.lr)


@register(
    "calibrator", "none",
    description="identity calibration: raw sigmoid scores pass through",
)
def _identity(params) -> PlattScaler:
    if params:
        raise ComponentError(f"takes no parameters, got {sorted(params)}")
    # A PlattScaler fitted on an empty holdout keeps a=1, b=0 — identity.
    scaler = PlattScaler(epochs=0)
    return scaler
