"""The HoloDetect detector: §3.3's three modules wired end-to-end.

``fit`` runs: (1) transformation + policy learning and data augmentation
(Module 1), (2) representation model fitting (Module 2), (3) joint training
of the learnable layers and classifier M plus Platt calibration (Module 3).
``predict`` classifies every cell of D outside the training set.

Setting ``augment=False`` yields the SuperL variant of §6.1 — identical
model, supervision limited to T — which the baselines package reuses.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.augmentation.augment import augment_training_set
from repro.augmentation.naive_bayes import NaiveBayesRepairModel
from repro.augmentation.policy import Policy
from repro.constraints.dc import DenialConstraint
from repro.core.calibration import PlattScaler
from repro.core.model import JointModel
from repro.core.training import TrainerConfig, train_model
from repro.dataset.table import Cell, Dataset
from repro.dataset.training import LabeledCell, TrainingSet
from repro.features.base import CellBatch
from repro.features.cache import CacheStats, FeatureCache
from repro.features.pipeline import FeaturePipeline, default_pipeline
from repro.utils.rng import as_generator


@dataclass
class DetectorConfig:
    """All knobs of the detector, defaulted for laptop-scale runs.

    The paper's configuration (500 epochs, batch 5, 50-dim embeddings) is a
    valid setting of the same fields.
    """

    embedding_dim: int = 16
    embedding_epochs: int = 2
    hidden_dim: int = 32
    dropout: float = 0.2
    epochs: int = 40
    batch_size: int = 32
    lr: float = 1e-3
    weight_decay: float = 1e-5
    #: Floor on total optimiser steps — small training sets train deeper
    #: automatically, which removes most seed-to-seed variance in few-shot
    #: regimes (see TrainerConfig.min_steps).
    min_training_steps: int = 800
    holdout_fraction: float = 0.1
    alpha: float = 1.0
    target_ratio: float | None = None
    augment: bool = True
    calibrate: bool = True
    #: Learn the channel from weak supervision when T has fewer error pairs.
    min_error_pairs: int = 10
    #: Cap on cells scanned by the Naive Bayes weak-supervision model.
    weak_supervision_max_cells: int = 20_000
    #: Representation models to drop (ablation studies).
    exclude_models: tuple[str, ...] = ()
    #: Cells featurised per prediction chunk.  Chunk boundaries are
    #: deterministic, so repeated predictions over the same cells hit the
    #: feature cache block-for-block.
    prediction_batch: int = 512
    #: Memoise transformed feature blocks (see ``repro.features.cache``).
    feature_cache: bool = True
    #: LRU capacity of the feature cache, in blocks.
    cache_max_entries: int = 1024
    #: Threads featurising prediction chunks concurrently (1 = sequential).
    #: Scoring stays on the calling thread; only featurization fans out.
    prediction_workers: int = 1
    seed: int = 0
    #: Override the learned policy (augmentation-strategy ablations, Table 4).
    policy_override: Policy | None = field(default=None, repr=False)


@dataclass
class ErrorPredictions:
    """Cell-level predictions: calibrated error probabilities and labels."""

    cells: list[Cell]
    probabilities: np.ndarray
    threshold: float = 0.5

    @property
    def error_cells(self) -> set[Cell]:
        return {
            c for c, p in zip(self.cells, self.probabilities) if p >= self.threshold
        }

    def is_error(self, cell: Cell) -> bool:
        try:
            idx = self.cells.index(cell)
        except ValueError:
            raise KeyError(f"no prediction for {cell}") from None
        return bool(self.probabilities[idx] >= self.threshold)

    def as_dict(self) -> dict[Cell, float]:
        return dict(zip(self.cells, self.probabilities))


class HoloDetect:
    """Few-shot error detector with learned data augmentation (AUG)."""

    def __init__(self, config: DetectorConfig | None = None):
        self.config = config or DetectorConfig()
        self.pipeline: FeaturePipeline | None = None
        self.model: JointModel | None = None
        self.scaler: PlattScaler | None = None
        self.policy: Policy | None = None
        self.cache: FeatureCache | None = (
            FeatureCache(self.config.cache_max_entries)
            if self.config.feature_cache
            else None
        )
        self.augmented_count = 0
        self._dataset: Dataset | None = None
        self._train_cells: set[Cell] = set()

    @property
    def cache_stats(self) -> CacheStats | None:
        """Feature-cache accounting, or ``None`` when caching is disabled."""
        return self.cache.stats if self.cache is not None else None

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #

    def fit(
        self,
        dataset: Dataset,
        training: TrainingSet,
        constraints: Sequence[DenialConstraint] | None = None,
    ) -> "HoloDetect":
        """Learn the channel, the representation, and the classifier."""
        cfg = self.config
        rng = as_generator(cfg.seed)
        self._dataset = dataset
        self._train_cells = set(training.cells)

        train_main, holdout = training.split_holdout(cfg.holdout_fraction, rng=rng)
        if len(train_main) == 0:
            raise ValueError("training set is empty after holdout split")

        # Module 2: representation model Q.
        self.pipeline = default_pipeline(
            constraints=constraints,
            embedding_dim=cfg.embedding_dim,
            embedding_epochs=cfg.embedding_epochs,
            exclude=cfg.exclude_models,
            rng=rng,
        )
        self.pipeline.cache = self.cache
        self.pipeline.fit(dataset)

        # Module 1: noisy channel learning + augmentation.
        examples: list[LabeledCell] = list(train_main)
        if cfg.augment:
            self.policy = cfg.policy_override or self._learn_policy(dataset, train_main)
            result = augment_training_set(
                train_main,
                self.policy,
                alpha=cfg.alpha,
                target_ratio=cfg.target_ratio,
                rng=rng,
            )
            self.augmented_count = len(result)
            examples.extend(result.examples)

        # Module 3: joint training + calibration.
        features = self.pipeline.transform(
            [e.cell for e in examples], dataset, values=[e.observed for e in examples]
        )
        labels = np.array([1 if e.is_error else 0 for e in examples], dtype=np.int64)
        self.model = JointModel(
            numeric_dim=self.pipeline.numeric_dim,
            branch_dims=self.pipeline.branch_dims,
            hidden_dim=cfg.hidden_dim,
            dropout=cfg.dropout,
            rng=rng,
        )
        train_model(
            self.model,
            features,
            labels,
            TrainerConfig(
                epochs=cfg.epochs,
                batch_size=cfg.batch_size,
                lr=cfg.lr,
                weight_decay=cfg.weight_decay,
                min_steps=cfg.min_training_steps,
                seed=int(rng.integers(0, 2**31)),
            ),
        )

        self.scaler = PlattScaler()
        if cfg.calibrate and len(holdout) > 0:
            hold_features = self.pipeline.transform(
                [e.cell for e in holdout], dataset, values=[e.observed for e in holdout]
            )
            hold_scores = self.model.error_scores(hold_features)
            hold_targets = np.array([1.0 if e.is_error else 0.0 for e in holdout])
            self.scaler.fit(hold_scores, hold_targets)
        else:
            self.scaler.fit(np.zeros(0), np.zeros(0))
        return self

    def _learn_policy(self, dataset: Dataset, training: TrainingSet) -> Policy:
        """Learn (Φ, Π̂) from T's errors, topped up by weak supervision (§5.4)."""
        pairs = training.error_pairs()
        if len(pairs) < self.config.min_error_pairs:
            weak_model = NaiveBayesRepairModel().fit(dataset)
            pairs = pairs + weak_model.example_pairs(
                dataset, max_cells=self.config.weak_supervision_max_cells
            )
        return Policy.learn(pairs)

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #

    def predict(self, cells: Sequence[Cell] | None = None) -> ErrorPredictions:
        """Calibrated error probabilities for ``cells``.

        Defaults to every cell of D outside the training set (the paper's
        prediction target, §3.3 Module 3).

        Prediction is chunked into ``config.prediction_batch``-cell batches;
        with the feature cache enabled, a repeated prediction over the same
        cells (or a second pass after e.g. threshold tuning) reuses every
        transformed block.  ``config.prediction_workers > 1`` featurises
        chunks on a thread pool; the model forward pass stays sequential on
        the calling thread because the nn layer toggles global state.
        """
        if self.model is None or self.pipeline is None or self._dataset is None:
            raise RuntimeError("detector used before fit()")
        if cells is None:
            cells = [c for c in self._dataset.cells() if c not in self._train_cells]
        cells = list(cells)
        batch = max(1, self.config.prediction_batch)
        chunks = [
            CellBatch(cells[start : start + batch], self._dataset)
            for start in range(0, len(cells), batch)
        ]
        workers = max(1, self.config.prediction_workers)
        probabilities = np.zeros(len(cells))
        start = 0

        def score(features) -> None:
            nonlocal start
            scores = self.model.error_scores(features)
            probabilities[start : start + features.batch_size] = (
                self.scaler.probability(scores)
            )
            start += features.batch_size

        if workers > 1 and len(chunks) > 1:
            # Featurise a bounded window of chunks in parallel, then score it
            # before moving on: peak memory stays O(window x batch), not
            # O(all cells), no matter how large the relation is.
            window = 4 * workers
            with ThreadPoolExecutor(max_workers=workers) as pool:
                for lo in range(0, len(chunks), window):
                    for features in pool.map(
                        self.pipeline.transform_batch, chunks[lo : lo + window]
                    ):
                        score(features)
        else:
            # Sequential path streams chunk-by-chunk.
            for chunk in chunks:
                score(self.pipeline.transform_batch(chunk))
        return ErrorPredictions(cells=cells, probabilities=probabilities)

    def predict_error_cells(self, cells: Sequence[Cell] | None = None) -> set[Cell]:
        """Convenience wrapper returning just the flagged cells."""
        return self.predict(cells).error_cells
