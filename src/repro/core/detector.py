"""The HoloDetect detector: §3.3's three modules wired end-to-end.

``fit`` runs: (1) transformation + policy learning and data augmentation
(Module 1), (2) representation model fitting (Module 2), (3) joint training
of the learnable layers and classifier M plus Platt calibration (Module 3).
``predict`` classifies every cell of D outside the training set.

Setting ``augment=False`` yields the SuperL variant of §6.1 — identical
model, supervision limited to T — which the baselines package reuses.

:class:`DetectionSession` wraps a fitted detector for the interactive
label→repair→re-score loop: ``apply(edits)`` mutates the dataset through the
versioned batch mutators and patches probabilities for only the cells whose
features the edit can change (derived from featurizer scopes), instead of
re-running a full ``predict()``.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import PurePath
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.artifacts import ArtifactStats, ArtifactStore, get_default_store
from repro.augmentation.augment import augment_training_set
from repro.augmentation.naive_bayes import NaiveBayesRepairModel
from repro.augmentation.policy import Policy
from repro.constraints.dc import DenialConstraint
from repro.core.calibration import PlattScaler
from repro.core.model import JointModel
from repro.core.training import TrainerConfig, train_model
from repro.dataset.table import Cell, Dataset, DatasetDelta
from repro.dataset.training import LabeledCell, TrainingSet
from repro.features.base import CellBatch, FeatureContext
from repro.features.cache import CacheStats, FeatureCache
from repro.features.pipeline import CellFeatures, FeaturePipeline, default_pipeline
from repro.utils.rng import as_generator


@dataclass
class DetectorConfig:
    """All knobs of the detector, defaulted for laptop-scale runs.

    The paper's configuration (500 epochs, batch 5, 50-dim embeddings) is a
    valid setting of the same fields.
    """

    embedding_dim: int = 16
    embedding_epochs: int = 2
    hidden_dim: int = 32
    dropout: float = 0.2
    epochs: int = 40
    batch_size: int = 32
    lr: float = 1e-3
    weight_decay: float = 1e-5
    #: Floor on total optimiser steps — small training sets train deeper
    #: automatically, which removes most seed-to-seed variance in few-shot
    #: regimes (see TrainerConfig.min_steps).
    min_training_steps: int = 800
    holdout_fraction: float = 0.1
    alpha: float = 1.0
    target_ratio: float | None = None
    augment: bool = True
    calibrate: bool = True
    #: Learn the channel from weak supervision when T has fewer error pairs.
    min_error_pairs: int = 10
    #: Cap on cells scanned by the Naive Bayes weak-supervision model.
    weak_supervision_max_cells: int = 20_000
    #: Representation models to drop (ablation studies).
    exclude_models: tuple[str, ...] = ()
    #: Cells featurised per prediction chunk.  Chunk boundaries are
    #: deterministic, so repeated predictions over the same cells hit the
    #: feature cache block-for-block.
    prediction_batch: int = 512
    #: Memoise transformed feature blocks (see ``repro.features.cache``).
    feature_cache: bool = True
    #: LRU capacity of the feature cache, in blocks.
    cache_max_entries: int = 1024
    #: Optional LRU capacity of the feature cache, in bytes of cached
    #: blocks (``None`` = unbounded bytes).  Streaming prediction over an
    #: out-of-core relation visits far more distinct blocks than fit-time
    #: work ever re-reads, so a byte bound keeps the cache from holding the
    #: relation's entire feature matrix.
    cache_max_bytes: int | None = None
    #: Threads featurising prediction chunks concurrently (1 = sequential).
    #: Scoring stays on the calling thread; only featurization fans out.
    prediction_workers: int = 1
    #: Directory of an on-disk fitted-artifact store (:mod:`repro.artifacts`)
    #: shared across fits and processes; ``None`` = no disk tier.
    artifact_dir: str | None = None
    #: Explicit :class:`~repro.artifacts.ArtifactStore` instance (wins over
    #: ``artifact_dir``).  When both are unset the detector falls back to
    #: the process-ambient store installed by sweep workers, if any.
    artifact_store: ArtifactStore | None = field(
        default=None, repr=False, compare=False
    )
    #: Compute backend for model training and scoring (registry kind
    #: ``"backend"``: ``"numpy"``, ``"reference"``, ``"torch"``, or a
    #: ``module:attr`` reference).  ``None`` = the ambient default
    #: (normally the fused-numpy kernels).  Like the artifact store, this
    #: is an execution detail: at float64 every backend's default path is
    #: bit-identical, so the knob never enters spec fingerprints.
    backend: str | None = None
    #: Training compute precision — ``"float64"`` (exact) or ``"float32"``.
    compute_dtype: str = "float64"
    seed: int = 0
    #: Override the learned policy (augmentation-strategy ablations, Table 4).
    policy_override: Policy | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        """Reject out-of-range values at construction time.

        Bad values used to surface deep inside training (a negative epoch
        count silently trained zero steps; a holdout fraction of 1.0 emptied
        the training set); every check here names the field, the offending
        value, and the valid range.
        """
        self.exclude_models = tuple(self.exclude_models)

        def positive_int(name: str) -> None:
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise ValueError(
                    f"{name} must be a positive integer, got {value!r}"
                )

        def fraction(name: str, *, closed_top: bool = False) -> None:
            value = getattr(self, name)
            top_ok = value <= 1.0 if closed_top else value < 1.0
            if not isinstance(value, (int, float)) or not (0.0 <= value and top_ok):
                bound = "[0, 1]" if closed_top else "[0, 1)"
                raise ValueError(f"{name} must be in {bound}, got {value!r}")

        for name in (
            "embedding_dim", "embedding_epochs", "hidden_dim", "epochs",
            "batch_size", "prediction_batch", "cache_max_entries",
            "prediction_workers",
        ):
            positive_int(name)
        if self.cache_max_bytes is not None and (
            not isinstance(self.cache_max_bytes, int)
            or isinstance(self.cache_max_bytes, bool)
            or self.cache_max_bytes < 1
        ):
            raise ValueError(
                "cache_max_bytes must be a positive integer or None, "
                f"got {self.cache_max_bytes!r}"
            )
        fraction("dropout")
        fraction("holdout_fraction")
        if not isinstance(self.lr, (int, float)) or not self.lr > 0:
            raise ValueError(f"lr must be positive, got {self.lr!r}")
        if not isinstance(self.weight_decay, (int, float)) or self.weight_decay < 0:
            raise ValueError(
                f"weight_decay must be non-negative, got {self.weight_decay!r}"
            )
        if not isinstance(self.min_training_steps, int) or self.min_training_steps < 0:
            raise ValueError(
                "min_training_steps must be a non-negative integer, "
                f"got {self.min_training_steps!r}"
            )
        if not isinstance(self.alpha, (int, float)) or not self.alpha > 0:
            raise ValueError(f"alpha must be positive, got {self.alpha!r}")
        if self.target_ratio is not None and (
            not isinstance(self.target_ratio, (int, float)) or not self.target_ratio > 0
        ):
            raise ValueError(
                f"target_ratio must be positive or None, got {self.target_ratio!r}"
            )
        if not isinstance(self.min_error_pairs, int) or self.min_error_pairs < 0:
            raise ValueError(
                f"min_error_pairs must be a non-negative integer, "
                f"got {self.min_error_pairs!r}"
            )
        if (
            not isinstance(self.weak_supervision_max_cells, int)
            or self.weak_supervision_max_cells < 1
        ):
            raise ValueError(
                "weak_supervision_max_cells must be a positive integer, "
                f"got {self.weak_supervision_max_cells!r}"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool) or self.seed < 0:
            raise ValueError(
                f"seed must be a non-negative integer, got {self.seed!r}"
            )
        if self.artifact_dir is not None and not isinstance(
            self.artifact_dir, (str, PurePath)
        ):
            raise ValueError(
                f"artifact_dir must be a path string or None, got {self.artifact_dir!r}"
            )
        if self.artifact_store is not None and not isinstance(
            self.artifact_store, ArtifactStore
        ):
            raise ValueError(
                f"artifact_store must be an ArtifactStore or None, "
                f"got {type(self.artifact_store).__name__}"
            )
        if self.backend is not None and not isinstance(self.backend, str):
            raise ValueError(
                f"backend must be a registry key string or None, "
                f"got {self.backend!r}"
            )
        from repro.nn.backend import SUPPORTED_DTYPES

        if self.compute_dtype not in SUPPORTED_DTYPES:
            raise ValueError(
                f"compute_dtype must be one of {list(SUPPORTED_DTYPES)}, "
                f"got {self.compute_dtype!r}"
            )


@dataclass
class ErrorPredictions:
    """Cell-level predictions: calibrated error probabilities and labels."""

    cells: list[Cell]
    probabilities: np.ndarray
    threshold: float = 0.5
    #: Lazily built ``Cell -> position`` map backing O(1) lookups; rebuilt
    #: automatically when the cell list grows (appended rows).
    _index: dict[Cell, int] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def error_cells(self) -> set[Cell]:
        return {
            c for c, p in zip(self.cells, self.probabilities) if p >= self.threshold
        }

    def index_of(self, cell: Cell) -> int:
        """Position of ``cell`` in :attr:`cells` (O(1) after the first call)."""
        if self._index is None or len(self._index) != len(self.cells):
            self._index = {c: i for i, c in enumerate(self.cells)}
        try:
            return self._index[cell]
        except KeyError:
            raise KeyError(f"no prediction for {cell}") from None

    def probability(self, cell: Cell) -> float:
        """Calibrated error probability of one cell."""
        return float(self.probabilities[self.index_of(cell)])

    def is_error(self, cell: Cell) -> bool:
        return bool(self.probabilities[self.index_of(cell)] >= self.threshold)

    def as_dict(self) -> dict[Cell, float]:
        return dict(zip(self.cells, self.probabilities))


class HoloDetect:
    """Few-shot error detector with learned data augmentation (AUG).

    Two construction paths build the *same* detector:

    - imperative — ``HoloDetect(DetectorConfig(...))``;
    - declarative — ``HoloDetect.from_spec(spec)`` (or ``repro.build``),
      where every component of the composition is a
      :mod:`repro.registry` reference carried by a
      :class:`~repro.spec.DetectorSpec`.

    A spec-built detector with the default component set is bit-identical
    in predictions to the imperative equivalent.
    """

    def __init__(self, config: DetectorConfig | None = None, *, spec=None):
        self.config = config or DetectorConfig()
        #: The :class:`~repro.spec.DetectorSpec` this detector was built
        #: from, or ``None`` for imperative construction.  Persisted by
        #: :mod:`repro.persistence` alongside the weights.
        self.spec = spec
        self.pipeline: FeaturePipeline | None = None
        self.model: JointModel | None = None
        self.scaler: PlattScaler | None = None
        self.policy: Policy | None = None
        self.cache: FeatureCache | None = (
            FeatureCache(
                self.config.cache_max_entries,
                max_bytes=self.config.cache_max_bytes,
            )
            if self.config.feature_cache
            else None
        )
        self._artifact_store: ArtifactStore | None = (
            self.config.artifact_store
            if self.config.artifact_store is not None
            else (
                ArtifactStore(directory=self.config.artifact_dir)
                if self.config.artifact_dir
                else None
            )
        )
        #: Artifact keys consulted/stored by the last ``fit`` (labelled
        #: ``model`` or ``model/<column>``); persisted with the detector.
        self.artifact_keys: dict[str, str] = {}
        self.augmented_count = 0
        #: Wall-clock seconds of the last ``fit`` (keys ``fit``,
        #: ``featurize``, ``train``) and the last ``predict`` (key
        #: ``predict``).  Surfaced in ``repro.detect/v1`` reports and
        #: serving responses.
        self.timings: dict[str, float] = {}
        self._dataset: Dataset | None = None
        self._train_cells: set[Cell] = set()

    @classmethod
    def from_spec(cls, spec) -> "HoloDetect":
        """Construct an (unfitted) detector from a declarative spec.

        ``spec`` is a :class:`~repro.spec.DetectorSpec`, a mapping in the
        ``repro.spec/v1`` layout, or a path to a ``.toml``/``.json`` spec
        file.  The spec is validated eagerly; component resolution errors
        surface here, not inside :meth:`fit`.
        """
        from repro.spec import load_spec

        spec = load_spec(spec)
        # Directly-constructed DetectorSpec instances skip from_dict, so
        # validate here: every construction path fails fast, never in fit().
        spec.validate()
        config_kwargs = dict(spec.detector)
        artifacts = dict(spec.artifacts)
        if artifacts.get("dir") is not None:
            # The [artifacts] table is the only spec-able home for the
            # store directory (validate() rejects it under [detector], so
            # it can never enter the fingerprint).
            config_kwargs["artifact_dir"] = artifacts["dir"]
        compute = dict(spec.compute)
        if compute.get("backend") is not None:
            # Same pattern for the compute backend: an execution detail,
            # spec-able only through the unfingerprinted [compute] table.
            config_kwargs["backend"] = compute["backend"]
        if compute.get("dtype") is not None:
            config_kwargs["compute_dtype"] = compute["dtype"]
        return cls(DetectorConfig(**config_kwargs), spec=spec)

    @property
    def cache_stats(self) -> CacheStats | None:
        """Feature-cache accounting, or ``None`` when caching is disabled."""
        return self.cache.stats if self.cache is not None else None

    @property
    def artifacts(self) -> ArtifactStore | None:
        """The fitted-artifact store in effect: the config's own store,
        else the process-ambient one (sweep workers), else ``None``."""
        # Explicit None check: an empty store is len()-falsy but valid.
        if self._artifact_store is not None:
            return self._artifact_store
        return get_default_store()

    @property
    def artifact_stats(self) -> ArtifactStats | None:
        """Artifact-store accounting, or ``None`` when no store is in effect."""
        store = self.artifacts
        return store.stats if store is not None else None

    def use_artifacts(
        self, store: "ArtifactStore | str | PurePath | None"
    ) -> "HoloDetect":
        """Attach a fitted-artifact store after construction.

        Covers detectors whose config was not in the caller's hands — ones
        built from a spec or reloaded from disk (``repro detect --spec
        ... --artifacts DIR``, ``repro rescore --model ... --artifacts
        DIR``).  An already-fitted pipeline is re-pointed too, so
        subsequent ``refresh``/refit work consults the new store.

        ``None`` clears the *explicitly attached* store only: the
        process-ambient store (sweep workers), when installed, still
        applies at the next ``fit()`` — detaching from the ambient tier is
        the ambience manager's job (:func:`repro.artifacts.use_store`).
        """
        if isinstance(store, (str, PurePath)):
            store = ArtifactStore(directory=store)
        self._artifact_store = store
        if self.pipeline is not None:
            self.pipeline.artifacts = store
            for featurizer in self.pipeline.featurizers:
                featurizer.artifact_store = store
        return self

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #

    def fit(
        self,
        dataset: Dataset,
        training: TrainingSet,
        constraints: Sequence[DenialConstraint] | None = None,
    ) -> "HoloDetect":
        """Learn the channel, the representation, and the classifier."""
        from time import perf_counter

        cfg = self.config
        rng = as_generator(cfg.seed)
        self._dataset = dataset
        self._train_cells = set(training.cells)
        t_fit = perf_counter()
        self.timings = {}

        train_main, holdout = training.split_holdout(cfg.holdout_fraction, rng=rng)
        if len(train_main) == 0:
            raise ValueError("training set is empty after holdout split")

        # Module 2: representation model Q.  With an artifact store in
        # effect, fitted embeddings and featurizer states are served from
        # it; a warm fit is bit-identical to a cold one because embedding
        # training seeds derive from content, not from the shared stream.
        t0 = perf_counter()
        self.pipeline = self._build_pipeline(constraints)
        self.pipeline.cache = self.cache
        self.pipeline.artifacts = self.artifacts
        self.pipeline.fit(dataset)
        self.timings["featurize"] = perf_counter() - t0
        self.artifact_keys = self.pipeline.artifact_keys

        # Module 1: noisy channel learning + augmentation.
        examples: list[LabeledCell] = list(train_main)
        if cfg.augment:
            self.policy = self._resolve_policy(dataset, train_main)
            result = augment_training_set(
                train_main,
                self.policy,
                alpha=cfg.alpha,
                target_ratio=cfg.target_ratio,
                rng=rng,
            )
            self.augmented_count = len(result)
            examples.extend(result.examples)

        # Module 3: joint training + calibration.
        features = self.pipeline.transform(
            [e.cell for e in examples], dataset, values=[e.observed for e in examples]
        )
        labels = np.array([1 if e.is_error else 0 for e in examples], dtype=np.int64)
        self.model = JointModel(
            numeric_dim=self.pipeline.numeric_dim,
            branch_dims=self.pipeline.branch_dims,
            hidden_dim=cfg.hidden_dim,
            dropout=cfg.dropout,
            rng=rng,
        )
        t0 = perf_counter()
        train_model(
            self.model,
            features,
            labels,
            TrainerConfig(
                epochs=cfg.epochs,
                batch_size=cfg.batch_size,
                lr=cfg.lr,
                weight_decay=cfg.weight_decay,
                min_steps=cfg.min_training_steps,
                seed=int(rng.integers(0, 2**31)),
                backend=cfg.backend,
                dtype=cfg.compute_dtype,
            ),
        )
        self.timings["train"] = perf_counter() - t0

        self.scaler = self._build_calibrator()
        if cfg.calibrate and len(holdout) > 0:
            hold_features = self.pipeline.transform(
                [e.cell for e in holdout], dataset, values=[e.observed for e in holdout]
            )
            with self._backend_scope():
                hold_scores = self.model.error_scores(hold_features)
            hold_targets = np.array([1.0 if e.is_error else 0.0 for e in holdout])
            self.scaler.fit(hold_scores, hold_targets)
        else:
            self.scaler.fit(np.zeros(0), np.zeros(0))
        self.timings["fit"] = perf_counter() - t_fit
        return self

    def _backend_scope(self):
        """Scoped backend override for forward passes.

        When the config names a backend, model scoring runs on it;
        otherwise the ambient default (sweep workers, serving layer)
        applies untouched.
        """
        import contextlib

        from repro.nn.backend import use_backend

        if self.config.backend is None:
            return contextlib.nullcontext()
        return use_backend(self.config.backend)

    def _build_pipeline(self, constraints) -> FeaturePipeline:
        """The representation model Q: spec-declared or the Table 7 default.

        The detector deliberately does *not* thread its RNG stream into the
        featurizers: embedding training seeds derive from corpus content
        and component config (:mod:`repro.artifacts.keys`), which is what
        makes fitted artifacts reusable across detector seeds, label
        budgets, and trials, and keeps a store-served warm fit bit-identical
        to a cold one.  (Versioned behaviour change — see "Fit-path
        artifacts" in ``docs/architecture.md``.)
        """
        cfg = self.config
        if self.spec is not None and self.spec.featurizers is not None:
            from repro.features.pipeline import FeaturizerContext, build_pipeline

            ctx = FeaturizerContext(
                constraints=list(constraints) if constraints else (),
                embedding_dim=cfg.embedding_dim,
                embedding_epochs=cfg.embedding_epochs,
            )
            return build_pipeline(list(self.spec.featurizers), ctx)
        return default_pipeline(
            constraints=constraints,
            embedding_dim=cfg.embedding_dim,
            embedding_epochs=cfg.embedding_epochs,
            exclude=cfg.exclude_models,
        )

    def _resolve_policy(self, dataset: Dataset, training: TrainingSet) -> Policy:
        """The augmentation policy: override, spec component, or learned.

        ``config.policy_override`` (the imperative path) wins; otherwise the
        spec's policy component builds to ``None`` (learn from data), a
        ready :class:`Policy` (use verbatim), or a callable wrapper applied
        to the learned policy (e.g. the Table 4 uniform ablation).
        """
        if self.config.policy_override is not None:
            return self.config.policy_override
        component = None
        if self.spec is not None:
            from repro.registry import REGISTRY

            name, params = self.spec.policy
            component = REGISTRY.create("policy", name, params)
        if component is None:
            return self._learn_policy(dataset, training)
        if isinstance(component, Policy):
            return component
        if callable(component):
            return component(self._learn_policy(dataset, training))
        raise TypeError(
            f"policy component built {type(component).__name__}; expected "
            "None, a Policy, or a callable Policy wrapper"
        )

    def _build_calibrator(self) -> PlattScaler:
        """The calibrator: spec component or the default Platt scaler."""
        if self.spec is not None:
            from repro.registry import REGISTRY

            name, params = self.spec.calibrator
            return REGISTRY.create("calibrator", name, params)
        return PlattScaler()

    def _learn_policy(self, dataset: Dataset, training: TrainingSet) -> Policy:
        """Learn (Φ, Π̂) from T's errors, topped up by weak supervision (§5.4)."""
        pairs = training.error_pairs()
        if len(pairs) < self.config.min_error_pairs:
            weak_model = NaiveBayesRepairModel().fit(dataset)
            pairs = pairs + weak_model.example_pairs(
                dataset, max_cells=self.config.weak_supervision_max_cells
            )
        return Policy.learn(pairs)

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #

    def predict(self, cells: Sequence[Cell] | None = None) -> ErrorPredictions:
        """Calibrated error probabilities for ``cells``.

        Defaults to every cell of D outside the training set (the paper's
        prediction target, §3.3 Module 3).

        Prediction is chunked into ``config.prediction_batch``-cell batches;
        with the feature cache enabled, a repeated prediction over the same
        cells (or a second pass after e.g. threshold tuning) reuses every
        transformed block.  ``config.prediction_workers > 1`` featurises
        chunks on a thread pool; the model forward pass stays sequential on
        the calling thread because the nn layer toggles global state.
        """
        if self.model is None or self.pipeline is None or self._dataset is None:
            raise RuntimeError("detector used before fit()")
        if cells is None:
            cells = [c for c in self._dataset.cells() if c not in self._train_cells]
        cells = list(cells)
        return ErrorPredictions(
            cells=cells, probabilities=self._score_probabilities(cells)
        )

    def iter_predict(
        self, cells: Iterable[Cell] | None = None
    ) -> Iterator[tuple[Cell, float]]:
        """Stream ``(cell, probability)`` pairs without materialising scores.

        The out-of-core counterpart of :meth:`predict`: ``cells`` may be any
        (lazy) iterable — by default every cell of D outside the training
        set, produced one at a time — and cells are buffered into
        ``config.prediction_batch``-cell chunks as they arrive.  Peak memory
        is one chunk's features, independent of the relation's size.

        Chunk boundaries match :meth:`predict` exactly (same batch size,
        same fixed-shape padding of the trailing chunk), so for the same
        cell sequence the streamed probabilities are bit-identical to a
        ``predict`` pass.
        """
        if self.model is None or self.pipeline is None or self._dataset is None:
            raise RuntimeError("detector used before fit()")
        if cells is None:
            cells = (
                c for c in self._dataset.cells() if c not in self._train_cells
            )
        batch = max(1, self.config.prediction_batch)
        buffer: list[Cell] = []
        for cell in cells:
            buffer.append(cell)
            if len(buffer) == batch:
                yield from self._score_chunk(buffer)
                buffer = []
        if buffer:
            yield from self._score_chunk(buffer)

    def _score_chunk(self, chunk: list[Cell]) -> list[tuple[Cell, float]]:
        """Featurise and score one prediction chunk (used by iter_predict)."""
        with self._backend_scope():
            features = self.pipeline.transform_batch(CellBatch(chunk, self._dataset))
            probabilities = self._score_features(features)
        return list(zip(chunk, (float(p) for p in probabilities)))

    def _score_features(self, features: CellFeatures) -> np.ndarray:
        """Calibrated probabilities for one chunk's transformed features.

        Every chunk is forwarded at the fixed ``prediction_batch`` shape
        (short chunks are zero-padded): BLAS kernel selection — and hence
        reduction order — is shape-dependent, and per-cell scores must not
        depend on chunk composition.  ``DetectionSession`` patches subsets
        and relies on bit-for-bit agreement with a full prediction pass.
        """
        batch = max(1, self.config.prediction_batch)
        n = features.batch_size

        def pad(block: np.ndarray) -> np.ndarray:
            filler = np.zeros((batch - block.shape[0], block.shape[1]), dtype=block.dtype)
            return np.concatenate([block, filler], axis=0)

        if n < batch:
            features = CellFeatures(
                numeric=pad(features.numeric),
                branches={k: pad(v) for k, v in features.branches.items()},
            )
        scores = self.model.error_scores(features)[:n]
        return self.scaler.probability(scores)

    def _score_probabilities(self, cells: list[Cell]) -> np.ndarray:
        """Calibrated probabilities for an explicit cell list (chunked).

        Per-cell outputs are independent of chunk composition, so callers
        (``predict``, ``DetectionSession``) may chunk any subset of cells
        and obtain the same per-cell values.
        """
        from time import perf_counter

        t_predict = perf_counter()
        batch = max(1, self.config.prediction_batch)
        chunks = [
            CellBatch(cells[start : start + batch], self._dataset)
            for start in range(0, len(cells), batch)
        ]
        workers = max(1, self.config.prediction_workers)
        probabilities = np.zeros(len(cells))
        start = 0

        def score(features) -> None:
            # Fixed-shape forwarding lives in _score_features (shared with
            # the streaming iter_predict path, which must agree bit-for-bit).
            nonlocal start
            n = features.batch_size
            probabilities[start : start + n] = self._score_features(features)
            start += n

        with self._backend_scope():
            if workers > 1 and len(chunks) > 1:
                # Featurise a bounded window of chunks in parallel, then
                # score it before moving on: peak memory stays
                # O(window x batch), not O(all cells), no matter how large
                # the relation is.
                window = 4 * workers
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    for lo in range(0, len(chunks), window):
                        for features in pool.map(
                            self.pipeline.transform_batch, chunks[lo : lo + window]
                        ):
                            score(features)
            else:
                # Sequential path streams chunk-by-chunk.
                for chunk in chunks:
                    score(self.pipeline.transform_batch(chunk))
        self.timings["predict"] = perf_counter() - t_predict
        return probabilities

    def predict_error_cells(self, cells: Sequence[Cell] | None = None) -> set[Cell]:
        """Convenience wrapper returning just the flagged cells."""
        return self.predict(cells).error_cells


class DetectionSession:
    """Incremental re-scoring loop around a fitted :class:`HoloDetect`.

    The paper's deployment loop (§6, Fig. 4) is interactive: a user repairs
    or labels a few cells, the detector re-scores, and the loop repeats.  A
    full ``predict()`` re-featurizes and re-scores *every* cell after each
    repair; a session instead re-scores only the cells whose features an
    edit can actually change, derived from the pipeline's featurizer scopes:

    - the **edited cells** themselves (their value — hence every
      attribute-scoped feature — changed);
    - their **row-mates**, when any tuple-scoped model is in the pipeline
      (co-occurrence and tuple-embedding features read the whole tuple);
    - **everything**, only if a dataset-scoped model is present (none of
      the built-in models are dataset-scoped at transform time).

    The patched probabilities are identical to a fresh full ``predict()``
    on the edited dataset — the session never trades accuracy for speed
    (``benchmarks/bench_incremental.py`` asserts bit-for-bit equality).

    Usage::

        session = DetectionSession(detector)          # initial full pass
        session.apply({Cell(3, "city"): "Chicago"})   # repair → fast re-score
        session.predictions.probability(Cell(3, "city"))

    ``apply(..., refresh=True)`` additionally refits the representation
    models that the edit dirties (per-column for attribute-context models)
    via :meth:`FeaturePipeline.refresh`, then re-scores every cell whose
    features a refit model touches — the whole column for a refitted
    per-column model, everything for a refitted tuple/dataset-context model.
    """

    def __init__(
        self,
        detector: HoloDetect,
        cells: Sequence[Cell] | None = None,
        predictions: ErrorPredictions | None = None,
    ):
        if detector.model is None or detector.pipeline is None or detector._dataset is None:
            raise RuntimeError("DetectionSession needs a fitted detector")
        self.detector = detector
        self.dataset: Dataset = detector._dataset
        #: Live predictions, patched in place by :meth:`apply` / :meth:`append`.
        #: Passing ``predictions`` from an earlier ``detector.predict()`` of
        #: the *current* dataset state skips the initial full pass.
        self.predictions: ErrorPredictions = (
            predictions if predictions is not None else detector.predict(cells)
        )
        #: Cells re-scored across all incremental updates (accounting).
        self.rescored_cells = 0
        #: Effective cell edits applied across all :meth:`apply` calls.
        self.applied_edits = 0
        self.last_delta: DatasetDelta | None = None

    @property
    def scopes(self) -> set[FeatureContext]:
        """The transform-time scopes present in the detector's pipeline."""
        return {f.scope for f in self.detector.pipeline.featurizers}

    def apply(
        self,
        edits: Mapping[Cell, str] | Iterable[tuple[Cell, str]],
        *,
        refresh: bool = False,
    ) -> ErrorPredictions:
        """Apply cell repairs to the dataset and re-score affected cells.

        Returns the session's predictions with probabilities patched in
        place.  ``refresh=True`` also refits the dirtied representation
        models before re-scoring (see class docstring).
        """
        delta = self.dataset.apply_edits(edits)
        return self._rescore(delta, refresh=refresh)

    def append(
        self, rows: Iterable[Sequence[str]], *, refresh: bool = False
    ) -> ErrorPredictions:
        """Append new tuples and score their cells (plus any ripple effects)."""
        delta = self.dataset.append_rows(rows)
        return self._rescore(delta, refresh=refresh)

    def _rescore(self, delta: DatasetDelta, *, refresh: bool = False) -> ErrorPredictions:
        self.last_delta = delta
        if delta.is_empty:
            return self.predictions
        self.applied_edits += len(delta.cells)
        refitted: list[str] = []
        if refresh:
            refitted = self.detector.pipeline.refresh(self.dataset, delta)
            if refitted:
                # Refits may serve/store fresh artifacts; keep the
                # detector's provenance keys current (merge — models not
                # refitted keep their fit-time keys).
                self.detector.artifact_keys.update(
                    self.detector.pipeline.artifact_keys
                )
        # New rows become new prediction targets, appended in row order.
        appended_cells = [
            cell
            for row in delta.appended
            for cell in self.dataset.cells_of_row(row)
            if cell not in self.detector._train_cells
        ]
        if appended_cells:
            preds = self.predictions
            preds.cells.extend(appended_cells)
            preds.probabilities = np.concatenate(
                [preds.probabilities, np.zeros(len(appended_cells))]
            )
            preds._index = None
        affected = self._affected_cells(delta, refitted, appended_cells)
        if affected:
            probabilities = self.detector._score_probabilities(affected)
            for cell, probability in zip(affected, probabilities):
                self.predictions.probabilities[
                    self.predictions.index_of(cell)
                ] = probability
            self.rescored_cells += len(affected)
        return self.predictions

    def _affected_cells(
        self,
        delta: DatasetDelta,
        refitted: Sequence[str],
        appended_cells: Sequence[Cell] = (),
    ) -> list[Cell]:
        """The prediction cells whose features ``delta`` can change.

        Derived from the scopes of the pipeline's (possibly just refitted)
        featurizers; see the class docstring for the rules.  Preserves the
        prediction order so chunking stays deterministic.
        """
        pipeline = self.detector.pipeline
        predicted = self.predictions
        refit_by_name = {f.name: f for f in pipeline.featurizers if f.name in refitted}
        # A refitted model with relation-wide fit statistics invalidates
        # every block it feeds; a refitted per-column model the touched
        # columns; an untouched pipeline only what the scopes imply.
        everything = FeatureContext.DATASET in self.scopes or any(
            f.context is not FeatureContext.ATTRIBUTE for f in refit_by_name.values()
        )
        if everything:
            return list(predicted.cells)
        # Appended cells have no score yet — always (re)score them.
        edited = set(delta.cells) | set(appended_cells)
        rows = set(delta.rows)
        columns = set(delta.columns) if refit_by_name else set()
        row_scoped = FeatureContext.TUPLE in self.scopes
        return [
            cell
            for cell in predicted.cells
            if cell in edited
            or (row_scoped and cell.row in rows)
            or cell.attr in columns
        ]
