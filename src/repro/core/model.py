"""The joint wide-and-deep model (Fig. 2, Fig. 7, Appendix A.1).

Each learnable branch processes one embedding block through a two-layer
highway network, a ReLU, and a single-unit dense layer (Fig. 2B) — "so that
the embeddings do not dominate the joint representation".  The branch
scalars are concatenated with the fixed numeric features into the joint
representation, which classifier M (dropout + two-layer network, Fig. 2C)
maps to two logits: class 0 = correct, class 1 = error.

The whole network is trained end-to-end (§4.1: learnable layers are trained
jointly with M).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.features.pipeline import CellFeatures
from repro.nn import (
    Dropout,
    Highway,
    Linear,
    Module,
    ReLU,
    Sequential,
    Tensor,
    concat,
)
from repro.utils.rng import as_generator

#: Class indices of the two-logit output.
CORRECT_CLASS = 0
ERROR_CLASS = 1


class JointModel(Module):
    """Representation model Q's learnable layers + classifier M."""

    def __init__(
        self,
        numeric_dim: int,
        branch_dims: Mapping[str, int],
        hidden_dim: int = 32,
        dropout: float = 0.2,
        rng=None,
    ):
        super().__init__()
        gen = as_generator(rng)
        self.numeric_dim = numeric_dim
        self.branch_names = sorted(branch_dims)
        self.branches = [
            Sequential(
                Highway(branch_dims[name], rng=gen),
                Highway(branch_dims[name], rng=gen),
                ReLU(),
                Linear(branch_dims[name], 1, rng=gen),
            )
            for name in self.branch_names
        ]
        joint_dim = numeric_dim + len(self.branch_names)
        if joint_dim == 0:
            raise ValueError("model needs at least one feature")
        self.classifier = Sequential(
            Dropout(dropout, rng=gen),
            Linear(joint_dim, hidden_dim, rng=gen),
            ReLU(),
            Linear(hidden_dim, 2, rng=gen),
        )

    def forward(self, features: CellFeatures) -> Tensor:  # type: ignore[override]
        """Two-class logits ``[batch, 2]`` for a feature batch."""
        parts: list[Tensor] = []
        for name, branch in zip(self.branch_names, self.branches):
            if name not in features.branches:
                raise KeyError(f"feature batch missing branch {name!r}")
            parts.append(branch(Tensor(features.branches[name])))
        if self.numeric_dim:
            if features.numeric.shape[1] != self.numeric_dim:
                raise ValueError(
                    f"numeric block width {features.numeric.shape[1]} != "
                    f"model numeric_dim {self.numeric_dim}"
                )
            parts.append(Tensor(features.numeric))
        joint = parts[0] if len(parts) == 1 else concat(parts, axis=1)
        return self.classifier(joint)

    def error_scores(self, features: CellFeatures) -> np.ndarray:
        """Uncalibrated error-class score ``z = logit_error - logit_correct``.

        This is the scalar score Platt scaling calibrates.  The forward
        pass runs on the ambient compute backend (fused numpy kernels by
        default); every backend's prediction path is bit-identical to the
        autodiff graph at float64, so scores do not depend on the backend.
        """
        from repro.nn.backend import resolve_backend
        from repro.nn.tensor import no_grad

        backend = resolve_backend()
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                logits = backend.predict_logits(self, features)
        finally:
            if was_training:
                self.train()
        return logits[:, ERROR_CLASS] - logits[:, CORRECT_CLASS]
