"""Minibatch training loop for the joint model.

The paper trains for 500 epochs with batch size 5 using ADAM (§6.1); our
defaults are scaled down for CPU-only runtime but fully configurable — the
loss surface is identical, only the budget differs.

The loop is split along the compute-backend seam (:mod:`repro.nn.backend`):
this driver owns everything that defines a run — label validation, the
epoch/permutation/minibatch schedule, the step-count floor, loss history —
while the per-step math (forward, backward, optimiser update) comes from a
:class:`~repro.nn.backend.JointTrainer` built by the selected backend.
Because the driver draws the batch permutations from one generator, every
backend sees the *same* batch sequence; the default numpy backend is then
bit-identical to the historical autodiff loop, and foreign backends differ
only by kernel arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import JointModel
from repro.features.pipeline import CellFeatures
from repro.nn.backend import SUPPORTED_DTYPES, resolve_backend
from repro.utils.rng import as_generator


@dataclass
class TrainerConfig:
    """Knobs of the training loop.

    ``min_steps`` puts a floor on the total number of optimiser steps:
    few-shot training sets are small, so a fixed epoch count can mean very
    few updates and high seed-to-seed variance.  When the configured epochs
    yield fewer steps than the floor, the epoch count is raised.

    ``backend`` selects the compute backend (registry kind ``"backend"``:
    a built-in key or ``module:attr`` reference; ``None`` = the ambient
    default, normally ``"numpy"``).  ``dtype`` is the compute precision —
    ``"float64"`` (exact, the default) or ``"float32"`` (faster matmuls;
    losses still accumulate in float64).  Neither knob changes what is
    learned at float64, so neither enters spec fingerprints.
    """

    epochs: int = 40
    batch_size: int = 32
    lr: float = 1e-3
    weight_decay: float = 1e-5
    min_steps: int = 0
    seed: int = 0
    backend: str | None = None
    dtype: str = "float64"

    def __post_init__(self) -> None:
        if self.dtype not in SUPPORTED_DTYPES:
            raise ValueError(
                f"dtype must be one of {list(SUPPORTED_DTYPES)}, "
                f"got {self.dtype!r}"
            )


def _slice_features(features: CellFeatures, idx: np.ndarray) -> CellFeatures:
    return CellFeatures(
        numeric=features.numeric[idx],
        branches={k: v[idx] for k, v in features.branches.items()},
    )


def train_model(
    model: JointModel,
    features: CellFeatures,
    labels: np.ndarray,
    config: TrainerConfig | None = None,
) -> list[float]:
    """Train ``model`` on a fixed feature batch; returns per-epoch mean loss.

    ``labels`` are class indices (0 = correct, 1 = error).
    """
    config = config or TrainerConfig()
    labels = np.asarray(labels, dtype=np.int64)
    n = features.batch_size
    if labels.shape[0] != n:
        raise ValueError("labels length must match feature batch size")
    if n == 0:
        raise ValueError("cannot train on an empty batch")
    backend = resolve_backend(config.backend)
    gen = as_generator(config.seed)
    model.train()
    trainer = backend.joint_trainer(model, features, labels, config)
    history: list[float] = []
    steps_per_epoch = max(1, -(-n // config.batch_size))  # ceil division
    epochs = max(config.epochs, -(-config.min_steps // steps_per_epoch))
    for _ in range(epochs):
        order = gen.permutation(n)
        epoch_loss = 0.0
        batches = 0
        for start in range(0, n, config.batch_size):
            idx = order[start : start + config.batch_size]
            epoch_loss += trainer.step(idx)
            batches += 1
        history.append(epoch_loss / max(batches, 1))
    trainer.finalize()
    model.eval()
    return history
