"""Minibatch training loop for the joint model.

The paper trains for 500 epochs with batch size 5 using ADAM (§6.1); our
defaults are scaled down for CPU-only runtime but fully configurable — the
loss surface is identical, only the budget differs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import JointModel
from repro.features.pipeline import CellFeatures
from repro.nn import Adam, softmax_cross_entropy
from repro.utils.rng import as_generator


@dataclass
class TrainerConfig:
    """Knobs of the training loop.

    ``min_steps`` puts a floor on the total number of optimiser steps:
    few-shot training sets are small, so a fixed epoch count can mean very
    few updates and high seed-to-seed variance.  When the configured epochs
    yield fewer steps than the floor, the epoch count is raised.
    """

    epochs: int = 40
    batch_size: int = 32
    lr: float = 1e-3
    weight_decay: float = 1e-5
    min_steps: int = 0
    seed: int = 0


def _slice_features(features: CellFeatures, idx: np.ndarray) -> CellFeatures:
    return CellFeatures(
        numeric=features.numeric[idx],
        branches={k: v[idx] for k, v in features.branches.items()},
    )


def train_model(
    model: JointModel,
    features: CellFeatures,
    labels: np.ndarray,
    config: TrainerConfig | None = None,
) -> list[float]:
    """Train ``model`` on a fixed feature batch; returns per-epoch mean loss.

    ``labels`` are class indices (0 = correct, 1 = error).
    """
    config = config or TrainerConfig()
    labels = np.asarray(labels, dtype=np.int64)
    n = features.batch_size
    if labels.shape[0] != n:
        raise ValueError("labels length must match feature batch size")
    if n == 0:
        raise ValueError("cannot train on an empty batch")
    optimizer = Adam(model.parameters(), lr=config.lr, weight_decay=config.weight_decay)
    gen = as_generator(config.seed)
    model.train()
    history: list[float] = []
    steps_per_epoch = max(1, -(-n // config.batch_size))  # ceil division
    epochs = max(config.epochs, -(-config.min_steps // steps_per_epoch))
    for _ in range(epochs):
        order = gen.permutation(n)
        epoch_loss = 0.0
        batches = 0
        for start in range(0, n, config.batch_size):
            idx = order[start : start + config.batch_size]
            optimizer.zero_grad()
            logits = model(_slice_features(features, idx))
            loss = softmax_cross_entropy(logits, labels[idx])
            loss.backward()
            optimizer.step()
            epoch_loss += loss.item()
            batches += 1
        history.append(epoch_loss / max(batches, 1))
    model.eval()
    return history
