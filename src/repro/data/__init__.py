"""Benchmark dataset generators.

The paper evaluates on five datasets (Table 1): Hospital, Food, Soccer,
Adult, and Animal.  The original CSVs are not redistributable/reachable
offline, so each module here generates a synthetic equivalent that matches
the published schema shape, functional-dependency structure, error *types*
and error *rates* — the statistics the paper's findings actually depend on —
at a configurable scale.  Every bundle carries exact cell-level ground truth.
"""

from repro.data.bundle import DatasetBundle
from repro.data.registry import DATASET_NAMES, load_dataset

__all__ = ["DatasetBundle", "DATASET_NAMES", "load_dataset"]
