"""Adult benchmark generator.

The original Adult dataset (97,684 rows × 11 attributes of UCI census data,
from Rammelaere and Geerts [49]) carries BART-injected errors — 70% typos
and 30% value swaps — at an extreme imbalance of 1,062 erroneous cells
(≈0.1% of cells), the hardest imbalance regime in the paper.  This generator
mirrors the census schema (education → education-num FD, correlated
work/occupation fields) and that noise profile.
"""

from __future__ import annotations

from repro.constraints.dc import functional_dependency
from repro.data.bundle import DatasetBundle
from repro.data.synth import choose, word_pool, zipf_choice
from repro.dataset.table import Dataset
from repro.errors.bart import ErrorProfile, inject_errors
from repro.utils.rng import as_generator

ATTRIBUTES = (
    "Age",
    "WorkClass",
    "Education",
    "EducationNum",
    "MaritalStatus",
    "Occupation",
    "Relationship",
    "Race",
    "Sex",
    "NativeCountry",
    "Income",
)

_EDUCATION = [
    ("Preschool", "1"),
    ("1st-4th", "2"),
    ("5th-6th", "3"),
    ("7th-8th", "4"),
    ("9th", "5"),
    ("10th", "6"),
    ("11th", "7"),
    ("12th", "8"),
    ("HS-grad", "9"),
    ("Some-college", "10"),
    ("Assoc-voc", "11"),
    ("Assoc-acdm", "12"),
    ("Bachelors", "13"),
    ("Masters", "14"),
    ("Prof-school", "15"),
    ("Doctorate", "16"),
]

_WORK_CLASSES = ["Private", "Self-emp-not-inc", "Self-emp-inc", "Federal-gov", "Local-gov", "State-gov"]
_OCCUPATIONS = [
    "Tech-support",
    "Craft-repair",
    "Sales",
    "Exec-managerial",
    "Prof-specialty",
    "Machine-op-inspct",
    "Adm-clerical",
    "Farming-fishing",
    "Transport-moving",
]
_MARITAL = ["Married-civ-spouse", "Divorced", "Never-married", "Separated", "Widowed"]
_RELATIONSHIP = ["Wife", "Own-child", "Husband", "Not-in-family", "Other-relative", "Unmarried"]
_RACE = ["White", "Black", "Asian-Pac-Islander", "Amer-Indian-Eskimo", "Other"]


def generate_adult(num_rows: int = 2000, seed: int = 0) -> DatasetBundle:
    """Generate the Adult bundle at ``num_rows`` scale."""
    rng = as_generator(seed)
    countries = ["United-States"] * 6 + word_pool(rng, 12)
    rows = []
    for _ in range(num_rows):
        education, education_num = _EDUCATION[int(rng.integers(0, len(_EDUCATION)))]
        marital = choose(rng, _MARITAL)
        # Relationship correlates with marital status, as in the real data.
        if marital == "Married-civ-spouse":
            relationship = choose(rng, ["Husband", "Wife"])
        else:
            relationship = choose(rng, [r for r in _RELATIONSHIP if r not in ("Husband", "Wife")])
        sex = "Male" if relationship == "Husband" else "Female" if relationship == "Wife" else choose(rng, ["Male", "Female"])
        # Income correlates with education.
        income = ">50K" if int(education_num) >= 13 and rng.random() < 0.5 else "<=50K"
        rows.append(
            [
                str(int(rng.integers(17, 90))),
                zipf_choice(rng, _WORK_CLASSES),
                education,
                education_num,
                marital,
                choose(rng, _OCCUPATIONS),
                relationship,
                zipf_choice(rng, _RACE),
                sex,
                zipf_choice(rng, countries),
                income,
            ]
        )
    clean = Dataset.from_rows(ATTRIBUTES, rows)

    constraints = [
        functional_dependency("Education", "EducationNum"),
        functional_dependency("EducationNum", "Education"),
    ]

    # Table 1: 1,062 / (97,684 × 11) ≈ 0.1% of cells; 70% typos, 30% swaps.
    profile = ErrorProfile(error_rate=1062 / (97_684 * 11), typo_fraction=0.7)
    dirty, truth = inject_errors(clean, profile, rng)
    return DatasetBundle("adult", clean, dirty, truth, constraints)
