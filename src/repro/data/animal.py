"""Animal benchmark generator.

The original Animal dataset (60,575 rows × 14 attributes, provided by UC
Berkeley scientists and used by Abedjan et al. [2]) records animal captures
with manually curated ground truth — 8,077 erroneous cells (≈0.95%), split
51% typos / 49% swaps (§6.1).  Several attributes are tiny categorical
domains (the Appendix A.3 policy study uses one with values {R, O, Empty}).
This generator reproduces the capture-record structure, the small
categorical domains, and that noise profile.
"""

from __future__ import annotations

from repro.constraints.dc import functional_dependency
from repro.data.bundle import DatasetBundle
from repro.data.synth import choose, code_pool, date_string, word_pool
from repro.dataset.table import Dataset
from repro.errors.bart import ErrorProfile, inject_errors
from repro.utils.rng import as_generator

ATTRIBUTES = (
    "CaptureID",
    "Species",
    "Sex",
    "AgeClass",
    "Weight",
    "BodyLength",
    "Site",
    "Region",
    "TrapID",
    "Habitat",
    "CaptureDate",
    "Collar",
    "ReproductiveStatus",
    "Observer",
)


def generate_animal(num_rows: int = 1500, seed: int = 0) -> DatasetBundle:
    """Generate the Animal bundle at ``num_rows`` scale."""
    rng = as_generator(seed)
    num_sites = max(num_rows // 100, 6)
    num_traps = num_sites * 5

    species = ["Peromyscus", "Microtus", "Tamias", "Sciurus", "Neotoma", "Sorex"]
    sites = word_pool(rng, num_sites)
    regions = word_pool(rng, max(num_sites // 2, 3))
    habitats = ["Grassland", "Forest", "Riparian", "Scrub"]
    site_info = {
        s: (regions[i % len(regions)], choose(rng, habitats)) for i, s in enumerate(sites)
    }
    traps = code_pool(rng, num_traps, "TR", 4)
    trap_site = {t: sites[i % num_sites] for i, t in enumerate(traps)}
    observers = word_pool(rng, 8)

    rows = []
    for i in range(num_rows):
        trap = choose(rng, traps)
        site = trap_site[trap]
        region, habitat = site_info[site]
        weight = f"{rng.uniform(5, 600):.1f}"
        rows.append(
            [
                f"CAP-{i:06d}",
                choose(rng, species),
                choose(rng, ["M", "F"]),
                choose(rng, ["Adult", "Juvenile", "Subadult"]),
                weight,
                f"{rng.uniform(40, 300):.0f}",
                site,
                region,
                trap,
                habitat,
                date_string(rng, 1995, 2010),
                choose(rng, ["Y", "N"]),
                # The small categorical domain studied in Appendix A.3.
                choose(rng, ["R", "O", "Empty"]),
                choose(rng, observers),
            ]
        )
    clean = Dataset.from_rows(ATTRIBUTES, rows)

    constraints = [
        functional_dependency("TrapID", "Site"),
        functional_dependency("Site", "Region"),
        functional_dependency("Site", "Habitat"),
    ]

    # Table 1: 8,077 / (60,575 × 14) ≈ 0.95% of cells; 51% typos, 49% swaps.
    profile = ErrorProfile(
        error_rate=8077 / (60_575 * 14),
        typo_fraction=0.51,
        attributes=tuple(a for a in ATTRIBUTES if a != "CaptureID"),
    )
    dirty, truth = inject_errors(clean, profile, rng)
    return DatasetBundle("animal", clean, dirty, truth, constraints)
