"""The bundle every dataset generator returns."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constraints.dc import DenialConstraint
from repro.dataset.ground_truth import GroundTruth
from repro.dataset.table import Cell, Dataset


@dataclass
class DatasetBundle:
    """A benchmark dataset: clean + dirty relation, truth, and constraints."""

    name: str
    clean: Dataset
    dirty: Dataset
    truth: GroundTruth
    constraints: list[DenialConstraint] = field(default_factory=list)

    @property
    def error_cells(self) -> set[Cell]:
        return set(self.truth.error_cells(self.dirty))

    @property
    def error_rate(self) -> float:
        return self.truth.error_rate(self.dirty)

    def summary(self) -> dict[str, object]:
        """Table 1-style row: size, attributes, error count."""
        return {
            "dataset": self.name,
            "rows": self.dirty.num_rows,
            "attributes": len(self.dirty.attributes),
            "errors": len(self.error_cells),
            "error_rate": round(self.error_rate, 4),
            "constraints": len(self.constraints),
        }
