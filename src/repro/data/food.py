"""Food benchmark generator.

The original Food dataset holds Chicago food-establishment inspections
(170,945 rows × 15 attributes); its real-world errors are conflicting zip
codes / facility types / inspection results for the same establishment,
measured at 24% typos and 76% value swaps over the sampled ground truth
(§6.1).  This generator mirrors the schema and those error statistics:
establishment entities (license → name/address/zip/facility-type FDs)
crossed with inspection events, corrupted with a 24/76 typo/swap mix.
"""

from __future__ import annotations

from repro.constraints.dc import functional_dependency
from repro.data.bundle import DatasetBundle
from repro.data.synth import (
    choose,
    code_pool,
    date_string,
    digit_pool,
    phone_number,
    street_address,
    word_pool,
    zipf_choice,
)
from repro.dataset.table import Dataset
from repro.errors.bart import ErrorProfile, inject_errors
from repro.utils.rng import as_generator

ATTRIBUTES = (
    "Inspection_ID",
    "DBA_Name",
    "AKA_Name",
    "License",
    "Facility_Type",
    "Risk",
    "Address",
    "City",
    "State",
    "Zip",
    "Phone",
    "Inspection_Date",
    "Inspection_Type",
    "Results",
    "Violations",
)


def generate_food(num_rows: int = 2000, seed: int = 0) -> DatasetBundle:
    """Generate the Food bundle at ``num_rows`` scale."""
    rng = as_generator(seed)
    num_establishments = max(num_rows // 8, 12)
    num_zips = max(num_establishments // 6, 5)

    zips = digit_pool(rng, num_zips, 5)
    streets = word_pool(rng, 30)
    names = [f"{w} {kind}" for w, kind in zip(
        word_pool(rng, num_establishments),
        [choose(rng, ["Cafe", "Grill", "Bakery", "Coffee", "Diner", "Market"]) for _ in range(num_establishments)],
    )]
    licenses = code_pool(rng, num_establishments, "LIC", 6)
    facility_types = ["Restaurant", "Grocery Store", "Bakery", "Coffee Shop", "School Cafeteria"]
    risks = ["Risk 1 (High)", "Risk 2 (Medium)", "Risk 3 (Low)"]

    establishments = []
    for i in range(num_establishments):
        name = names[i]
        establishments.append(
            {
                "DBA_Name": name,
                "AKA_Name": name.split(" ")[0],
                "License": licenses[i],
                "Facility_Type": choose(rng, facility_types),
                "Risk": choose(rng, risks),
                "Address": street_address(rng, streets),
                "City": "Chicago",
                "State": "IL",
                "Zip": choose(rng, zips),
                "Phone": phone_number(rng),
            }
        )

    inspection_types = ["Canvass", "Complaint", "License", "Re-Inspection"]
    results = ["Pass", "Fail", "Pass w/ Conditions", "No Entry"]
    violation_codes = [f"V{n:02d}" for n in range(1, 45)]

    rows = []
    for i in range(num_rows):
        est = establishments[int(rng.integers(0, num_establishments))]
        violations = " | ".join(
            sorted({zipf_choice(rng, violation_codes) for _ in range(int(rng.integers(0, 4)))})
        )
        rows.append(
            [
                f"IN-{i:07d}",
                est["DBA_Name"],
                est["AKA_Name"],
                est["License"],
                est["Facility_Type"],
                est["Risk"],
                est["Address"],
                est["City"],
                est["State"],
                est["Zip"],
                est["Phone"],
                date_string(rng),
                choose(rng, inspection_types),
                choose(rng, results),
                violations,
            ]
        )
    clean = Dataset.from_rows(ATTRIBUTES, rows)

    constraints = [
        functional_dependency("License", "DBA_Name"),
        functional_dependency("License", "Facility_Type"),
        functional_dependency("License", "Zip"),
        functional_dependency("License", "Address"),
        functional_dependency("DBA_Name", "License"),
        functional_dependency("Zip", "City"),
        functional_dependency("Zip", "State"),
    ]

    # Table 1: 1,208 errors over 3,000 labelled tuples × 15 attrs ≈ 2.7% of
    # cells; §6.1: 24% typos / 76% swaps.
    profile = ErrorProfile(
        error_rate=1208 / (3000 * len(ATTRIBUTES)),
        typo_fraction=0.24,
        attributes=tuple(a for a in ATTRIBUTES if a != "Inspection_ID"),
    )
    dirty, truth = inject_errors(clean, profile, rng)
    return DatasetBundle("food", clean, dirty, truth, constraints)
