"""Hospital benchmark generator.

The original Hospital dataset (1,000 rows × 19 attributes, 504 erroneous
cells) is the classic data-cleaning benchmark [12, 55]; its errors are
artificial typos injected by replacing characters with 'x' (Appendix A.3).
This generator reproduces that structure: hospital entities with strong
functional dependencies (zip → city/state, provider number → everything
about the hospital, measure code → measure name), corrupted by 'x'-typos at
the published cell error rate (504 / 19,000 ≈ 2.65%).
"""

from __future__ import annotations

from repro.constraints.dc import functional_dependency
from repro.data.bundle import DatasetBundle
from repro.data.synth import (
    choose,
    code_pool,
    digit_pool,
    phone_number,
    street_address,
    word_pool,
)
from repro.dataset.table import Dataset
from repro.errors.bart import ErrorProfile, inject_errors
from repro.utils.rng import as_generator

ATTRIBUTES = (
    "ProviderNumber",
    "HospitalName",
    "Address1",
    "Address2",
    "Address3",
    "City",
    "State",
    "ZipCode",
    "CountyName",
    "PhoneNumber",
    "HospitalType",
    "HospitalOwner",
    "EmergencyService",
    "Condition",
    "MeasureCode",
    "MeasureName",
    "Score",
    "Sample",
    "StateAvg",
)

#: Published statistics of the original benchmark.
PAPER_ROWS = 1000
PAPER_ERROR_CELLS = 504


def generate_hospital(num_rows: int = 1000, seed: int = 0) -> DatasetBundle:
    """Generate the Hospital bundle at ``num_rows`` scale."""
    rng = as_generator(seed)
    num_hospitals = max(num_rows // 15, 8)
    num_measures = 24
    num_zips = max(num_hospitals // 2, 6)

    states = ["AL", "AK", "AZ", "CA", "CO", "FL", "GA", "IL", "MA", "TX"]
    cities = word_pool(rng, num_zips)
    counties = word_pool(rng, max(num_zips // 2, 4))
    streets = word_pool(rng, 20)
    zips = digit_pool(rng, num_zips, 5)
    # zip -> (city, state, county): the FD backbone.
    zip_info = {
        z: (cities[i], choose(rng, states), counties[i % len(counties)])
        for i, z in enumerate(zips)
    }

    hospital_names = [f"{w} Hospital" for w in word_pool(rng, num_hospitals)]
    providers = code_pool(rng, num_hospitals, "HP", 5)
    hospital_types = ["Acute Care", "Critical Access", "Childrens"]
    owners = ["Government", "Proprietary", "Voluntary non-profit"]
    hospitals = []
    for i in range(num_hospitals):
        zip_code = zips[int(rng.integers(0, len(zips)))]
        city, state, county = zip_info[zip_code]
        hospitals.append(
            {
                "ProviderNumber": providers[i],
                "HospitalName": hospital_names[i],
                "Address1": street_address(rng, streets),
                "Address2": "",
                "Address3": "",
                "City": city,
                "State": state,
                "ZipCode": zip_code,
                "CountyName": county,
                "PhoneNumber": phone_number(rng),
                "HospitalType": choose(rng, hospital_types),
                "HospitalOwner": choose(rng, owners),
                "EmergencyService": choose(rng, ["Yes", "No"]),
            }
        )

    conditions = ["Heart Attack", "Heart Failure", "Pneumonia", "Surgical Infection"]
    measure_codes = [f"scip-inf-{i}" for i in range(1, num_measures + 1)]
    measure_words = word_pool(rng, num_measures, syllables=3)
    measure_info = {
        code: (choose(rng, conditions), f"{measure_words[i]} measure")
        for i, code in enumerate(measure_codes)
    }
    # state average per (state, measure) pair: deterministic per key.
    state_avg: dict[tuple[str, str], str] = {}

    rows = []
    for _ in range(num_rows):
        hospital = hospitals[int(rng.integers(0, num_hospitals))]
        code = choose(rng, measure_codes)
        condition, measure_name = measure_info[code]
        key = (hospital["State"], code)
        if key not in state_avg:
            state_avg[key] = f"{key[0]}_{code}_{int(rng.integers(50, 100))}%"
        rows.append(
            [
                hospital["ProviderNumber"],
                hospital["HospitalName"],
                hospital["Address1"],
                hospital["Address2"],
                hospital["Address3"],
                hospital["City"],
                hospital["State"],
                hospital["ZipCode"],
                hospital["CountyName"],
                hospital["PhoneNumber"],
                hospital["HospitalType"],
                hospital["HospitalOwner"],
                hospital["EmergencyService"],
                condition,
                code,
                measure_name,
                f"{int(rng.integers(1, 100))}%",
                str(int(rng.integers(10, 500))) + " patients",
                state_avg[key],
            ]
        )
    clean = Dataset.from_rows(ATTRIBUTES, rows)

    constraints = [
        functional_dependency("ZipCode", "City"),
        functional_dependency("ZipCode", "State"),
        functional_dependency("ProviderNumber", "HospitalName"),
        functional_dependency("ProviderNumber", "PhoneNumber"),
        functional_dependency("ProviderNumber", "ZipCode"),
        functional_dependency("MeasureCode", "MeasureName"),
        functional_dependency("MeasureCode", "Condition"),
        functional_dependency("HospitalName", "City"),
        functional_dependency("City", "CountyName"),
    ]

    profile = ErrorProfile(
        error_rate=PAPER_ERROR_CELLS / (PAPER_ROWS * len(ATTRIBUTES)),
        typo_fraction=1.0,
        x_style_typos=True,
        # Address2/3 are blank filler columns in the original; 'x' typos on
        # empty strings would make them trivially detectable, so corruption
        # targets the informative columns, as in the benchmark.
        attributes=tuple(a for a in ATTRIBUTES if a not in ("Address2", "Address3")),
    )
    dirty, truth = inject_errors(clean, profile, rng)
    return DatasetBundle("hospital", clean, dirty, truth, constraints)
