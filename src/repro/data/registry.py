"""Dataset registry: load any benchmark bundle by name."""

from __future__ import annotations

from typing import Callable

from repro.data.adult import generate_adult
from repro.data.animal import generate_animal
from repro.data.bundle import DatasetBundle
from repro.data.food import generate_food
from repro.data.hospital import generate_hospital
from repro.data.soccer import generate_soccer

_GENERATORS: dict[str, Callable[..., DatasetBundle]] = {
    "hospital": generate_hospital,
    "food": generate_food,
    "soccer": generate_soccer,
    "adult": generate_adult,
    "animal": generate_animal,
}

#: Names of the five benchmark datasets (Table 1).
DATASET_NAMES = tuple(_GENERATORS)

#: Default scaled-down row counts for offline CPU runs.  The paper's sizes
#: (Table 1) are valid values of ``num_rows``.
DEFAULT_ROWS = {
    "hospital": 1000,
    "food": 2000,
    "soccer": 2000,
    "adult": 2000,
    "animal": 1500,
}


def load_dataset(name: str, num_rows: int | None = None, seed: int = 0) -> DatasetBundle:
    """Generate benchmark bundle ``name`` (see :data:`DATASET_NAMES`)."""
    if name not in _GENERATORS:
        raise ValueError(f"unknown dataset {name!r}; choose from {DATASET_NAMES}")
    rows = num_rows if num_rows is not None else DEFAULT_ROWS[name]
    return _GENERATORS[name](num_rows=rows, seed=seed)
