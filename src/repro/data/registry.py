"""Dataset registry: load any benchmark bundle by name.

Every generator is a registered ``dataset`` component in
:mod:`repro.registry`, so sweep specs and detector tooling resolve datasets
through the same mechanism as methods, profiles, and featurizers — and a
``"module:attr"`` reference loads a user-defined bundle generator (called
as ``attr(num_rows=..., seed=...)`` and returning a
:class:`~repro.data.bundle.DatasetBundle`) with zero repo edits.

.. deprecated::
    The module-level ``_GENERATORS`` dict predates the registry; reading it
    still works but emits a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from pathlib import PurePath

from repro.data.adult import generate_adult
from repro.data.animal import generate_animal
from repro.data.bundle import DatasetBundle
from repro.data.food import generate_food
from repro.data.hospital import generate_hospital
from repro.data.soccer import generate_soccer
from repro.dataset.ground_truth import GroundTruth
from repro.registry import REGISTRY, ComponentError, deprecated_name_map


@dataclass(frozen=True)
class DatasetParams:
    """Typed config of the benchmark generators."""

    num_rows: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_rows is not None and (
            not isinstance(self.num_rows, int) or self.num_rows <= 0
        ):
            raise ValueError(f"num_rows must be a positive integer, got {self.num_rows!r}")
        if not isinstance(self.seed, int):
            raise ValueError(f"seed must be an integer, got {self.seed!r}")


#: Default scaled-down row counts for offline CPU runs.  The paper's sizes
#: (Table 1) are valid values of ``num_rows``.
DEFAULT_ROWS = {
    "hospital": 1000,
    "food": 2000,
    "soccer": 2000,
    "adult": 2000,
    "animal": 1500,
}

_BENCHMARKS = {
    "hospital": (generate_hospital, "zip/city FDs with 'x'-injection typos"),
    "food": (generate_food, "Chicago food inspections shape, mixed channel"),
    "soccer": (generate_soccer, "player/team FDs with a BART typo/swap mix"),
    "adult": (generate_adult, "census shape with a BART typo/swap mix"),
    "animal": (generate_animal, "sensor-reading shape with numeric outliers"),
}


def _generator_factory(name: str, generate):
    def factory(cfg: DatasetParams) -> DatasetBundle:
        rows = cfg.num_rows if cfg.num_rows is not None else DEFAULT_ROWS[name]
        return generate(num_rows=rows, seed=cfg.seed)

    return factory


for _name, (_generate, _doc) in _BENCHMARKS.items():
    REGISTRY.add(
        "dataset", _name, _generator_factory(_name, _generate),
        config=DatasetParams, description=_doc,
    )

#: Names of the five benchmark datasets (Table 1).
DATASET_NAMES = tuple(_BENCHMARKS)


@dataclass(frozen=True)
class ShardedDatasetParams:
    """Typed config of the ``sharded`` dataset kind.

    Unlike the synthetic generators, a sharded bundle is backed by an
    on-disk shard directory (``repro shard convert`` /
    :class:`~repro.dataset.sharded.ShardWriter`): ``num_rows`` cannot
    resize it and ``seed`` has nothing to randomise, but both fields are
    accepted (``None``/``0`` only) so generic callers like
    :func:`load_dataset` can pass their usual arguments.
    """

    dir: str = ""
    name: str | None = None
    num_rows: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.dir:
            raise ValueError(
                "sharded dataset requires a 'dir' pointing at a shard "
                "directory (see `repro shard convert`)"
            )
        if self.num_rows is not None:
            raise ValueError(
                "sharded datasets are fixed-size; num_rows must be None, "
                f"got {self.num_rows!r}"
            )
        if self.seed != 0:
            raise ValueError(
                f"sharded datasets take no seed; got {self.seed!r}"
            )


def _sharded_factory(cfg: ShardedDatasetParams) -> DatasetBundle:
    from repro.dataset.sharded import ShardedDataset

    relation = ShardedDataset(cfg.dir)
    # No clean twin and no truth on an ingested relation: detection-only.
    return DatasetBundle(
        name=cfg.name or PurePath(cfg.dir).name,
        clean=relation,
        dirty=relation,
        truth=GroundTruth({}),
    )


REGISTRY.add(
    "dataset", "sharded", _sharded_factory,
    config=ShardedDatasetParams,
    description="out-of-core shard directory (memory-mapped, detection-only)",
)


def load_dataset(name: str, num_rows: int | None = None, seed: int = 0) -> DatasetBundle:
    """Generate benchmark bundle ``name`` (see :data:`DATASET_NAMES`).

    ``name`` may also be a ``"module:attr"`` reference to a user-defined
    generator, which is called as ``attr(num_rows=..., seed=...)``.
    """
    try:
        bundle = REGISTRY.create(
            "dataset", name, {"num_rows": num_rows, "seed": seed}
        )
    except ComponentError as exc:
        raise ValueError(str(exc)) from exc
    if not isinstance(bundle, DatasetBundle):
        raise ValueError(
            f"dataset {name!r} built {type(bundle).__name__}, expected DatasetBundle"
        )
    return bundle


def _legacy_generator_factory(name: str, generate):
    """Like :func:`_generator_factory`, but tolerates names without a
    ``DEFAULT_ROWS`` entry: ``num_rows=None`` falls back to the generator's
    own default instead of a registry-side one."""

    def factory(cfg: DatasetParams) -> DatasetBundle:
        rows = cfg.num_rows if cfg.num_rows is not None else DEFAULT_ROWS.get(name)
        if rows is None:
            return generate(seed=cfg.seed)
        return generate(num_rows=rows, seed=cfg.seed)

    return factory


def _register_legacy_generator(key: str, generate) -> None:
    """Write-through for the deprecated ``_GENERATORS`` map: an assigned
    generator registers like a built-in, so ``load_dataset`` keeps finding
    it."""
    _BENCHMARKS[key] = (generate, "legacy _GENERATORS registration")
    REGISTRY.add(
        "dataset", key, _legacy_generator_factory(key, generate),
        config=DatasetParams,
        description="legacy _GENERATORS registration", replace=True,
    )


def __getattr__(name: str):
    if name == "_GENERATORS":
        warnings.warn(
            "repro.data.registry._GENERATORS is deprecated; resolve datasets "
            "through repro.registry (kind 'dataset') or load_dataset()",
            DeprecationWarning,
            stacklevel=2,
        )
        return deprecated_name_map(
            "dataset",
            lambda key: _BENCHMARKS[key][0],
            _BENCHMARKS,
            writer=_register_legacy_generator,
        )
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
