"""Soccer benchmark generator.

The original Soccer dataset (200,000 rows × 10 attributes, from Rammelaere
and Geerts [49]) describes players and their teams with BART-injected errors:
76% typos and 24% value swaps (§6.1), 31,296 erroneous cells (≈1.56% of
cells).  This generator reproduces the player/team structure (team → city /
stadium / manager FDs) and that noise profile.
"""

from __future__ import annotations

from repro.constraints.dc import functional_dependency
from repro.data.bundle import DatasetBundle
from repro.data.synth import choose, word_pool
from repro.dataset.table import Dataset
from repro.errors.bart import ErrorProfile, inject_errors
from repro.utils.rng import as_generator

ATTRIBUTES = (
    "Name",
    "Surname",
    "BirthYear",
    "BirthPlace",
    "Position",
    "Team",
    "City",
    "Stadium",
    "Season",
    "Manager",
)


def generate_soccer(num_rows: int = 2000, seed: int = 0) -> DatasetBundle:
    """Generate the Soccer bundle at ``num_rows`` scale."""
    rng = as_generator(seed)
    num_teams = max(num_rows // 80, 8)
    num_players = max(num_rows // 4, 24)

    team_words = word_pool(rng, num_teams)
    cities = word_pool(rng, num_teams)
    stadium_words = word_pool(rng, num_teams)
    managers = [f"{w} {s}" for w, s in zip(word_pool(rng, num_teams), word_pool(rng, num_teams))]
    teams = []
    for i in range(num_teams):
        teams.append(
            {
                "Team": f"{team_words[i]} FC",
                "City": cities[i],
                "Stadium": f"{stadium_words[i]} Stadium",
                "Manager": managers[i],
            }
        )

    first_names = word_pool(rng, max(num_players // 3, 10))
    surnames = word_pool(rng, max(num_players // 2, 10))
    birth_places = word_pool(rng, 30)
    positions = ["Goalkeeper", "Defender", "Midfielder", "Forward"]
    players = []
    used_identities: set[tuple[str, str]] = set()
    while len(players) < num_players:
        # (Name, Surname) is the key of the FD Name,Surname -> BirthYear /
        # BirthPlace, so identities must be unique in the clean relation.
        identity = (choose(rng, first_names), choose(rng, surnames))
        if identity in used_identities:
            continue
        used_identities.add(identity)
        players.append(
            {
                "Name": identity[0],
                "Surname": identity[1],
                "BirthYear": str(int(rng.integers(1975, 2000))),
                "BirthPlace": choose(rng, birth_places),
                "Position": choose(rng, positions),
                "team": teams[int(rng.integers(0, num_teams))],
            }
        )

    seasons = [f"{year}-{year + 1}" for year in range(2008, 2018)]
    rows = []
    for _ in range(num_rows):
        player = players[int(rng.integers(0, num_players))]
        team = player["team"]
        rows.append(
            [
                player["Name"],
                player["Surname"],
                player["BirthYear"],
                player["BirthPlace"],
                player["Position"],
                team["Team"],
                team["City"],
                team["Stadium"],
                choose(rng, seasons),
                team["Manager"],
            ]
        )
    clean = Dataset.from_rows(ATTRIBUTES, rows)

    constraints = [
        functional_dependency("Team", "City"),
        functional_dependency("Team", "Stadium"),
        functional_dependency("Team", "Manager"),
        functional_dependency("Stadium", "Team"),
        functional_dependency(["Name", "Surname"], "BirthYear"),
        functional_dependency(["Name", "Surname"], "BirthPlace"),
    ]

    # Table 1: 31,296 / (200,000 × 10) ≈ 1.56% of cells; 76% typos, 24% swaps.
    profile = ErrorProfile(error_rate=31296 / 2_000_000, typo_fraction=0.76)
    dirty, truth = inject_errors(clean, profile, rng)
    return DatasetBundle("soccer", clean, dirty, truth, constraints)
