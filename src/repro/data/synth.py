"""Shared vocabulary synthesis for the dataset generators.

Produces pronounceable names, street addresses, codes, and numeric strings
deterministically from a seed, so every generated dataset is reproducible
and its attribute vocabularies have realistic cardinality and format
structure (which the format and embedding models then learn).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator

_ONSETS = ["b", "c", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p", "r", "s", "t", "v", "w", "br", "ch", "cl", "st", "tr", "gr", "sh"]
_VOWELS = ["a", "e", "i", "o", "u", "ai", "ea", "ou", "io"]
_CODAS = ["", "n", "r", "s", "l", "t", "m", "nd", "rt", "ck", "th"]


def pronounceable_word(rng: np.random.Generator, syllables: int = 2, capitalize: bool = True) -> str:
    """A random pronounceable word of ``syllables`` syllables."""
    parts = []
    for _ in range(max(1, syllables)):
        onset = _ONSETS[int(rng.integers(0, len(_ONSETS)))]
        vowel = _VOWELS[int(rng.integers(0, len(_VOWELS)))]
        coda = _CODAS[int(rng.integers(0, len(_CODAS)))]
        parts.append(onset + vowel + coda)
    word = "".join(parts)
    return word.capitalize() if capitalize else word


def word_pool(rng: np.random.Generator, count: int, syllables: int = 2) -> list[str]:
    """``count`` distinct pronounceable words."""
    pool: dict[str, None] = {}
    attempts = 0
    while len(pool) < count and attempts < count * 50:
        pool.setdefault(pronounceable_word(rng, syllables), None)
        attempts += 1
    if len(pool) < count:
        # Disambiguate with numeric suffixes if the syllable space is tight.
        base = list(pool)
        i = 0
        while len(pool) < count:
            pool.setdefault(f"{base[i % len(base)]}{i}", None)
            i += 1
    return list(pool)


def digit_string(rng: np.random.Generator, length: int) -> str:
    """A fixed-length digit string (leading zeros allowed)."""
    return "".join(str(int(d)) for d in rng.integers(0, 10, size=length))


def digit_pool(rng: np.random.Generator, count: int, length: int) -> list[str]:
    """``count`` distinct fixed-length digit strings."""
    pool: dict[str, None] = {}
    while len(pool) < count:
        pool.setdefault(digit_string(rng, length), None)
    return list(pool)


def code_pool(rng: np.random.Generator, count: int, prefix: str, width: int = 4) -> list[str]:
    """Codes like ``prefix-0042`` (zero-padded, sortable)."""
    return [f"{prefix}-{i:0{width}d}" for i in range(count)]


def phone_number(rng: np.random.Generator) -> str:
    return f"{digit_string(rng, 3)}-{digit_string(rng, 3)}-{digit_string(rng, 4)}"


def street_address(rng: np.random.Generator, street_names: list[str]) -> str:
    number = int(rng.integers(1, 9999))
    street = street_names[int(rng.integers(0, len(street_names)))]
    suffix = ["St", "Ave", "Blvd", "Rd"][int(rng.integers(0, 4))]
    return f"{number} {street} {suffix}"


def date_string(rng: np.random.Generator, year_lo: int = 2005, year_hi: int = 2019) -> str:
    year = int(rng.integers(year_lo, year_hi + 1))
    month = int(rng.integers(1, 13))
    day = int(rng.integers(1, 29))
    return f"{year:04d}-{month:02d}-{day:02d}"


def choose(rng: np.random.Generator, pool: list[str]) -> str:
    return pool[int(rng.integers(0, len(pool)))]


def zipf_choice(rng: np.random.Generator, pool: list[str], exponent: float = 1.2) -> str:
    """Draw from ``pool`` with a Zipf-like skew (real vocabularies are skewed)."""
    ranks = np.arange(1, len(pool) + 1, dtype=np.float64)
    weights = ranks**-exponent
    weights /= weights.sum()
    return pool[int(rng.choice(len(pool), p=weights))]
