"""Relational dataset substrate.

HoloDetect operates on cell-level observations of a relation.  This package
provides the in-memory relation (:class:`Dataset`), cell addressing
(:class:`Cell`), ground-truth bookkeeping (:class:`GroundTruth`), and the
labelled training set abstraction (:class:`TrainingSet`) that the paper calls
``T = {(c, v_c, v*_c)}``.
"""

from repro.dataset.table import Cell, Dataset, DatasetDelta, Schema
from repro.dataset.ground_truth import GroundTruth
from repro.dataset.training import LabeledCell, TrainingSet
from repro.dataset.loader import read_csv, write_csv

__all__ = [
    "Cell",
    "Dataset",
    "DatasetDelta",
    "Schema",
    "GroundTruth",
    "LabeledCell",
    "TrainingSet",
    "read_csv",
    "write_csv",
]
