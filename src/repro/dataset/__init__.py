"""Relational dataset substrate.

HoloDetect operates on cell-level observations of a relation.  This package
provides the relation protocol (:class:`Relation`) with two backings — the
in-memory :class:`Dataset` and the out-of-core :class:`ShardedDataset` —
cell addressing (:class:`Cell`), ground-truth bookkeeping
(:class:`GroundTruth`), and the labelled training set abstraction
(:class:`TrainingSet`) that the paper calls ``T = {(c, v_c, v*_c)}``.
"""

from repro.dataset.relation import Relation, ShardSpan
from repro.dataset.table import Cell, Dataset, DatasetDelta, Schema
from repro.dataset.sharded import ShardedDataset, ShardWriter
from repro.dataset.ground_truth import GroundTruth
from repro.dataset.training import LabeledCell, TrainingSet
from repro.dataset.loader import open_relation, read_csv, write_csv

__all__ = [
    "Cell",
    "Dataset",
    "DatasetDelta",
    "Relation",
    "Schema",
    "ShardSpan",
    "ShardedDataset",
    "ShardWriter",
    "GroundTruth",
    "LabeledCell",
    "TrainingSet",
    "open_relation",
    "read_csv",
    "write_csv",
]
