"""Ground truth: the unknown true value ``v*_c`` for every cell.

In our synthetic benchmarks ground truth is exact (we generated the clean
relation before injecting errors); the paper's real datasets came with
manually curated truth of the same shape.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.dataset.table import Cell, Dataset


class GroundTruth:
    """Mapping from cells to their true values, with error queries.

    A cell is *erroneous* when its observed value in the dirty dataset differs
    from its true value here (``v_c != v*_c``, §3.1).
    """

    def __init__(self, true_values: Mapping[Cell, str]):
        self._true: dict[Cell, str] = dict(true_values)

    @classmethod
    def from_clean_dataset(cls, clean: Dataset) -> "GroundTruth":
        """Every cell of a clean relation is its own truth."""
        return cls({cell: clean.value(cell) for cell in clean.cells()})

    def __len__(self) -> int:
        return len(self._true)

    def __contains__(self, cell: Cell) -> bool:
        return cell in self._true

    def true_value(self, cell: Cell) -> str:
        return self._true[cell]

    def is_error(self, cell: Cell, dirty: Dataset) -> bool:
        """Whether the observed value disagrees with the truth."""
        return dirty.value(cell) != self._true[cell]

    def error_cells(self, dirty: Dataset) -> list[Cell]:
        """All erroneous cells of ``dirty`` under this truth."""
        return [c for c in self._true if dirty.value(c) != self._true[c]]

    def label(self, cell: Cell, dirty: Dataset) -> int:
        """Paper convention: ``-1`` for error, ``+1`` for correct."""
        return -1 if self.is_error(cell, dirty) else 1

    def cells(self) -> Iterator[Cell]:
        return iter(self._true)

    def restrict(self, cells: Iterable[Cell]) -> "GroundTruth":
        """Ground truth over a subset of cells (e.g. a sampled label budget)."""
        return GroundTruth({c: self._true[c] for c in cells})

    def error_rate(self, dirty: Dataset) -> float:
        """Fraction of covered cells that are erroneous."""
        if not self._true:
            return 0.0
        return len(self.error_cells(dirty)) / len(self._true)
