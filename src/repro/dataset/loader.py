"""CSV persistence for :class:`~repro.dataset.table.Dataset`.

Kept deliberately small: the benchmark datasets in this repo are generated
programmatically, but downstream users load their own relations from CSV.
:func:`open_relation` additionally accepts a shard directory
(:mod:`repro.dataset.sharded`), so CLI entry points take either form of
input with one argument.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.dataset.relation import Relation
from repro.dataset.table import Dataset


def read_csv(path: str | Path, missing_token: str = "") -> Dataset:
    """Load a CSV with a header row into a :class:`Dataset`.

    Empty fields become ``missing_token`` (HoloDetect treats missing values as
    just another string value; the paper's datasets use tokens like ``<NaN>``).
    """
    path = Path(path)
    with path.open(newline="", encoding="utf-8") as f:
        reader = csv.reader(f)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path} is empty — need a header row") from None
        rows = [[field if field != "" else missing_token for field in row] for row in reader]
    return Dataset.from_rows(header, rows)


def write_csv(dataset: Dataset, path: str | Path) -> None:
    """Write a dataset (with header) to CSV."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as f:
        writer = csv.writer(f)
        writer.writerow(dataset.attributes)
        for row in range(dataset.num_rows):
            writer.writerow(dataset.row_values(row))


def open_relation(path: str | Path, missing_token: str = "") -> Relation:
    """Open either a CSV file or a shard directory as a relation.

    A directory containing ``manifest.json`` opens as an out-of-core
    :class:`~repro.dataset.sharded.ShardedDataset`; anything else is read as
    a headered CSV into an in-memory :class:`Dataset`.
    """
    path = Path(path)
    if path.is_dir():
        from repro.dataset.sharded import ShardedDataset

        return ShardedDataset(path)
    return read_csv(path, missing_token=missing_token)
