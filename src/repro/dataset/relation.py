"""Abstract relation protocol shared by every dataset backing.

The paper's data model (§3.1): a dataset ``D`` is a set of tuples over
attributes ``A1..AN``; a *cell* is the value of one attribute in one tuple.
All values are strings (error detection treats cell contents as opaque text).

This module holds what is common to every backing — cell addressing
(:class:`Cell`), the schema, mutation deltas (:class:`DatasetDelta`), the
fingerprint recipes, and the :class:`Relation` base class with the derived
read-side API.  Two backings implement it:

- :class:`~repro.dataset.table.Dataset` — the in-memory columnar relation
  with in-place mutation and column-scoped versioning;
- :class:`~repro.dataset.sharded.ShardedDataset` — an immutable, row-sharded
  out-of-core backing whose columns live in memory-mapped per-shard chunks.

The fingerprint recipes live here because they are a *contract*: both
backings must produce bit-identical column and relation fingerprints for the
same content, which is what keeps every feature-cache key and fitted-artifact
key independent of the backing (see ``docs/architecture.md``,
"Sharded & out-of-core datasets").

Shard addressing is part of the read-side protocol: every relation exposes
:meth:`Relation.shard_spans` (the in-memory backing reports one span covering
the whole relation), so streaming fit paths iterate shards uniformly without
type-switching on the backing.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence


@dataclass(frozen=True, slots=True)
class Cell:
    """Address of a single cell: row index plus attribute name."""

    row: int
    attr: str


@dataclass(frozen=True)
class Schema:
    """Ordered attribute list of a relation."""

    attributes: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(set(self.attributes)) != len(self.attributes):
            raise ValueError("duplicate attribute names in schema")
        if not self.attributes:
            raise ValueError("schema must have at least one attribute")

    def __contains__(self, attr: str) -> bool:
        return attr in self.attributes

    def __len__(self) -> int:
        return len(self.attributes)

    def index(self, attr: str) -> int:
        """Position of ``attr`` in the schema (raises ``ValueError`` if absent)."""
        return self.attributes.index(attr)


@dataclass(frozen=True)
class DatasetDelta:
    """Structured description of one batch mutation of a :class:`Dataset`.

    ``cells`` lists the pre-existing cells whose value actually changed
    (no-op edits — writing the value already present — are excluded, because
    they cannot invalidate anything).  ``columns`` are the touched attributes
    in schema order; ``rows`` the touched row indices in ascending order,
    including any appended rows, which are additionally listed in
    ``appended``.
    """

    cells: tuple[Cell, ...] = ()
    columns: tuple[str, ...] = ()
    rows: tuple[int, ...] = ()
    appended: tuple[int, ...] = ()

    @property
    def is_empty(self) -> bool:
        """True when the mutation changed nothing."""
        return not self.cells and not self.appended

    def merge(self, other: "DatasetDelta") -> "DatasetDelta":
        """Combine two deltas of the *same* dataset (self first, then other)."""
        columns = dict.fromkeys(self.columns)
        columns.update(dict.fromkeys(other.columns))
        return DatasetDelta(
            cells=self.cells + other.cells,
            columns=tuple(columns),
            rows=tuple(sorted({*self.rows, *other.rows})),
            appended=tuple(sorted({*self.appended, *other.appended})),
        )

    def __repr__(self) -> str:
        return (
            f"DatasetDelta({len(self.cells)} cells, {len(self.columns)} columns, "
            f"{len(self.rows)} rows, {len(self.appended)} appended)"
        )


@dataclass(frozen=True)
class ShardSpan:
    """One row shard of a relation: the half-open row range ``[start, stop)``."""

    index: int
    start: int
    stop: int

    @property
    def rows(self) -> int:
        return self.stop - self.start


# --------------------------------------------------------------------- #
# Fingerprint recipes (the cross-backing contract)
# --------------------------------------------------------------------- #


def column_hasher():
    """A fresh streaming column hasher (see :func:`hash_column`)."""
    return hashlib.blake2b(digest_size=16)


def update_column_hash(hasher, values: Iterable[str]) -> None:
    """Feed values into a column hasher, in row order.

    Feeding a column shard-by-shard into one hasher yields exactly the
    whole-column digest — this is what makes per-shard ingest produce
    fingerprints bit-identical to the in-memory backing.
    """
    for value in values:
        hasher.update(value.encode("utf-8"))
        hasher.update(b"\x1e")


def hash_column(values: Sequence[str]) -> str:
    """Content hash of one column (the per-column fingerprint recipe)."""
    h = column_hasher()
    update_column_hash(h, values)
    return h.hexdigest()


def compose_fingerprint(
    attributes: Sequence[str], column_fingerprints: Mapping[str, str]
) -> str:
    """Relation fingerprint from per-column fingerprints, in schema order.

    Also used for per-shard fingerprints (composing the shard's per-column
    digests), so the single-shard case degenerates to the relation
    fingerprint — the scope under which whole-state artifacts are keyed.
    """
    h = hashlib.blake2b(digest_size=16)
    for attr in attributes:
        h.update(attr.encode("utf-8"))
        h.update(b"\x1f")
        h.update(column_fingerprints[attr].encode("ascii"))
        h.update(b"\x1d")
    return h.hexdigest()


class Relation:
    """Read-side API of a relation, shared by all backings.

    Backings implement the primitives — :attr:`num_rows`, :meth:`column`,
    :meth:`column_fingerprint` — and inherit the derived accessors,
    statistics, and fingerprint composition.  Mutation is *not* part of this
    protocol: the in-memory :class:`~repro.dataset.table.Dataset` adds it,
    the sharded backing rejects it.
    """

    schema: Schema

    # -- primitives every backing implements --------------------------- #

    @property
    def num_rows(self) -> int:
        raise NotImplementedError

    def column(self, attr: str) -> Sequence[str]:
        """The full value sequence of one attribute (do not mutate).

        In-memory backings return the backing list; out-of-core backings
        return a lazy view — index and iterate it, but avoid materialising
        it wholesale on large relations (use :meth:`column_chunk`).
        """
        raise NotImplementedError

    def column_fingerprint(self, attr: str) -> str:
        """Stable content hash of one column (see :func:`hash_column`)."""
        raise NotImplementedError

    # -- derived access ------------------------------------------------ #

    @property
    def attributes(self) -> tuple[str, ...]:
        return self.schema.attributes

    @property
    def num_cells(self) -> int:
        return self.num_rows * len(self.schema)

    @property
    def version(self) -> int:
        """Monotonic mutation counter; immutable backings stay at 0."""
        return 0

    def __len__(self) -> int:
        return self.num_rows

    def value(self, cell: Cell) -> str:
        """Observed value ``v_c`` of a cell."""
        return self.column(cell.attr)[cell.row]

    def __getitem__(self, cell: Cell) -> str:
        return self.value(cell)

    def column_chunk(self, attr: str, start: int, stop: int) -> Sequence[str]:
        """The values of one attribute for rows ``[start, stop)``.

        The streaming unit of shard-wise fit paths: backings return the
        cheapest materialisation they have (the in-memory backing returns
        the column itself for the full range; the sharded backing decodes
        only the touched shards).  Treat as read-only.
        """
        column = self.column(attr)
        if start == 0 and stop == self.num_rows:
            return column
        return column[start:stop]

    # -- shard addressing ---------------------------------------------- #

    def shard_spans(self) -> tuple[ShardSpan, ...]:
        """The row shards of this relation, in row order.

        The in-memory backing is a single shard spanning every row, so
        shard-streaming consumers handle both backings with one code path.
        An empty relation has no spans.
        """
        if self.num_rows == 0:
            return ()
        return (ShardSpan(0, 0, self.num_rows),)

    def shard_column_digest(self, index: int, attr: str) -> str:
        """Content hash of one column restricted to one shard's rows.

        For a single-shard relation this *is* the column fingerprint; the
        sharded backing reads it from its manifest.  Per-shard digests key
        mergeable fit partials (see :func:`repro.artifacts.keys.shard_partial_key`).
        """
        spans = self.shard_spans()
        if not 0 <= index < len(spans):
            raise IndexError(f"shard {index} out of range")
        span = spans[index]
        if span.start == 0 and span.stop == self.num_rows:
            return self.column_fingerprint(attr)
        return hash_column(self.column_chunk(attr, span.start, span.stop))

    def shard_fingerprint(self, index: int) -> str:
        """Content hash of one shard across all columns (schema order).

        Composed exactly like the relation fingerprint, so a single-shard
        relation's shard fingerprint equals its relation fingerprint — the
        scope of whole-state artifacts.
        """
        return compose_fingerprint(
            self.schema.attributes,
            {a: self.shard_column_digest(index, a) for a in self.schema.attributes},
        )

    # -- fingerprints --------------------------------------------------- #

    def fingerprint(self) -> str:
        """Stable content hash of the relation (schema order + all values)."""
        return compose_fingerprint(
            self.schema.attributes,
            {a: self.column_fingerprint(a) for a in self.schema.attributes},
        )

    def rows_fingerprint(self, rows: Iterable[int]) -> str:
        """Content hash of the given rows across all attributes.

        Keys tuple-scoped feature blocks: a block depending only on some
        rows' contents stays valid as long as those rows are untouched,
        whatever happens elsewhere in the relation.
        """
        h = hashlib.blake2b(digest_size=16)
        columns = [self.column(a) for a in self.schema.attributes]
        for row in sorted(set(rows)):
            h.update(str(row).encode("ascii"))
            h.update(b"\x1f")
            for column in columns:
                h.update(column[row].encode("utf-8"))
                h.update(b"\x1e")
            h.update(b"\x1d")
        return h.hexdigest()

    # -- row / cell access ---------------------------------------------- #

    def row_dict(self, row: int) -> dict[str, str]:
        """One tuple as an ``{attr: value}`` mapping."""
        if not 0 <= row < self.num_rows:
            raise IndexError(f"row {row} out of range")
        return {a: self.column(a)[row] for a in self.schema.attributes}

    def row_values(self, row: int) -> list[str]:
        """One tuple as a value list in schema order."""
        return [self.column(a)[row] for a in self.schema.attributes]

    def cells(self) -> Iterator[Cell]:
        """Iterate over every cell, attribute-major then row order."""
        for attr in self.schema.attributes:
            for row in range(self.num_rows):
                yield Cell(row, attr)

    def cells_of_row(self, row: int) -> list[Cell]:
        return [Cell(row, attr) for attr in self.schema.attributes]

    # -- statistics used throughout featurisation ------------------------ #

    def value_counts(self, attr: str) -> dict[str, int]:
        """Frequency of each distinct value within one attribute."""
        return dict(Counter(self.column(attr)))

    def domain(self, attr: str) -> list[str]:
        """Distinct values of an attribute, in first-seen order."""
        return list(dict.fromkeys(self.column(attr)))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        if self.schema != other.schema or self.num_rows != other.num_rows:
            return False
        # Compare chunk-wise so out-of-core backings never materialise a
        # whole column; chunk size matches the default shard granularity.
        step = 4096
        for attr in self.schema.attributes:
            for start in range(0, self.num_rows, step):
                stop = min(start + step, self.num_rows)
                if list(self.column_chunk(attr, start, stop)) != list(
                    other.column_chunk(attr, start, stop)
                ):
                    return False
        return True

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.num_rows} rows x {len(self.schema)} attrs)"
