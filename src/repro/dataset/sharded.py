"""Out-of-core, row-sharded dataset backing (``repro.shards/v1``).

A sharded dataset is a directory::

    <dir>/manifest.json            # schema, shard spans, digests, fingerprints
    <dir>/shards/shard-00000/c0.npy  # one fixed-width unicode array per
    <dir>/shards/shard-00000/c1.npy  # (shard, column)
    ...

Columns are stored as per-shard ``.npy`` arrays and opened with
``np.load(..., mmap_mode="r")``, so reading a shard touches only its pages
and the OS can reclaim them under pressure.  Plain ``.npy`` (not a zipped
``.npz``) is deliberate: numpy cannot memory-map members of a zip archive,
and mapping — not decompressing into anonymous memory — is the whole point.

**Fingerprint contract.**  Ingest feeds every value through the exact
per-column hash recipe of the in-memory backing
(:func:`repro.dataset.relation.hash_column`), one streaming hasher per
column across shards, so ``column_fingerprint``/``fingerprint`` are
bit-identical to an in-memory :class:`~repro.dataset.table.Dataset` holding
the same content.  Every feature-cache key and fitted-artifact key is
therefore independent of the backing: a model fitted against the in-memory
relation is served warm against its sharded twin, and vice versa.
Per-shard digests (the same recipe over each shard's rows) are recorded
alongside and key mergeable fit partials
(:func:`repro.artifacts.keys.shard_partial_key`).

The backing is immutable: mutators raise, ``version`` stays 0, and
``copy()`` returns ``self``.  Edit workflows convert to the in-memory
backing first (``repro shard`` CLI, :func:`to_dataset`).

**Fault handling.**  Chunk reads pass through the ``shard.read`` fault
point and retry transient faults (``EIO``-on-read, ``ESTALE``, ...)
through a :class:`~repro.faults.retry.RetryPolicy`.  A shard whose read
faults persist through the budget is **quarantined**: the structured
:class:`ShardQuarantinedError` (shard index, path, errno) is raised, and
every later read of that shard fails fast with the same error — no
retry storm against a dead disk region.  ``clear_quarantine()`` re-admits
shards once the operator believes the fault cleared.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
from bisect import bisect_right
from collections import Counter, OrderedDict
from pathlib import Path
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.dataset.relation import (
    Relation,
    Schema,
    ShardSpan,
    column_hasher,
    compose_fingerprint,
)
from repro.faults.inject import trip
from repro.faults.retry import RetryPolicy, resolve_policy


class ShardQuarantinedError(RuntimeError):
    """A shard's reads fault persistently; it is quarantined.

    Carries the shard index, the failing path and the last errno so
    callers (and operators reading the traceback) know exactly which
    region of the dataset is unreadable — instead of a bare ``OSError``
    bubbling out of numpy internals.
    """

    def __init__(self, shard: int, path: Path, errno_value: int | None, cause: str):
        super().__init__(
            f"shard {shard} quarantined after persistent read faults "
            f"(path={path}, errno={errno_value}): {cause}"
        )
        self.shard = shard
        self.path = path
        self.errno = errno_value

#: Manifest format tag; bump when the layout changes meaning.
SHARD_SCHEMA = "repro.shards/v1"

#: Default rows per shard — small enough that one shard's columns decode in
#: a few hundred KB, large enough that manifest overhead is negligible.
DEFAULT_SHARD_ROWS = 4096

_MANIFEST = "manifest.json"


class ShardWriter:
    """Streaming ingest: append rows, flush fixed-size shards, emit manifest.

    Feeds every value through both the whole-column hasher (yielding
    fingerprints bit-identical to the in-memory backing) and a per-shard
    hasher (yielding the partial-keying digests), and accumulates an
    estimate of what the relation would occupy as an in-memory ``Dataset``
    (``inmemory_bytes`` in the manifest — the bound the out-of-core
    benchmark gates peak RSS against).
    """

    def __init__(
        self,
        directory: str | Path,
        attributes: Sequence[str],
        shard_rows: int = DEFAULT_SHARD_ROWS,
        force: bool = False,
    ):
        if shard_rows < 1:
            raise ValueError(f"shard_rows must be positive, got {shard_rows}")
        self.schema = Schema(tuple(attributes))
        self.directory = Path(directory)
        self.shard_rows = int(shard_rows)
        manifest = self.directory / _MANIFEST
        if manifest.exists() and not force:
            raise FileExistsError(
                f"{self.directory} already holds a sharded dataset "
                "(pass force=True / --force to overwrite)"
            )
        (self.directory / "shards").mkdir(parents=True, exist_ok=True)
        self._column_hashers = {a: column_hasher() for a in self.schema.attributes}
        self._buffer: list[list[str]] = [[] for _ in self.schema.attributes]
        self._shards: list[dict] = []
        self._rows = 0
        self._inmemory_bytes = 0
        self._closed = False

    def append_row(self, row: Sequence[str]) -> None:
        if self._closed:
            raise RuntimeError("writer already closed")
        if len(row) != len(self.schema.attributes):
            raise ValueError("row arity does not match schema")
        for buffer, value in zip(self._buffer, row):
            buffer.append(str(value))
        self._rows += 1
        if len(self._buffer[0]) >= self.shard_rows:
            self._flush_shard()

    def append_rows(self, rows: Iterable[Sequence[str]]) -> None:
        for row in rows:
            self.append_row(row)

    def _flush_shard(self) -> None:
        rows = len(self._buffer[0])
        if not rows:
            return
        index = len(self._shards)
        name = f"shard-{index:05d}"
        shard_dir = self.directory / "shards" / name
        shard_dir.mkdir(parents=True, exist_ok=True)
        digests: list[str] = []
        for i, attr in enumerate(self.schema.attributes):
            values = self._buffer[i]
            shard_hash = column_hasher()
            column_hash = self._column_hashers[attr]
            for value in values:
                encoded = value.encode("utf-8")
                shard_hash.update(encoded)
                shard_hash.update(b"\x1e")
                column_hash.update(encoded)
                column_hash.update(b"\x1e")
                # What this value would cost inside an in-memory Dataset:
                # the str object plus its list slot.
                self._inmemory_bytes += sys.getsizeof(value) + 8
            digests.append(shard_hash.hexdigest())
            np.save(shard_dir / f"c{i}.npy", np.array(values, dtype=str))
        self._shards.append(
            {
                "dir": name,
                "start": self._rows - rows,
                "rows": rows,
                "digests": digests,
            }
        )
        self._buffer = [[] for _ in self.schema.attributes]

    def close(self) -> dict:
        """Flush the trailing shard and atomically write the manifest."""
        if self._closed:
            raise RuntimeError("writer already closed")
        self._flush_shard()
        self._closed = True
        column_fingerprints = {
            a: h.hexdigest() for a, h in self._column_hashers.items()
        }
        manifest = {
            "schema": SHARD_SCHEMA,
            "attributes": list(self.schema.attributes),
            "num_rows": self._rows,
            "shard_rows": self.shard_rows,
            "shards": self._shards,
            "column_fingerprints": column_fingerprints,
            "fingerprint": compose_fingerprint(
                self.schema.attributes, column_fingerprints
            ),
            "inmemory_bytes": self._inmemory_bytes,
        }
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".manifest")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                json.dump(manifest, f, indent=1)
            os.replace(tmp, self.directory / _MANIFEST)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return manifest


class ShardColumnView(Sequence[str]):
    """Lazy, read-only view of one column across shards.

    Indexing locates the owning shard by bisection; iteration streams shard
    by shard, so ``for v in relation.column(a)`` never holds more than one
    shard's array resident.
    """

    __slots__ = ("_dataset", "_attr", "_col")

    def __init__(self, dataset: "ShardedDataset", attr: str):
        self._dataset = dataset
        self._attr = attr
        self._col = dataset.schema.index(attr)

    def __len__(self) -> int:
        return self._dataset.num_rows

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(len(self))
            if step == 1:
                return self._dataset.column_chunk(self._attr, start, stop)
            return [self[i] for i in range(start, stop, step)]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(f"row {index} out of range")
        shard, local = self._dataset._locate(index)
        return self._dataset._array(shard, self._col)[local]

    def __iter__(self) -> Iterator[str]:
        for span in self._dataset.shard_spans():
            yield from self._dataset._array(span.index, self._col)

    def __repr__(self) -> str:
        return f"ShardColumnView({self._attr!r}, {len(self)} rows)"


class ShardedDataset(Relation):
    """Immutable out-of-core relation backed by a shard directory.

    ``max_open_arrays`` bounds how many (shard, column) arrays stay open at
    once (a small LRU) — the knob that keeps resident pages proportional to
    the streaming window, not the relation.
    """

    def __init__(
        self,
        directory: str | Path,
        max_open_arrays: int = 64,
        retry_policy: RetryPolicy | None = None,
    ):
        self.directory = Path(directory)
        manifest_path = self.directory / _MANIFEST
        if not manifest_path.exists():
            raise FileNotFoundError(
                f"{self.directory} has no {_MANIFEST} — not a sharded dataset"
            )
        with manifest_path.open(encoding="utf-8") as f:
            manifest = json.load(f)
        if manifest.get("schema") != SHARD_SCHEMA:
            raise ValueError(
                f"unsupported shard manifest schema {manifest.get('schema')!r} "
                f"(expected {SHARD_SCHEMA!r})"
            )
        self.manifest = manifest
        self.schema = Schema(tuple(manifest["attributes"]))
        self._num_rows = int(manifest["num_rows"])
        self._shards = manifest["shards"]
        self._starts = [int(s["start"]) for s in self._shards]
        self._column_fps: dict[str, str] = dict(manifest["column_fingerprints"])
        self._fingerprint: str = manifest["fingerprint"]
        if max_open_arrays < 1:
            raise ValueError("max_open_arrays must be positive")
        self._max_open = max_open_arrays
        self._open: OrderedDict[tuple[int, int], np.ndarray] = OrderedDict()
        # None = resolve the process-ambient default at each use.
        self._retry_policy = retry_policy
        self._quarantined: dict[int, ShardQuarantinedError] = {}

    @property
    def retry_policy(self) -> RetryPolicy:
        """The policy shard reads retry through (ambient default if unset)."""
        return resolve_policy(self._retry_policy)

    @property
    def quarantined(self) -> dict[int, ShardQuarantinedError]:
        """Quarantined shards: ``{shard index: the error that sealed it}``."""
        return dict(self._quarantined)

    def clear_quarantine(self) -> list[int]:
        """Re-admit all quarantined shards; returns their indices."""
        cleared = sorted(self._quarantined)
        self._quarantined.clear()
        return cleared

    # ------------------------------------------------------------------ #
    # Construction / conversion
    # ------------------------------------------------------------------ #

    @classmethod
    def convert(
        cls,
        relation: Relation,
        directory: str | Path,
        shard_rows: int = DEFAULT_SHARD_ROWS,
        force: bool = False,
    ) -> "ShardedDataset":
        """Materialise any relation (typically an in-memory ``Dataset``) as
        a shard directory and open it."""
        writer = ShardWriter(directory, relation.attributes, shard_rows, force=force)
        columns = [relation.column(a) for a in relation.attributes]
        for row in range(relation.num_rows):
            writer.append_row([col[row] for col in columns])
        writer.close()
        return cls(directory)

    @classmethod
    def from_csv(
        cls,
        csv_path: str | Path,
        directory: str | Path,
        shard_rows: int = DEFAULT_SHARD_ROWS,
        missing_token: str = "",
        force: bool = False,
    ) -> "ShardedDataset":
        """Stream a headered CSV into a shard directory without ever holding
        the relation in memory (same missing-value convention as
        :func:`repro.dataset.loader.read_csv`)."""
        import csv as _csv

        csv_path = Path(csv_path)
        with csv_path.open(newline="", encoding="utf-8") as f:
            reader = _csv.reader(f)
            try:
                header = next(reader)
            except StopIteration:
                raise ValueError(f"{csv_path} is empty — need a header row") from None
            writer = ShardWriter(directory, header, shard_rows, force=force)
            for row in reader:
                writer.append_row(
                    [field if field != "" else missing_token for field in row]
                )
            writer.close()
        return cls(directory)

    def to_dataset(self):
        """Materialise as a mutable in-memory :class:`Dataset` (small
        relations only — this is the explicit opt-out of out-of-core)."""
        from repro.dataset.table import Dataset

        return Dataset(
            self.schema,
            {a: [str(v) for v in self.column(a)] for a in self.schema.attributes},
        )

    def copy(self) -> "ShardedDataset":
        """Immutable — the copy is the dataset itself."""
        return self

    # ------------------------------------------------------------------ #
    # Relation primitives
    # ------------------------------------------------------------------ #

    @property
    def num_rows(self) -> int:
        return self._num_rows

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    def column(self, attr: str) -> ShardColumnView:
        if attr not in self.schema:
            raise KeyError(f"unknown attribute {attr!r}")
        return ShardColumnView(self, attr)

    def column_fingerprint(self, attr: str) -> str:
        return self._column_fps[attr]

    def fingerprint(self) -> str:
        return self._fingerprint

    def column_chunk(self, attr: str, start: int, stop: int) -> list[str]:
        if not (0 <= start <= stop <= self._num_rows):
            raise IndexError(f"chunk [{start}, {stop}) out of range")
        col = self.schema.index(attr)
        out: list[str] = []
        row = start
        while row < stop:
            shard, local = self._locate(row)
            take = min(stop - row, self._shards[shard]["rows"] - local)
            out.extend(self._array(shard, col)[local : local + take])
            row += take
        return out

    def value(self, cell) -> str:
        if not 0 <= cell.row < self._num_rows:
            raise IndexError(f"row {cell.row} out of range")
        shard, local = self._locate(cell.row)
        return self._array(shard, self.schema.index(cell.attr))[local]

    # ------------------------------------------------------------------ #
    # Shard addressing
    # ------------------------------------------------------------------ #

    def shard_spans(self) -> tuple[ShardSpan, ...]:
        return tuple(
            ShardSpan(i, int(s["start"]), int(s["start"]) + int(s["rows"]))
            for i, s in enumerate(self._shards)
        )

    def shard_column_digest(self, index: int, attr: str) -> str:
        if not 0 <= index < len(self._shards):
            raise IndexError(f"shard {index} out of range")
        return self._shards[index]["digests"][self.schema.index(attr)]

    @property
    def inmemory_bytes(self) -> int:
        """Ingest-time estimate of the in-memory ``Dataset`` footprint."""
        return int(self.manifest.get("inmemory_bytes", 0))

    def _locate(self, row: int) -> tuple[int, int]:
        shard = bisect_right(self._starts, row) - 1
        return shard, row - self._starts[shard]

    def _array(self, shard: int, col: int) -> np.ndarray:
        key = (shard, col)
        arr = self._open.get(key)
        if arr is not None:
            self._open.move_to_end(key)
            return arr
        sealed = self._quarantined.get(shard)
        if sealed is not None:
            raise sealed  # fail fast: no retry storm against a dead shard
        path = self.directory / "shards" / self._shards[shard]["dir"] / f"c{col}.npy"

        def load() -> np.ndarray:
            trip("shard.read")
            return np.load(path, mmap_mode="r")

        try:
            arr = self.retry_policy.call(load, point="shard.read", op="read")
        except FileNotFoundError:
            raise  # a missing shard file is a broken dataset, not a fault
        except OSError as exc:
            error = ShardQuarantinedError(
                shard, path, getattr(exc, "errno", None), str(exc)
            )
            self._quarantined[shard] = error
            raise error from exc
        self._open[key] = arr
        while len(self._open) > self._max_open:
            self._open.popitem(last=False)
        return arr

    # ------------------------------------------------------------------ #
    # Streaming statistics (never materialise a whole column)
    # ------------------------------------------------------------------ #

    def value_counts(self, attr: str) -> dict[str, int]:
        col = self.schema.index(attr)
        counts: Counter[str] = Counter()
        for span in self.shard_spans():
            counts.update(map(str, self._array(span.index, col)))
        return dict(counts)

    def domain(self, attr: str) -> list[str]:
        col = self.schema.index(attr)
        seen: dict[str, None] = {}
        for span in self.shard_spans():
            seen.update(dict.fromkeys(map(str, self._array(span.index, col))))
        return list(seen)

    # ------------------------------------------------------------------ #
    # Integrity
    # ------------------------------------------------------------------ #

    def verify(self) -> None:
        """Recompute every digest from the shard files and compare with the
        manifest; raises ``ValueError`` on the first mismatch."""
        hashers = {a: column_hasher() for a in self.schema.attributes}
        for span in self.shard_spans():
            for i, attr in enumerate(self.schema.attributes):
                shard_hash = column_hasher()
                column_hash = hashers[attr]
                for value in self._array(span.index, i):
                    encoded = value.encode("utf-8")
                    shard_hash.update(encoded)
                    shard_hash.update(b"\x1e")
                    column_hash.update(encoded)
                    column_hash.update(b"\x1e")
                recorded = self._shards[span.index]["digests"][i]
                if shard_hash.hexdigest() != recorded:
                    raise ValueError(
                        f"shard {span.index} column {attr!r}: digest mismatch"
                    )
        for attr, hasher in hashers.items():
            if hasher.hexdigest() != self._column_fps[attr]:
                raise ValueError(f"column {attr!r}: fingerprint mismatch")
        composed = compose_fingerprint(self.schema.attributes, self._column_fps)
        if composed != self._fingerprint:
            raise ValueError("relation fingerprint does not compose from columns")

    # ------------------------------------------------------------------ #
    # Mutation is rejected
    # ------------------------------------------------------------------ #

    def _immutable(self, op: str):
        raise TypeError(
            f"ShardedDataset is immutable — {op} is not supported; convert to "
            "an in-memory Dataset first (ShardedDataset.to_dataset())"
        )

    def set_value(self, cell, value):  # pragma: no cover - trivial
        self._immutable("set_value")

    def apply_edits(self, edits):
        self._immutable("apply_edits")

    def append_rows(self, rows):
        self._immutable("append_rows")

    def __repr__(self) -> str:
        return (
            f"ShardedDataset({self._num_rows} rows x {len(self.schema)} attrs, "
            f"{self.num_shards} shards @ {self.directory})"
        )
