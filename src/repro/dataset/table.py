"""In-memory relation with cell-level addressing and column-scoped versioning.

The abstract relation protocol — :class:`Cell`, :class:`Schema`,
:class:`DatasetDelta`, the fingerprint recipes, and the read-side
:class:`~repro.dataset.relation.Relation` base — lives in
:mod:`repro.dataset.relation` (they are re-exported here for compatibility).
This module provides the *mutable in-memory backing*: storage is columnar
(``dict[attr, list[str]]``), which keeps per-attribute statistics — the
dominant access pattern in featurisation — cheap.

Versioning is column-scoped: every column carries its own memoised content
fingerprint, and the relation fingerprint is derived from the column
fingerprints.  A mutation therefore re-hashes only the touched columns, and
downstream consumers (the feature cache, :class:`DetectionSession`) can tell
*which* columns changed.  The batch mutators :meth:`Dataset.apply_edits` and
:meth:`Dataset.append_rows` return a structured :class:`DatasetDelta`
describing exactly the touched rows and columns.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Mapping, Sequence

from repro.dataset.relation import (
    Cell,
    DatasetDelta,
    Relation,
    Schema,
    compose_fingerprint,
    hash_column,
)

__all__ = ["Cell", "Dataset", "DatasetDelta", "Schema"]

#: Compatibility alias — the recipe moved to :mod:`repro.dataset.relation`.
_hash_column = hash_column


class Dataset(Relation):
    """A relation: ordered rows over a fixed schema, all values strings.

    Rows keep their integer identity (`Cell.row`) across copies so that
    ground truth, training labels, and predictions can be joined by cell.
    """

    def __init__(self, schema: Schema, columns: Mapping[str, Sequence[str]]):
        if set(columns) != set(schema.attributes):
            raise ValueError("columns do not match schema attributes")
        lengths = {len(v) for v in columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"ragged columns: lengths {sorted(lengths)}")
        self.schema = schema
        self._columns: dict[str, list[str]] = {
            a: [str(v) for v in columns[a]] for a in schema.attributes
        }
        self._num_rows = lengths.pop() if lengths else 0
        #: Per-column memoised content hashes; None = recompute on demand.
        self._column_fingerprints: dict[str, str | None] = {
            a: None for a in schema.attributes
        }
        self._fingerprint: str | None = None
        self._version = 0

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_rows(cls, attributes: Sequence[str], rows: Iterable[Sequence[str]]) -> "Dataset":
        """Build a dataset from row-major data."""
        schema = Schema(tuple(attributes))
        cols: dict[str, list[str]] = {a: [] for a in schema.attributes}
        for row in rows:
            if len(row) != len(schema.attributes):
                raise ValueError("row arity does not match schema")
            for attr, value in zip(schema.attributes, row):
                cols[attr].append(str(value))
        return cls(schema, cols)

    @classmethod
    def from_dicts(cls, rows: Iterable[Mapping[str, str]], attributes: Sequence[str] | None = None) -> "Dataset":
        """Build a dataset from a list of ``{attr: value}`` mappings."""
        rows = list(rows)
        if attributes is None:
            if not rows:
                raise ValueError("cannot infer schema from zero rows")
            attributes = list(rows[0].keys())
        return cls.from_rows(attributes, [[r[a] for a in attributes] for r in rows])

    def copy(self) -> "Dataset":
        """Deep copy (cells can be mutated independently)."""
        clone = Dataset(self.schema, {a: list(v) for a, v in self._columns.items()})
        # Content is identical, so memoised hashes carry over for free — and
        # so does the version counter: a consumer tracking ``version`` across
        # a copy must never see it jump backwards.
        clone._column_fingerprints = dict(self._column_fingerprints)
        clone._fingerprint = self._fingerprint
        clone._version = self._version
        return clone

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #

    @property
    def num_rows(self) -> int:
        return self._num_rows

    @property
    def version(self) -> int:
        """Monotonic mutation counter (bumped by every effective mutation)."""
        return self._version

    def column(self, attr: str) -> list[str]:
        """The full value list of one attribute (do not mutate)."""
        return self._columns[attr]

    def value(self, cell: Cell) -> str:
        """Observed value ``v_c`` of a cell."""
        return self._columns[cell.attr][cell.row]

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def _mark_dirty(self, attrs: Iterable[str]) -> None:
        for attr in attrs:
            self._column_fingerprints[attr] = None
        self._fingerprint = None
        self._version += 1

    def set_value(self, cell: Cell, value: str) -> None:
        """Mutate a cell in place (used by error injection and repair).

        Writing the value already present is a no-op: fingerprints and the
        version counter stay untouched.
        """
        value = str(value)
        column = self._columns[cell.attr]
        if column[cell.row] == value:
            return
        column[cell.row] = value
        self._mark_dirty((cell.attr,))

    def apply_edits(
        self, edits: Mapping[Cell, str] | Iterable[tuple[Cell, str]]
    ) -> DatasetDelta:
        """Apply a batch of cell edits; returns the delta of effective changes.

        ``edits`` maps cells to their new values (or is an iterable of
        ``(cell, value)`` pairs; later entries win on duplicate cells).
        Edits that restate the current value are dropped from the delta —
        they dirty nothing.  "Current" means the value *before this batch*:
        duplicate edits that net out to a no-op (write ``"b"``, write the
        original back) leave the cell, its column, and the version counter
        untouched.  Only the truly changed columns are re-fingerprinted.
        """
        items = edits.items() if isinstance(edits, Mapping) else edits
        # Validate (and coerce) the whole batch before touching anything, so
        # an invalid edit can never leave the relation half-mutated with
        # stale fingerprints.
        staged: list[tuple[Cell, str]] = []
        for cell, value in items:
            if cell.attr not in self._columns:
                raise KeyError(f"unknown attribute {cell.attr!r}")
            if not 0 <= cell.row < self._num_rows:
                raise IndexError(f"row {cell.row} out of range")
            staged.append((cell, str(value)))
        # Snapshot pre-batch values per distinct cell (first sighting wins),
        # then apply in order (later entries win), then judge every cell
        # against its pre-batch value — the delta's contract.
        originals: dict[Cell, str] = {}
        for cell, value in staged:
            column = self._columns[cell.attr]
            if cell not in originals:
                originals[cell] = column[cell.row]
            column[cell.row] = value
        changed: dict[Cell, None] = {}
        touched_attrs: set[str] = set()
        touched_rows: set[int] = set()
        for cell, original in originals.items():
            if self._columns[cell.attr][cell.row] == original:
                continue
            changed[cell] = None
            touched_attrs.add(cell.attr)
            touched_rows.add(cell.row)
        if changed:
            self._mark_dirty(touched_attrs)
        return DatasetDelta(
            cells=tuple(changed),
            columns=tuple(a for a in self.schema.attributes if a in touched_attrs),
            rows=tuple(sorted(touched_rows)),
        )

    def append_rows(self, rows: Iterable[Sequence[str]]) -> DatasetDelta:
        """Append row-major tuples; returns the delta with the new row ids.

        Appending touches every column (each gains values), so all column
        fingerprints are invalidated; the new rows appear in both
        ``delta.rows`` and ``delta.appended``.
        """
        staged: list[list[str]] = []
        for row in rows:
            if len(row) != len(self.schema.attributes):
                raise ValueError("row arity does not match schema")
            staged.append([str(v) for v in row])
        if not staged:
            return DatasetDelta()
        start = self._num_rows
        for row in staged:
            for attr, value in zip(self.schema.attributes, row):
                self._columns[attr].append(value)
        self._num_rows += len(staged)
        self._mark_dirty(self.schema.attributes)
        appended = tuple(range(start, self._num_rows))
        return DatasetDelta(
            columns=self.schema.attributes, rows=appended, appended=appended
        )

    # ------------------------------------------------------------------ #
    # Fingerprints
    # ------------------------------------------------------------------ #

    def column_fingerprint(self, attr: str) -> str:
        """Stable content hash of one column, memoised until it is mutated.

        The feature cache keys attribute-scoped blocks on this value, so an
        edit to column A never invalidates cached blocks of column B.
        """
        fp = self._column_fingerprints[attr]
        if fp is None:
            fp = hash_column(self._columns[attr])
            self._column_fingerprints[attr] = fp
        return fp

    def fingerprint(self) -> str:
        """Stable content hash of the relation (schema order + all values).

        Derived from the per-column fingerprints, so after a mutation only
        the dirty columns are re-hashed — never the whole relation.  The
        feature cache keys dataset-scoped blocks on this value; any in-place
        mutation invalidates them automatically.
        """
        if self._fingerprint is None:
            self._fingerprint = compose_fingerprint(
                self.schema.attributes,
                {a: self.column_fingerprint(a) for a in self.schema.attributes},
            )
        return self._fingerprint

    def rows_fingerprint(self, rows: Iterable[int]) -> str:
        """Content hash of the given rows across all attributes.

        Keys tuple-scoped feature blocks: a block depending only on some
        rows' contents stays valid as long as those rows are untouched,
        whatever happens elsewhere in the relation.
        """
        h = hashlib.blake2b(digest_size=16)
        columns = [self._columns[a] for a in self.schema.attributes]
        for row in sorted(set(rows)):
            h.update(str(row).encode("ascii"))
            h.update(b"\x1f")
            for column in columns:
                h.update(column[row].encode("utf-8"))
                h.update(b"\x1e")
            h.update(b"\x1d")
        return h.hexdigest()

    # ------------------------------------------------------------------ #
    # Row access (fast paths over the Relation defaults)
    # ------------------------------------------------------------------ #

    def row_dict(self, row: int) -> dict[str, str]:
        """One tuple as an ``{attr: value}`` mapping."""
        if not 0 <= row < self._num_rows:
            raise IndexError(f"row {row} out of range")
        return {a: self._columns[a][row] for a in self.schema.attributes}

    def row_values(self, row: int) -> list[str]:
        """One tuple as a value list in schema order."""
        return [self._columns[a][row] for a in self.schema.attributes]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Dataset):
            # Mixed-backing comparisons fall through to the chunk-wise
            # Relation comparison (reflected for Dataset == ShardedDataset).
            if isinstance(other, Relation):
                return Relation.__eq__(self, other)
            return NotImplemented
        return self.schema == other.schema and self._columns == other._columns

    def __repr__(self) -> str:
        return f"Dataset({self._num_rows} rows x {len(self.schema)} attrs)"
