"""In-memory relation with cell-level addressing.

The paper's data model (§3.1): a dataset ``D`` is a set of tuples over
attributes ``A1..AN``; a *cell* is the value of one attribute in one tuple.
All values are strings (error detection treats cell contents as opaque text;
numerics are compared lexically exactly as the original system did).

Storage is columnar (``dict[attr, list[str]]``) which keeps per-attribute
statistics — the dominant access pattern in featurisation — cheap.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence


@dataclass(frozen=True, slots=True)
class Cell:
    """Address of a single cell: row index plus attribute name."""

    row: int
    attr: str


@dataclass(frozen=True)
class Schema:
    """Ordered attribute list of a relation."""

    attributes: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(set(self.attributes)) != len(self.attributes):
            raise ValueError("duplicate attribute names in schema")
        if not self.attributes:
            raise ValueError("schema must have at least one attribute")

    def __contains__(self, attr: str) -> bool:
        return attr in self.attributes

    def __len__(self) -> int:
        return len(self.attributes)

    def index(self, attr: str) -> int:
        """Position of ``attr`` in the schema (raises ``ValueError`` if absent)."""
        return self.attributes.index(attr)


class Dataset:
    """A relation: ordered rows over a fixed schema, all values strings.

    Rows keep their integer identity (`Cell.row`) across copies so that
    ground truth, training labels, and predictions can be joined by cell.
    """

    def __init__(self, schema: Schema, columns: Mapping[str, Sequence[str]]):
        if set(columns) != set(schema.attributes):
            raise ValueError("columns do not match schema attributes")
        lengths = {len(v) for v in columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"ragged columns: lengths {sorted(lengths)}")
        self.schema = schema
        self._columns: dict[str, list[str]] = {
            a: [str(v) for v in columns[a]] for a in schema.attributes
        }
        self._num_rows = lengths.pop() if lengths else 0
        self._fingerprint: str | None = None

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_rows(cls, attributes: Sequence[str], rows: Iterable[Sequence[str]]) -> "Dataset":
        """Build a dataset from row-major data."""
        schema = Schema(tuple(attributes))
        cols: dict[str, list[str]] = {a: [] for a in schema.attributes}
        for row in rows:
            if len(row) != len(schema.attributes):
                raise ValueError("row arity does not match schema")
            for attr, value in zip(schema.attributes, row):
                cols[attr].append(str(value))
        return cls(schema, cols)

    @classmethod
    def from_dicts(cls, rows: Iterable[Mapping[str, str]], attributes: Sequence[str] | None = None) -> "Dataset":
        """Build a dataset from a list of ``{attr: value}`` mappings."""
        rows = list(rows)
        if attributes is None:
            if not rows:
                raise ValueError("cannot infer schema from zero rows")
            attributes = list(rows[0].keys())
        return cls.from_rows(attributes, [[r[a] for a in attributes] for r in rows])

    def copy(self) -> "Dataset":
        """Deep copy (cells can be mutated independently)."""
        return Dataset(self.schema, {a: list(v) for a, v in self._columns.items()})

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #

    @property
    def attributes(self) -> tuple[str, ...]:
        return self.schema.attributes

    @property
    def num_rows(self) -> int:
        return self._num_rows

    @property
    def num_cells(self) -> int:
        return self._num_rows * len(self.schema)

    def __len__(self) -> int:
        return self._num_rows

    def column(self, attr: str) -> list[str]:
        """The full value list of one attribute (do not mutate)."""
        return self._columns[attr]

    def value(self, cell: Cell) -> str:
        """Observed value ``v_c`` of a cell."""
        return self._columns[cell.attr][cell.row]

    def __getitem__(self, cell: Cell) -> str:
        return self.value(cell)

    def set_value(self, cell: Cell, value: str) -> None:
        """Mutate a cell in place (used by error injection and repair)."""
        self._columns[cell.attr][cell.row] = str(value)
        self._fingerprint = None

    def fingerprint(self) -> str:
        """Stable content hash of the relation (schema order + all values).

        The feature cache keys transformed blocks on this value, so any
        in-place mutation through :meth:`set_value` invalidates cached
        features automatically.  The hash is computed lazily and memoised
        until the next mutation.
        """
        if self._fingerprint is None:
            h = hashlib.blake2b(digest_size=16)
            for attr in self.schema.attributes:
                h.update(attr.encode("utf-8"))
                h.update(b"\x1f")
                for value in self._columns[attr]:
                    h.update(value.encode("utf-8"))
                    h.update(b"\x1e")
                h.update(b"\x1d")
            self._fingerprint = h.hexdigest()
        return self._fingerprint

    def row_dict(self, row: int) -> dict[str, str]:
        """One tuple as an ``{attr: value}`` mapping."""
        if not 0 <= row < self._num_rows:
            raise IndexError(f"row {row} out of range")
        return {a: self._columns[a][row] for a in self.schema.attributes}

    def row_values(self, row: int) -> list[str]:
        """One tuple as a value list in schema order."""
        return [self._columns[a][row] for a in self.schema.attributes]

    def cells(self) -> Iterator[Cell]:
        """Iterate over every cell, attribute-major then row order."""
        for attr in self.schema.attributes:
            for row in range(self._num_rows):
                yield Cell(row, attr)

    def cells_of_row(self, row: int) -> list[Cell]:
        return [Cell(row, attr) for attr in self.schema.attributes]

    # ------------------------------------------------------------------ #
    # Statistics used throughout featurisation
    # ------------------------------------------------------------------ #

    def value_counts(self, attr: str) -> dict[str, int]:
        """Frequency of each distinct value within one attribute."""
        counts: dict[str, int] = {}
        for v in self._columns[attr]:
            counts[v] = counts.get(v, 0) + 1
        return counts

    def domain(self, attr: str) -> list[str]:
        """Distinct values of an attribute, in first-seen order."""
        seen: dict[str, None] = {}
        for v in self._columns[attr]:
            seen.setdefault(v, None)
        return list(seen)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Dataset):
            return NotImplemented
        return self.schema == other.schema and self._columns == other._columns

    def __repr__(self) -> str:
        return f"Dataset({self._num_rows} rows x {len(self.schema)} attrs)"
