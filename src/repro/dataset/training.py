"""The labelled training set ``T = {(c, v_c, v*_c)}`` of §3.1.

A :class:`TrainingSet` is the only supervision a detector receives.  It
provides correct/erroneous partitions, holdout splitting (used for Platt
scaling and the augmentation hyper-parameter α), and the error pairs
``L = {(v*, v)}`` that seed transformation learning (§5.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.dataset.table import Cell
from repro.utils.rng import as_generator


@dataclass(frozen=True, slots=True)
class LabeledCell:
    """One labelled example: observed and true value of one cell."""

    cell: Cell
    observed: str
    true: str

    @property
    def is_error(self) -> bool:
        return self.observed != self.true

    @property
    def label(self) -> int:
        """Paper convention ``E_c``: -1 error, +1 correct."""
        return -1 if self.is_error else 1


class TrainingSet:
    """An ordered collection of :class:`LabeledCell` with split utilities."""

    def __init__(self, examples: Iterable[LabeledCell]):
        self._examples: list[LabeledCell] = list(examples)
        cells = [e.cell for e in self._examples]
        if len(set(cells)) != len(cells):
            raise ValueError("duplicate cells in training set")

    def __len__(self) -> int:
        return len(self._examples)

    def __iter__(self) -> Iterator[LabeledCell]:
        return iter(self._examples)

    def __getitem__(self, idx: int) -> LabeledCell:
        return self._examples[idx]

    @property
    def cells(self) -> list[Cell]:
        return [e.cell for e in self._examples]

    @property
    def correct(self) -> list[LabeledCell]:
        """Examples labelled correct (``v_c == v*_c``)."""
        return [e for e in self._examples if not e.is_error]

    @property
    def errors(self) -> list[LabeledCell]:
        """Examples labelled erroneous."""
        return [e for e in self._examples if e.is_error]

    def error_pairs(self) -> list[tuple[str, str]]:
        """``L = {(v*, v)}`` pairs usable for transformation learning (§5.4)."""
        return [(e.true, e.observed) for e in self.errors]

    def extend(self, more: Iterable[LabeledCell]) -> "TrainingSet":
        """New training set with additional examples appended.

        Cells may repeat across the union (augmented examples are synthetic
        and carry pseudo-cells), so no duplicate check is applied here.
        """
        merged = TrainingSet.__new__(TrainingSet)
        merged._examples = self._examples + list(more)
        return merged

    def split_holdout(
        self, fraction: float, rng: int | np.random.Generator | None = 0
    ) -> tuple["TrainingSet", "TrainingSet"]:
        """Random (train, holdout) split; holdout gets ``fraction`` of examples.

        The paper always keeps 10% of ``T`` as a holdout for hyper-parameter
        tuning and Platt scaling (§6.1).  Stratified so the scarce error class
        appears on both sides whenever it has at least two members.
        """
        if not 0.0 <= fraction < 1.0:
            raise ValueError("fraction must be in [0, 1)")
        gen = as_generator(rng)
        holdout_idx: set[int] = set()
        for group in (
            [i for i, e in enumerate(self._examples) if e.is_error],
            [i for i, e in enumerate(self._examples) if not e.is_error],
        ):
            if not group:
                continue
            take = int(round(len(group) * fraction))
            if take == 0 and len(group) >= 2 and fraction > 0:
                take = 1
            chosen = gen.choice(len(group), size=take, replace=False) if take else []
            holdout_idx.update(group[int(i)] for i in np.atleast_1d(chosen))
        train = [e for i, e in enumerate(self._examples) if i not in holdout_idx]
        hold = [e for i, e in enumerate(self._examples) if i in holdout_idx]
        t1 = TrainingSet.__new__(TrainingSet)
        t1._examples = train
        t2 = TrainingSet.__new__(TrainingSet)
        t2._examples = hold
        return t1, t2

    @classmethod
    def from_cells(
        cls,
        cells: Sequence[Cell],
        dirty,  # Dataset
        truth,  # GroundTruth
    ) -> "TrainingSet":
        """Materialise labels for ``cells`` from a dataset + ground truth."""
        return cls(
            LabeledCell(cell=c, observed=dirty.value(c), true=truth.true_value(c))
            for c in cells
        )
