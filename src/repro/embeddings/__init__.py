"""Embedding substrate: FastText-style subword embeddings trained in numpy.

The paper embeds three views of the data — character sequences, in-cell word
tokens, and whole tuples as bags of words — with FastText [7, 32] and feeds
the vectors to learnable highway layers.  This package reimplements the
FastText objective (skip-gram with negative sampling over subword character
n-grams) from scratch, along with the corpus builders for each view and the
nearest-neighbour distance used by the dataset-level neighbourhood feature.
"""

from repro.embeddings.fasttext import FastTextEmbedding
from repro.embeddings.corpus import (
    char_corpus,
    tuple_corpus,
    tuple_value_corpus,
    word_corpus,
)

__all__ = [
    "FastTextEmbedding",
    "char_corpus",
    "word_corpus",
    "tuple_corpus",
    "tuple_value_corpus",
]
