"""Corpus builders for the three embedding views of a dataset.

Each builder returns a list of *sentences* (token lists) suitable for
:class:`~repro.embeddings.fasttext.FastTextEmbedding.fit`:

- character view: every cell value of an attribute becomes a sentence of
  single-character tokens (attribute-level character model, Table 7);
- word view: every cell value becomes a sentence of word tokens;
- tuple view: every tuple becomes one sentence — the union of word tokens of
  all its attribute values, i.e. a bag-of-words document as §4.1 specifies;
- tuple-value view: every tuple becomes a sentence whose tokens are the raw,
  non-tokenised attribute values (the neighbourhood model of Table 7).
"""

from __future__ import annotations

from repro.dataset.table import Dataset
from repro.text.tokenize import char_tokens, word_tokens

#: Token standing in for an empty cell so sentences are never empty.
EMPTY_TOKEN = "<empty>"


def _nonempty(tokens: list[str]) -> list[str]:
    return tokens if tokens else [EMPTY_TOKEN]


def char_corpus(dataset: Dataset, attr: str) -> list[list[str]]:
    """Character-token sentences for one attribute."""
    return [_nonempty(char_tokens(v)) for v in dataset.column(attr)]


def word_corpus(dataset: Dataset, attr: str) -> list[list[str]]:
    """Word-token sentences for one attribute."""
    return [_nonempty(word_tokens(v)) for v in dataset.column(attr)]


def tuple_corpus(dataset: Dataset) -> list[list[str]]:
    """One bag-of-words sentence per tuple (all attributes pooled)."""
    sentences = []
    for row in range(dataset.num_rows):
        tokens: list[str] = []
        for value in dataset.row_values(row):
            tokens.extend(word_tokens(value))
        sentences.append(_nonempty(tokens))
    return sentences


def tuple_value_corpus(dataset: Dataset) -> list[list[str]]:
    """One sentence per tuple whose tokens are whole attribute values.

    Values are kept verbatim (not tokenised) so the embedding space contains
    one point per distinct cell value, which the neighbourhood feature then
    queries for the closest other value.
    """
    sentences = []
    for row in range(dataset.num_rows):
        values = [v if v else EMPTY_TOKEN for v in dataset.row_values(row)]
        sentences.append(values)
    return sentences
