"""FastText-style subword embeddings: skip-gram with negative sampling.

Reimplements the training objective of Bojanowski et al. [7] in numpy: each
word is represented as the mean of hashed character-n-gram vectors plus a
whole-word vector, trained so that words predict their context words against
negative samples drawn from the unigram^0.75 distribution.

Subword representations matter for error detection specifically because they
give *out-of-vocabulary* strings — which typos overwhelmingly are — vectors
that land near their clean neighbours, letting the learnable layers above
separate "slightly off" from "structurally different".
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.utils.rng import as_generator

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def _fnv1a(text: str) -> int:
    """64-bit FNV-1a hash (FastText's bucket hash)."""
    h = _FNV_OFFSET
    for byte in text.encode("utf-8"):
        h ^= byte
        h = (h * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    return h


def subword_ngrams(word: str, n_min: int = 3, n_max: int = 5) -> list[str]:
    """Character n-grams of ``<word>`` with boundary markers, as in FastText."""
    wrapped = f"<{word}>"
    grams = []
    for n in range(n_min, n_max + 1):
        if n > len(wrapped):
            break
        grams.extend(wrapped[i : i + n] for i in range(len(wrapped) - n + 1))
    return grams


class FastTextEmbedding:
    """Subword skip-gram embedding trained with negative sampling.

    Parameters mirror the knobs that matter for this reproduction: embedding
    ``dim`` (the paper used 50; we default lower for CPU runtime), context
    ``window``, ``negatives`` per positive pair, subword n-gram range, bucket
    count for the hashing trick, ``epochs`` and learning rate.
    """

    def __init__(
        self,
        dim: int = 24,
        window: int = 3,
        negatives: int = 4,
        n_min: int = 3,
        n_max: int = 5,
        buckets: int = 4096,
        epochs: int = 3,
        lr: float = 0.05,
        max_pairs_per_epoch: int = 200_000,
        backend: str | None = None,
        rng=None,
    ):
        if dim < 1:
            raise ValueError("dim must be >= 1")
        self.dim = dim
        self.window = window
        self.negatives = negatives
        self.n_min = n_min
        self.n_max = n_max
        self.buckets = buckets
        self.epochs = epochs
        self.lr = lr
        self.max_pairs_per_epoch = max_pairs_per_epoch
        #: Compute backend executing the SGNS batch updates (``None`` = the
        #: default numpy kernel, which is the reference math — the default
        #: path trains bit-identically to the historical inline loop).
        #: Deliberately *not* inherited from the ambient backend: the
        #: backend is part of :meth:`config_dict` and hence the artifact
        #: key, and an ambient setting changing trained weights under an
        #: unchanged key would serve stale artifacts.
        self.backend = backend
        self._rng = as_generator(rng)
        self._vocab: dict[str, int] = {}
        self._index_to_word: list[str] = []
        self._in: np.ndarray | None = None  # [buckets + vocab, dim]
        self._out: np.ndarray | None = None  # [vocab, dim]
        self._sub_ids: np.ndarray | None = None  # [vocab, max_subwords] padded
        self._sub_mask: np.ndarray | None = None
        self._word_vectors_cache: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Vocabulary and subword plumbing
    # ------------------------------------------------------------------ #

    @property
    def vocabulary(self) -> list[str]:
        return list(self._index_to_word)

    def _word_subword_ids(self, word: str, word_index: int | None) -> list[int]:
        """Hashed subword ids; in-vocab words also get a dedicated id."""
        ids = [
            _fnv1a(gram) % self.buckets for gram in subword_ngrams(word, self.n_min, self.n_max)
        ]
        if word_index is not None:
            ids.append(self.buckets + word_index)
        if not ids:
            # Words shorter than n_min still need at least one id.
            ids = [_fnv1a(f"<{word}>") % self.buckets]
        return ids

    def _build_vocab(self, sentences: Sequence[Sequence[str]]) -> np.ndarray:
        counts: dict[str, int] = {}
        for sentence in sentences:
            for token in sentence:
                counts[token] = counts.get(token, 0) + 1
        self._index_to_word = sorted(counts, key=lambda w: (-counts[w], w))
        self._vocab = {w: i for i, w in enumerate(self._index_to_word)}
        freq = np.array([counts[w] for w in self._index_to_word], dtype=np.float64)
        return freq

    def _build_subword_table(self) -> None:
        vocab_size = len(self._index_to_word)
        id_lists = [
            self._word_subword_ids(w, i) for i, w in enumerate(self._index_to_word)
        ]
        max_len = max(len(ids) for ids in id_lists)
        self._sub_ids = np.zeros((vocab_size, max_len), dtype=np.int64)
        self._sub_mask = np.zeros((vocab_size, max_len), dtype=np.float64)
        for i, ids in enumerate(id_lists):
            self._sub_ids[i, : len(ids)] = ids
            self._sub_mask[i, : len(ids)] = 1.0

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #

    def fit(self, sentences: Iterable[Sequence[str]]) -> "FastTextEmbedding":
        """Train on a corpus of token-list sentences."""
        sentences = [list(s) for s in sentences if s]
        if not sentences:
            raise ValueError("cannot fit embeddings on an empty corpus")
        freq = self._build_vocab(sentences)
        self._build_subword_table()
        vocab_size = len(self._index_to_word)
        table_size = self.buckets + vocab_size
        scale = 1.0 / self.dim
        self._in = self._rng.uniform(-scale, scale, size=(table_size, self.dim))
        self._out = np.zeros((vocab_size, self.dim))

        centers, contexts = self._collect_pairs(sentences)
        if centers.size == 0:
            self._word_vectors_cache = None
            return self

        noise = freq**0.75
        noise /= noise.sum()

        for _ in range(self.epochs):
            order = self._rng.permutation(centers.size)
            if centers.size > self.max_pairs_per_epoch:
                order = order[: self.max_pairs_per_epoch]
            self._train_epoch(centers[order], contexts[order], noise)
            self._clip_norms()
        self._word_vectors_cache = None
        return self

    def _collect_pairs(
        self, sentences: Sequence[Sequence[str]]
    ) -> tuple[np.ndarray, np.ndarray]:
        """All (center, context) pairs within the window, vectorised.

        One flat id array plus a parallel sentence-id array turn the
        per-token window scan into sliding-window index arithmetic: for
        each offset ``d`` the aligned slices ``flat[:-d]``/``flat[d:]``
        are pair candidates, valid exactly where both sides fall in the
        same sentence.  Each unordered co-occurrence is emitted in both
        directions, matching the original per-position triple loop's pair
        multiset (the emission *order* differs; training shuffles pairs
        per epoch anyway).
        """
        vocab = self._vocab
        lengths = np.fromiter((len(s) for s in sentences), dtype=np.int64,
                              count=len(sentences))
        total = int(lengths.sum())
        flat = np.fromiter(
            (vocab[t] for sentence in sentences for t in sentence),
            dtype=np.int64, count=total,
        )
        sentence_ids = np.repeat(np.arange(lengths.size), lengths)
        centers: list[np.ndarray] = []
        contexts: list[np.ndarray] = []
        for d in range(1, self.window + 1):
            if d >= total:
                break
            same = sentence_ids[:-d] == sentence_ids[d:]
            left, right = flat[:-d][same], flat[d:][same]
            centers += [left, right]
            contexts += [right, left]
        if not centers:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        return np.concatenate(centers), np.concatenate(contexts)

    def _train_epoch(
        self, centers: np.ndarray, contexts: np.ndarray, noise: np.ndarray
    ) -> None:
        """One SGNS pass; the batch update runs on the compute backend.

        Positive and negative targets share the same update form (grad on
        score = sigmoid(score) - label); the per-batch math lives in
        :meth:`repro.nn.backend.ComputeBackend.sgns_step`, whose numpy
        kernel is the reference implementation.  Negative sampling stays
        here so every backend consumes the embedding's RNG stream
        identically.
        """
        from repro.nn.backend import DEFAULT_BACKEND, resolve_backend

        # Never the *ambient* backend: the key config pins self.backend, so
        # only an explicitly pinned backend may change the trained tables.
        backend = resolve_backend(self.backend or DEFAULT_BACKEND)
        batch = 512
        vocab_size = noise.size
        for start in range(0, centers.size, batch):
            c = centers[start : start + batch]
            o = contexts[start : start + batch]
            n = c.size
            negs = self._rng.choice(vocab_size, size=(n, self.negatives), p=noise)
            backend.sgns_step(
                self._in, self._out, self._sub_ids[c], self._sub_mask[c],
                o, negs, self.lr,
            )

    def _clip_norms(self, max_norm: float = 10.0) -> None:
        """Renormalise rows whose norm exceeds ``max_norm``.

        Batched scatter-add updates can let frequently shared buckets grow
        without bound on degenerate corpora; clipping keeps the geometry
        (directions) while bounding magnitudes.
        """
        for table in (self._in, self._out):
            norms = np.linalg.norm(table, axis=1, keepdims=True)
            np.divide(table, norms / max_norm, out=table, where=norms > max_norm)

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #

    def vector(self, word: str) -> np.ndarray:
        """Embedding of ``word``; OOV words fall back to subword vectors only."""
        if self._in is None:
            raise RuntimeError("embedding not fitted")
        ids = self._word_subword_ids(word, self._vocab.get(word))
        return self._in[ids].mean(axis=0)

    def sentence_vector(self, tokens: Sequence[str]) -> np.ndarray:
        """Mean of token vectors; zero vector for an empty token list.

        In-vocabulary tokens are served as rows of the precomputed
        vocabulary matrix (one gather instead of per-token subword hashing);
        only out-of-vocabulary tokens fall back to :meth:`vector`.  The
        stacked rows equal the per-token loop's bit-for-bit, so the mean is
        unchanged.
        """
        if not tokens:
            return np.zeros(self.dim)
        if self._in is None:
            raise RuntimeError("embedding not fitted")
        vocab = self._vocab
        indices = np.array([vocab.get(t, -1) for t in tokens], dtype=np.int64)
        if np.all(indices >= 0):
            rows = self._word_vectors()[indices]
        else:
            rows = np.empty((len(tokens), self.dim))
            known = indices >= 0
            if known.any():
                rows[known] = self._word_vectors()[indices[known]]
            for i in np.flatnonzero(~known):
                rows[i] = self.vector(tokens[i])
        return np.mean(rows, axis=0)

    def _word_vectors(self) -> np.ndarray:
        """The ``[vocab, dim]`` matrix of in-vocabulary word vectors.

        Built as grouped gathers over the padded subword id table: words
        with the same subword count form one ``[m, L, dim]`` gather and a
        single ``mean(axis=1)``.  Reducing over a strided axis accumulates
        in index order exactly like the per-word ``_in[ids].mean(axis=0)``,
        so each row is bit-identical to :meth:`vector`.
        """
        if self._word_vectors_cache is None:
            counts = self._sub_mask.sum(axis=1).astype(np.int64)
            vectors = np.empty((len(self._index_to_word), self.dim))
            for length in np.unique(counts):
                members = np.flatnonzero(counts == length)
                gathered = self._in[self._sub_ids[members, :length]]
                vectors[members] = gathered.mean(axis=1)
            self._word_vectors_cache = vectors
        return self._word_vectors_cache

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def to_state(self) -> dict:
        """Serialisable state: config + vocabulary + weight tables.

        Arrays are returned as-is; the persistence layer decides how to
        store them.  The subword table is rebuilt from the vocabulary on
        load (it is a pure function of vocab + hashing config).
        """
        if self._in is None or self._out is None:
            raise RuntimeError("cannot serialise an unfitted embedding")
        return {
            "config": self.config_dict(),
            "vocabulary": list(self._index_to_word),
            "in_table": self._in,
            "out_table": self._out,
        }

    def config_dict(self) -> dict:
        """Every constructor knob that shapes training, as a JSON-able dict.

        Two uses: the ``config`` entry of :meth:`to_state` (rebuildable via
        ``FastTextEmbedding(**config)``), and the component-config half of
        embedding artifact keys (:mod:`repro.artifacts.keys`) — the full
        enumeration is what guarantees that changing *any* training default
        changes the key instead of silently serving stale weights.
        """
        config = {
            "dim": self.dim,
            "window": self.window,
            "negatives": self.negatives,
            "n_min": self.n_min,
            "n_max": self.n_max,
            "buckets": self.buckets,
            "epochs": self.epochs,
            "lr": self.lr,
            "max_pairs_per_epoch": self.max_pairs_per_epoch,
        }
        if self.backend is not None:
            # A pinned non-default backend (e.g. torch) may differ in low
            # bits from the numpy reference kernel, so it must key — and
            # seed, since training seeds derive from the key — its
            # artifacts separately.  ``None`` stays *out* of the config:
            # artifact keys are also the training-seed material, so adding
            # the field would reseed (and change) every default-path fit.
            config["backend"] = self.backend
        return config

    @classmethod
    def from_state(cls, state: dict) -> "FastTextEmbedding":
        """Rebuild a fitted embedding from :meth:`to_state` output."""
        model = cls(**state["config"])
        model._index_to_word = list(state["vocabulary"])
        model._vocab = {w: i for i, w in enumerate(model._index_to_word)}
        model._in = np.asarray(state["in_table"], dtype=np.float64)
        model._out = np.asarray(state["out_table"], dtype=np.float64)
        model._build_subword_table()
        return model

    def nearest_neighbor_distance(self, word: str) -> float:
        """Cosine distance to the closest *other* vocabulary word.

        This is the dataset-level neighbourhood feature (Appendix A.1): for a
        correct-but-rare value there is usually a close neighbour; a garbled
        value sits far from everything.  Returns 1.0 when the vocabulary has
        no other word to compare against.
        """
        vectors = self._word_vectors()
        if len(self._index_to_word) < 2 and word in self._vocab:
            return 1.0
        query = self.vector(word)
        q_norm = np.linalg.norm(query)
        if q_norm == 0:
            return 1.0
        norms = np.linalg.norm(vectors, axis=1)
        safe = np.where(norms == 0, 1.0, norms)
        sims = vectors @ query / (safe * q_norm)
        sims = np.where(norms == 0, -1.0, sims)
        own = self._vocab.get(word)
        if own is not None:
            sims[own] = -np.inf
        best = float(np.max(sims))
        if best == -np.inf:
            return 1.0
        return float(np.clip(1.0 - best, 0.0, 2.0))
