"""Error injection: a BART-equivalent [4] noise generator.

The paper's Soccer and Adult datasets got their errors from BART with a
typo/value-swap mix; Hospital uses 'x'-injection typos.  This package
reproduces those channels with controllable per-dataset rates so every
benchmark dataset carries exact cell-level ground truth.
"""

from repro.errors.typos import (
    delete_char,
    inject_x,
    insert_char,
    random_typo,
    substitute_char,
    transpose_chars,
)
from repro.errors.bart import ErrorProfile, inject_errors
from repro.errors.profiles import (
    apply_profile,
    profile_names,
    resolve_profile,
)


def __getattr__(name: str):
    if name == "PROFILES":
        # Deprecated alias; the warning is emitted by repro.errors.profiles.
        from repro.errors import profiles

        return profiles.PROFILES
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "inject_x",
    "substitute_char",
    "insert_char",
    "delete_char",
    "transpose_chars",
    "random_typo",
    "ErrorProfile",
    "inject_errors",
    "PROFILES",
    "apply_profile",
    "profile_names",
    "resolve_profile",
]
