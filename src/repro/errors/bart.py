"""BART-equivalent error injection over clean relations.

Given a clean dataset, an :class:`ErrorProfile` describes the cell-level
error rate and the typo/value-swap mix of the noise channel (the statistics
Table 1 and §6.1 report per dataset).  :func:`inject_errors` applies the
profile and returns the dirty dataset plus exact ground truth.

Value swaps replace a cell's value with a *different* value drawn from the
same attribute's clean domain — the cross-tuple swap BART performs, which
produces errors that are individually plausible but wrong in context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.dataset.ground_truth import GroundTruth
from repro.dataset.table import Cell, Dataset
from repro.errors.typos import inject_x, random_typo
from repro.utils.rng import as_generator


@dataclass(frozen=True)
class ErrorProfile:
    """Noise-channel description for one dataset.

    ``error_rate`` is the fraction of *cells* corrupted; ``typo_fraction``
    of those get typos, the rest value swaps.  ``x_style_typos`` switches the
    typo channel to Hospital-style 'x' injection.  ``attributes`` optionally
    restricts corruption to a subset of columns (identifier columns are
    usually kept clean, matching the benchmark datasets).
    """

    error_rate: float
    typo_fraction: float = 1.0
    x_style_typos: bool = False
    attributes: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.error_rate <= 1.0:
            raise ValueError("error_rate must be in [0, 1]")
        if not 0.0 <= self.typo_fraction <= 1.0:
            raise ValueError("typo_fraction must be in [0, 1]")


def _swap_value(value: str, domain: Sequence[str], rng: np.random.Generator) -> str | None:
    """A different value from the clean attribute domain, or None."""
    others = [v for v in domain if v != value]
    if not others:
        return None
    return others[int(rng.integers(0, len(others)))]


def inject_errors(
    clean: Dataset,
    profile: ErrorProfile,
    rng: int | np.random.Generator | None = 0,
) -> tuple[Dataset, GroundTruth]:
    """Corrupt a clean dataset according to ``profile``.

    Returns ``(dirty, truth)``; ``truth`` covers every cell so error masks
    and labels can be derived exactly.
    """
    gen = as_generator(rng)
    dirty = clean.copy()
    truth = GroundTruth.from_clean_dataset(clean)

    attrs = profile.attributes or clean.attributes
    for attr in attrs:
        if attr not in clean.schema:
            raise ValueError(f"profile references unknown attribute {attr!r}")
    eligible = [Cell(row, attr) for attr in attrs for row in range(clean.num_rows)]
    num_errors = int(round(profile.error_rate * len(eligible)))
    if num_errors == 0:
        return dirty, truth

    chosen = gen.choice(len(eligible), size=num_errors, replace=False)
    domains = {attr: clean.domain(attr) for attr in attrs}
    for idx in chosen:
        cell = eligible[int(idx)]
        value = clean.value(cell)
        corrupted: str | None = None
        if gen.random() < profile.typo_fraction:
            corrupted = inject_x(value, gen) if profile.x_style_typos else random_typo(value, gen)
        else:
            corrupted = _swap_value(value, domains[cell.attr], gen)
            if corrupted is None:
                # Single-value domain: fall back to a typo so the cell is
                # still corrupted and the realised error rate stays exact.
                corrupted = random_typo(value, gen)
        dirty.set_value(cell, corrupted)
    return dirty, truth
