"""Named error-generation profiles for the scenario matrix.

The benchmark datasets each bake in the noise channel the paper reports for
them (Table 1).  The sweep harness additionally needs to vary the channel
*independently* of the dataset — e.g. run Hospital under a BART-style
typo/swap mix, or Food under pure value swaps — so this module registers a
small library of reusable :class:`~repro.errors.bart.ErrorProfile` presets
as ``error_profile`` components and knows how to re-inject errors into a
bundle's clean relation.

``"native"`` is the identity profile: the bundle keeps the errors its
generator injected.  Every other profile discards the generator's dirty
relation and corrupts the clean relation afresh, which keeps ground truth
exact and makes error characteristics a first-class sweep axis.

Profiles resolve through :mod:`repro.registry`: besides the presets here, a
``"module:attr"`` reference names a user-defined profile (the attribute is
called with the override parameters and must return an
:class:`~repro.errors.bart.ErrorProfile`), and an unknown plain name with at
least ``error_rate`` defines an ad-hoc profile inline.

.. deprecated::
    The module-level ``PROFILES`` dict predates the registry; reading it
    still works but emits a :class:`DeprecationWarning`.  Use
    :func:`profile_names` / :func:`resolve_profile` (or the registry
    directly) instead.
"""

from __future__ import annotations

import warnings
from dataclasses import replace
from typing import Mapping

import numpy as np

from repro.data.bundle import DatasetBundle
from repro.errors.bart import ErrorProfile, inject_errors
from repro.registry import REGISTRY, ComponentError, deprecated_name_map

#: Identity profile: keep the bundle's generator-injected errors.
NATIVE = "native"

#: Preset noise channels.  ``None`` marks the identity profile.
_PRESETS: dict[str, tuple[ErrorProfile | None, str]] = {
    NATIVE: (None, "identity: keep the generator-injected errors"),
    "typos": (
        ErrorProfile(error_rate=0.03, typo_fraction=1.0),
        "pure character typos at Hospital-like density",
    ),
    "x-typos": (
        ErrorProfile(error_rate=0.03, typo_fraction=1.0, x_style_typos=True),
        "Hospital's published channel: 'x'-substitution typos",
    ),
    "bart-mix": (
        ErrorProfile(error_rate=0.05, typo_fraction=0.5),
        "the BART mix used for Soccer/Adult: half typos, half swaps",
    ),
    "swaps": (
        ErrorProfile(error_rate=0.05, typo_fraction=0.0),
        "pure cross-tuple value swaps: plausible in isolation",
    ),
}


def _preset_factory(name: str, base: ErrorProfile | None):
    def factory(overrides: Mapping[str, object]) -> ErrorProfile | None:
        overrides = _normalise_overrides(overrides)
        if base is None:
            if overrides:
                raise ComponentError(
                    f"profile {name!r} takes no parameters, got {sorted(overrides)}"
                )
            return None
        try:
            return replace(base, **overrides) if overrides else base
        except (TypeError, ValueError) as exc:
            raise ComponentError(f"profile {name!r}: {exc}") from exc

    return factory


for _name, (_base, _doc) in _PRESETS.items():
    REGISTRY.add("error_profile", _name, _preset_factory(_name, _base), description=_doc)


def _normalise_overrides(overrides: Mapping[str, object]) -> dict[str, object]:
    overrides = dict(overrides)
    if overrides.get("attributes") is not None:
        overrides["attributes"] = tuple(overrides["attributes"])  # type: ignore[arg-type]
    return overrides


def profile_names() -> tuple[str, ...]:
    """Names of the built-in profiles (including ``"native"``)."""
    return REGISTRY.names("error_profile")


def resolve_profile(name: str, **overrides: object) -> ErrorProfile | None:
    """Resolve profile ``name``, optionally overriding its parameters.

    A registered name returns its preset (with ``overrides`` applied via
    :func:`dataclasses.replace`); a ``module:attr`` reference builds a
    user-defined profile; any other name defines an ad-hoc profile and must
    supply at least ``error_rate``.  ``"native"`` accepts no overrides —
    there is no channel to parameterise.
    """
    if ":" in name or name in profile_names():
        profile = REGISTRY.create("error_profile", name, _normalise_overrides(overrides))
        if profile is not None and not isinstance(profile, ErrorProfile):
            raise ComponentError(
                f"profile {name!r} built {type(profile).__name__}, expected ErrorProfile"
            )
        return profile
    overrides = _normalise_overrides(overrides)
    if "error_rate" not in overrides:
        raise ValueError(
            f"unknown profile {name!r}; choose from {profile_names()}, use a "
            "'module:attr' reference, or define a custom profile with at "
            "least error_rate"
        )
    try:
        return ErrorProfile(**overrides)  # type: ignore[arg-type]
    except TypeError as exc:
        raise ValueError(f"profile {name!r}: {exc}") from exc


def apply_profile(
    bundle: DatasetBundle,
    profile: ErrorProfile | None,
    rng: int | np.random.Generator | None = 0,
) -> DatasetBundle:
    """Re-corrupt ``bundle``'s clean relation under ``profile``.

    ``None`` (the native profile) returns the bundle unchanged.  Otherwise
    the generator-injected errors are discarded and fresh ones drawn from
    ``profile``; the clean relation, constraints, and name carry over, so
    downstream code sees an ordinary :class:`DatasetBundle`.
    """
    if profile is None:
        return bundle
    dirty, truth = inject_errors(bundle.clean, profile, rng=rng)
    return DatasetBundle(
        name=bundle.name,
        clean=bundle.clean,
        dirty=dirty,
        truth=truth,
        constraints=bundle.constraints,
    )


def _register_legacy_profile(key: str, profile: ErrorProfile | None) -> None:
    """Write-through for the deprecated ``PROFILES`` map: an assigned preset
    registers like a built-in, so ``resolve_profile`` keeps finding it."""
    _PRESETS[key] = (profile, "legacy PROFILES registration")
    REGISTRY.add(
        "error_profile", key, _preset_factory(key, profile),
        description="legacy PROFILES registration", replace=True,
    )


def __getattr__(name: str):
    if name == "PROFILES":
        warnings.warn(
            "repro.errors.profiles.PROFILES is deprecated; resolve profiles "
            "through repro.registry (kind 'error_profile') or resolve_profile()",
            DeprecationWarning,
            stacklevel=2,
        )
        return deprecated_name_map(
            "error_profile",
            lambda key: _PRESETS[key][0],
            _PRESETS,
            writer=_register_legacy_profile,
        )
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
