"""Named error-generation profiles for the scenario matrix.

The benchmark datasets each bake in the noise channel the paper reports for
them (Table 1).  The sweep harness additionally needs to vary the channel
*independently* of the dataset — e.g. run Hospital under a BART-style
typo/swap mix, or Food under pure value swaps — so this module names a
small library of reusable :class:`~repro.errors.bart.ErrorProfile` presets
and knows how to re-inject errors into a bundle's clean relation.

``"native"`` is the identity profile: the bundle keeps the errors its
generator injected.  Every other profile discards the generator's dirty
relation and corrupts the clean relation afresh, which keeps ground truth
exact and makes error characteristics a first-class sweep axis.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.data.bundle import DatasetBundle
from repro.errors.bart import ErrorProfile, inject_errors

#: Identity profile: keep the bundle's generator-injected errors.
NATIVE = "native"

#: Reusable noise channels.  ``None`` marks the identity profile.
PROFILES: dict[str, ErrorProfile | None] = {
    NATIVE: None,
    # Pure character typos at Hospital-like density.
    "typos": ErrorProfile(error_rate=0.03, typo_fraction=1.0),
    # Hospital's published channel: 'x'-substitution typos.
    "x-typos": ErrorProfile(error_rate=0.03, typo_fraction=1.0, x_style_typos=True),
    # The BART mix used for Soccer/Adult: half typos, half cross-tuple swaps.
    "bart-mix": ErrorProfile(error_rate=0.05, typo_fraction=0.5),
    # Pure value swaps: every error is plausible in isolation.
    "swaps": ErrorProfile(error_rate=0.05, typo_fraction=0.0),
}


def profile_names() -> tuple[str, ...]:
    """Names of the built-in profiles (including ``"native"``)."""
    return tuple(PROFILES)


def resolve_profile(name: str, **overrides: object) -> ErrorProfile | None:
    """Look up profile ``name``, optionally overriding its parameters.

    A known name returns its preset (with ``overrides`` applied via
    :func:`dataclasses.replace`).  An unknown name defines an ad-hoc profile
    and must supply at least ``error_rate``.  ``"native"`` accepts no
    overrides — there is no channel to parameterise.
    """
    if "attributes" in overrides and overrides["attributes"] is not None:
        overrides["attributes"] = tuple(overrides["attributes"])  # type: ignore[arg-type]
    if name in PROFILES:
        base = PROFILES[name]
        if base is None:
            if overrides:
                raise ValueError(f"profile {name!r} takes no parameters, got {sorted(overrides)}")
            return None
        try:
            return replace(base, **overrides) if overrides else base
        except TypeError as exc:
            raise ValueError(f"profile {name!r}: {exc}") from exc
    if "error_rate" not in overrides:
        raise ValueError(
            f"unknown profile {name!r}; choose from {profile_names()} "
            "or define a custom profile with at least error_rate"
        )
    try:
        return ErrorProfile(**overrides)  # type: ignore[arg-type]
    except TypeError as exc:
        raise ValueError(f"profile {name!r}: {exc}") from exc


def apply_profile(
    bundle: DatasetBundle,
    profile: ErrorProfile | None,
    rng: int | np.random.Generator | None = 0,
) -> DatasetBundle:
    """Re-corrupt ``bundle``'s clean relation under ``profile``.

    ``None`` (the native profile) returns the bundle unchanged.  Otherwise
    the generator-injected errors are discarded and fresh ones drawn from
    ``profile``; the clean relation, constraints, and name carry over, so
    downstream code sees an ordinary :class:`DatasetBundle`.
    """
    if profile is None:
        return bundle
    dirty, truth = inject_errors(bundle.clean, profile, rng=rng)
    return DatasetBundle(
        name=bundle.name,
        clean=bundle.clean,
        dirty=dirty,
        truth=truth,
        constraints=bundle.constraints,
    )
