"""Typo channels.

``inject_x`` mirrors the Hospital benchmark's artificial typos ("swapping a
character in the clean cell value with the character 'x'", Appendix A.3);
the remaining channels are the standard BART typo repertoire (substitution,
insertion, deletion, transposition).

Every channel guarantees its output differs from its input, or raises
``ValueError`` when that is impossible (e.g. deleting from a 1-char string
may be fine but transposing "aa" is not) — callers fall back to another
channel.
"""

from __future__ import annotations

import string

import numpy as np

from repro.utils.rng import as_generator

_ALPHABET = string.ascii_lowercase + string.digits


def inject_x(value: str, rng=None) -> str:
    """Replace one character with 'x', or insert an 'x' when value is empty
    or entirely 'x' already."""
    gen = as_generator(rng)
    candidates = [i for i, ch in enumerate(value) if ch != "x"]
    if not candidates:
        pos = int(gen.integers(0, len(value) + 1))
        return value[:pos] + "x" + value[pos:]
    pos = candidates[int(gen.integers(0, len(candidates)))]
    return value[:pos] + "x" + value[pos + 1 :]


def substitute_char(value: str, rng=None) -> str:
    """Replace one character with a different random alphanumeric."""
    if not value:
        raise ValueError("cannot substitute in an empty string")
    gen = as_generator(rng)
    pos = int(gen.integers(0, len(value)))
    original = value[pos]
    choices = [c for c in _ALPHABET if c != original.lower()]
    replacement = choices[int(gen.integers(0, len(choices)))]
    return value[:pos] + replacement + value[pos + 1 :]


def insert_char(value: str, rng=None) -> str:
    """Insert one random alphanumeric character at a random position."""
    gen = as_generator(rng)
    pos = int(gen.integers(0, len(value) + 1))
    ch = _ALPHABET[int(gen.integers(0, len(_ALPHABET)))]
    return value[:pos] + ch + value[pos:]


def delete_char(value: str, rng=None) -> str:
    """Delete one character."""
    if not value:
        raise ValueError("cannot delete from an empty string")
    gen = as_generator(rng)
    pos = int(gen.integers(0, len(value)))
    return value[:pos] + value[pos + 1 :]


def transpose_chars(value: str, rng=None) -> str:
    """Swap two adjacent distinct characters."""
    positions = [i for i in range(len(value) - 1) if value[i] != value[i + 1]]
    if not positions:
        raise ValueError("no adjacent distinct characters to transpose")
    gen = as_generator(rng)
    pos = positions[int(gen.integers(0, len(positions)))]
    return value[:pos] + value[pos + 1] + value[pos] + value[pos + 2 :]


def random_typo(value: str, rng=None) -> str:
    """Apply a random typo channel, retrying until the output differs."""
    gen = as_generator(rng)
    channels = [substitute_char, insert_char, delete_char, transpose_chars]
    for _ in range(8):
        channel = channels[int(gen.integers(0, len(channels)))]
        try:
            result = channel(value, gen)
        except ValueError:
            continue
        if result != value:
            return result
    # Insertion always succeeds and always differs.
    return insert_char(value, gen)
