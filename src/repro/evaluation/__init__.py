"""Evaluation harness: metrics, splits, and the seeded experiment runner.

Implements the paper's protocol (§6.1): precision / recall / F1 over cell
predictions, a three-way split of the ground truth into training / sampling
(active-learning pool) / test sets, and multi-seed repetition reporting the
median so P, R, and F1 stay coupled.
"""

from repro.evaluation.metrics import Metrics, evaluate_predictions
from repro.evaluation.splits import EvaluationSplit, make_split
from repro.evaluation.runner import ExperimentResult, run_trials
from repro.evaluation.report import markdown_table, metrics_table, sweep_table

__all__ = [
    "Metrics",
    "evaluate_predictions",
    "EvaluationSplit",
    "make_split",
    "ExperimentResult",
    "run_trials",
    "markdown_table",
    "metrics_table",
    "sweep_table",
]
