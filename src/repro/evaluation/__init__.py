"""Evaluation harness: metrics, splits, the seeded experiment runner, and
the parallel scenario-matrix sweep.

Implements the paper's protocol (§6.1): precision / recall / F1 over cell
predictions, a three-way split of the ground truth into training / sampling
(active-learning pool) / test sets, and multi-seed repetition reporting the
median so P, R, and F1 stay coupled.  ``matrix``/``store`` scale that
protocol to the paper's full evaluation grid — datasets × error profiles ×
label budgets × methods on a worker pool with a resumable result store
(see ``docs/architecture.md``, "Scenario matrix & sweeps").
"""

from repro.evaluation.metrics import Metrics, evaluate_predictions
from repro.evaluation.splits import EvaluationSplit, make_split
from repro.evaluation.runner import ExperimentResult, run_trials
from repro.evaluation.report import markdown_table, metrics_table, sweep_table
from repro.evaluation.matrix import (
    CoordinateOptions,
    MatrixSpecError,
    ScenarioMatrix,
    ScenarioSpec,
    SweepReport,
    clamp_workers,
    run_matrix,
    run_scenario,
)
from repro.evaluation.store import ResultStore

__all__ = [
    "Metrics",
    "evaluate_predictions",
    "EvaluationSplit",
    "make_split",
    "ExperimentResult",
    "run_trials",
    "markdown_table",
    "metrics_table",
    "sweep_table",
    "CoordinateOptions",
    "MatrixSpecError",
    "ScenarioMatrix",
    "ScenarioSpec",
    "SweepReport",
    "clamp_workers",
    "run_matrix",
    "run_scenario",
    "ResultStore",
]
