"""Declarative scenario matrix + parallel sweep execution.

The paper's evaluation is a grid — datasets × error profiles × label
budgets × methods, several seeded trials each (§6.1, Tables 2–5).  This
module makes that grid a first-class object:

- :class:`ScenarioMatrix` declares the axes (loaded from a TOML/JSON spec
  file or built in code) and expands to concrete :class:`ScenarioSpec`\\ s;
- :class:`ScenarioSpec` is a pure-data description of one grid point with a
  stable content *fingerprint* (SHA-256 over canonical JSON) and
  deterministic derived seeds, so a scenario's result is a function of its
  spec alone — independent of execution order, worker count, or executor;
- :func:`run_scenario` executes one spec end-to-end (generate bundle →
  apply error profile → build method adapter → seeded trials);
- :func:`run_matrix` fans specs out over a process/thread pool and streams
  finished records into a resumable
  :class:`~repro.evaluation.store.ResultStore`.

Seed derivation is *scoped*, not global: the dataset seed depends only on
(matrix seed, dataset, rows) and the trial seed additionally on the error
profile and label budget — but never on the method.  Two methods at the
same grid point therefore see byte-identical dirty data and splits, which
is what makes Table-2-style columns comparable.
"""

from __future__ import annotations

import hashlib
import json
import time
from concurrent.futures import FIRST_COMPLETED, Executor, Future, ProcessPoolExecutor, ThreadPoolExecutor, wait
from contextlib import nullcontext
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.artifacts import ArtifactStore, get_default_store, set_default_store, use_store
from repro.baselines.adapters import build_method
from repro.data.registry import DEFAULT_ROWS, load_dataset
from repro.errors.profiles import apply_profile, resolve_profile
from repro.registry import REGISTRY, ComponentError
from repro.evaluation.report import markdown_table
from repro.evaluation.runner import ExperimentResult, run_trials
from repro.evaluation.store import ResultStore
from repro.utils.timing import Timer

#: Fingerprint format version; bump when the spec schema changes meaning.
_FINGERPRINT_VERSION = "repro.scenario/v1"

#: JSON report schema identifier.
SWEEP_SCHEMA = "repro.sweep/v1"

_EXECUTORS = ("process", "thread", "serial")


class MatrixSpecError(ValueError):
    """A sweep spec is malformed (unknown axis value, bad type, ...)."""


def _canonical(payload: object) -> str:
    """Canonical JSON: sorted keys at every depth, no whitespace."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _derive_seed(*parts: object) -> int:
    """A stable 63-bit seed from a labelled tuple of spec components."""
    digest = hashlib.sha256(_canonical(parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % (2**63)


@dataclass(frozen=True)
class ScenarioSpec:
    """One grid point: pure data, picklable, content-fingerprinted."""

    dataset: str
    error_profile: str
    label_budget: float
    method: str
    rows: int | None = None
    error_params: Mapping[str, object] = field(default_factory=dict)
    method_params: Mapping[str, object] = field(default_factory=dict)
    trials: int = 3
    sampling_fraction: float = 0.2
    seed: int = 0

    def __post_init__(self) -> None:
        # Resolve the registry's default size *now*: the fingerprint (and
        # dataset seed) must pin the relation actually generated, not a
        # None that would silently track future DEFAULT_ROWS edits.
        if self.rows is None:
            object.__setattr__(self, "rows", DEFAULT_ROWS.get(self.dataset))

    def to_dict(self) -> dict[str, object]:
        """JSON-able canonical form (the fingerprint input)."""
        return {
            "dataset": self.dataset,
            "rows": self.rows,
            "error_profile": self.error_profile,
            "error_params": dict(self.error_params),
            "label_budget": self.label_budget,
            "method": self.method,
            "method_params": dict(self.method_params),
            "trials": self.trials,
            "sampling_fraction": self.sampling_fraction,
            "seed": self.seed,
        }

    def fingerprint(self) -> str:
        """SHA-256 over the canonical spec.  Stable across dict ordering,
        processes, and sessions — the :class:`ResultStore` key."""
        payload = f"{_FINGERPRINT_VERSION}:{_canonical(self.to_dict())}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- scoped seeds ----------------------------------------------------
    # The scoping rule (see module docstring): widen the derivation tuple
    # only with the axes that should change the artefact.

    @property
    def dataset_seed(self) -> int:
        """Seeds bundle generation: same across profiles/budgets/methods."""
        return _derive_seed("dataset", self.seed, self.dataset, self.rows)

    @property
    def errors_seed(self) -> int:
        """Seeds error injection: same across budgets/methods."""
        return _derive_seed(
            "errors", self.seed, self.dataset, self.rows,
            self.error_profile, dict(self.error_params),
        )

    @property
    def trials_seed(self) -> int:
        """Seeds the trial splits: same across methods (comparable columns)."""
        return _derive_seed(
            "trials", self.seed, self.dataset, self.rows,
            self.error_profile, dict(self.error_params),
            self.label_budget, self.sampling_fraction, self.trials,
        )


def _axis_entry(raw: object, axis: str) -> tuple[str, dict[str, object]]:
    """Normalise a spec-file axis entry (string or table) to (name, params)."""
    if isinstance(raw, str):
        return raw, {}
    if isinstance(raw, Mapping):
        entry = dict(raw)
        name = entry.pop("name", None)
        if not isinstance(name, str):
            raise MatrixSpecError(f"{axis} entry {raw!r} needs a string 'name'")
        return name, entry
    raise MatrixSpecError(f"{axis} entry {raw!r} must be a string or a table with 'name'")


@dataclass
class ScenarioMatrix:
    """The declared grid: axes + shared knobs, expandable to specs.

    Axis entries are ``(name, params)`` pairs; dataset params may carry
    ``rows``, profile params override :mod:`repro.errors.profiles` presets,
    method params feed :func:`repro.baselines.adapters.build_method`.
    """

    datasets: list[tuple[str, dict[str, object]]]
    error_profiles: list[tuple[str, dict[str, object]]]
    label_budgets: list[float]
    methods: list[tuple[str, dict[str, object]]]
    trials: int = 3
    sampling_fraction: float = 0.2
    seed: int = 0

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ScenarioMatrix":
        """Validate and build a matrix from a parsed spec mapping.

        The mapping may be the spec's top level or nested under a
        ``"matrix"`` key (the TOML layout).  Every axis value is validated
        eagerly — unknown datasets, methods, profiles, or parameters fail
        here, before any scenario runs.
        """
        if "matrix" in payload and isinstance(payload["matrix"], Mapping):
            strays = set(payload) - {"matrix"}
            if strays:
                raise MatrixSpecError(
                    f"keys {sorted(strays)} sit outside the [matrix] table and "
                    "would be silently ignored; move them under [matrix]"
                )
            payload = payload["matrix"]  # type: ignore[assignment]
        known = {
            "datasets", "error_profiles", "label_budgets", "methods",
            "trials", "sampling_fraction", "seed",
        }
        unknown = set(payload) - known
        if unknown:
            raise MatrixSpecError(f"unknown spec keys {sorted(unknown)}; valid: {sorted(known)}")

        def non_empty_list(key: str, value: object) -> Sequence:
            # str is a Sequence: without the explicit exclusion a bare
            # "hospital" would be iterated per character.
            if isinstance(value, (str, bytes)) or not isinstance(value, Sequence) or not value:
                raise MatrixSpecError(f"spec needs a non-empty {key!r} list")
            return value

        for key in ("datasets", "label_budgets", "methods"):
            non_empty_list(key, payload.get(key))

        datasets = []
        for raw in payload["datasets"]:  # type: ignore[union-attr]
            name, params = _axis_entry(raw, "datasets")
            try:
                REGISTRY.entry("dataset", name)
            except ComponentError as exc:
                raise MatrixSpecError(str(exc)) from exc
            extra = set(params) - {"rows"}
            if extra:
                raise MatrixSpecError(f"dataset {name!r}: unknown keys {sorted(extra)}")
            rows = params.get("rows")
            if rows is not None and (not isinstance(rows, int) or rows <= 0):
                raise MatrixSpecError(f"dataset {name!r}: rows must be a positive integer")
            datasets.append((name, params))

        profiles_raw = non_empty_list("error_profiles", payload.get("error_profiles", ["native"]))
        profiles = []
        for raw in profiles_raw:  # type: ignore[union-attr]
            name, params = _axis_entry(raw, "error_profiles")
            try:
                resolve_profile(name, **params)
            except ValueError as exc:
                raise MatrixSpecError(str(exc)) from exc
            profiles.append((name, params))

        budgets = []
        for budget in payload["label_budgets"]:  # type: ignore[union-attr]
            if not isinstance(budget, (int, float)) or not 0.0 < float(budget) < 1.0:
                raise MatrixSpecError(f"label budget {budget!r} must be in (0, 1)")
            budgets.append(float(budget))

        methods = []
        for raw in payload["methods"]:  # type: ignore[union-attr]
            name, params = _axis_entry(raw, "methods")
            # build_method resolves through the registry: built-in keys and
            # 'module:attr' references both validate here, before any run.
            try:
                build_method(name, params)
            except ValueError as exc:
                raise MatrixSpecError(str(exc)) from exc
            methods.append((name, params))

        trials = payload.get("trials", 3)
        if not isinstance(trials, int) or trials < 1:
            raise MatrixSpecError("trials must be a positive integer")
        sampling = payload.get("sampling_fraction", 0.2)
        if not isinstance(sampling, (int, float)) or not 0.0 <= float(sampling) < 1.0:
            raise MatrixSpecError("sampling_fraction must be in [0, 1)")
        seed = payload.get("seed", 0)
        if not isinstance(seed, int):
            raise MatrixSpecError("seed must be an integer")

        return cls(
            datasets=datasets,
            error_profiles=profiles,
            label_budgets=budgets,
            methods=methods,
            trials=trials,
            sampling_fraction=float(sampling),
            seed=seed,
        )

    @classmethod
    def from_file(cls, path: str | Path) -> "ScenarioMatrix":
        """Load a spec file; format chosen by suffix (.toml or .json)."""
        path = Path(path)
        if not path.exists():
            raise MatrixSpecError(f"spec file not found: {path}")
        suffix = path.suffix.lower()
        if suffix == ".toml":
            import tomllib

            try:
                payload = tomllib.loads(path.read_text(encoding="utf-8"))
            except tomllib.TOMLDecodeError as exc:
                raise MatrixSpecError(f"{path}: invalid TOML: {exc}") from exc
        elif suffix == ".json":
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except json.JSONDecodeError as exc:
                raise MatrixSpecError(f"{path}: invalid JSON: {exc}") from exc
        else:
            raise MatrixSpecError(f"{path}: unsupported spec format {suffix!r} (use .toml or .json)")
        if not isinstance(payload, Mapping):
            raise MatrixSpecError(f"{path}: spec must be a mapping at top level")
        try:
            return cls.from_dict(payload)
        except MatrixSpecError as exc:
            raise MatrixSpecError(f"{path}: {exc}") from exc

    def to_dict(self) -> dict[str, object]:
        """JSON-able form (embedded in sweep reports)."""
        def axis(entries):
            return [{"name": n, **p} if p else n for n, p in entries]

        return {
            "datasets": axis(self.datasets),
            "error_profiles": axis(self.error_profiles),
            "label_budgets": list(self.label_budgets),
            "methods": axis(self.methods),
            "trials": self.trials,
            "sampling_fraction": self.sampling_fraction,
            "seed": self.seed,
        }

    def expand(self) -> list[ScenarioSpec]:
        """The cartesian product in declared order, deduped by fingerprint."""
        specs: list[ScenarioSpec] = []
        seen: set[str] = set()
        for dataset, dataset_params in self.datasets:
            for profile, profile_params in self.error_profiles:
                for budget in self.label_budgets:
                    for method, method_params in self.methods:
                        spec = ScenarioSpec(
                            dataset=dataset,
                            rows=dataset_params.get("rows"),  # type: ignore[arg-type]
                            error_profile=profile,
                            error_params=dict(profile_params),
                            label_budget=budget,
                            method=method,
                            method_params=dict(method_params),
                            trials=self.trials,
                            sampling_fraction=self.sampling_fraction,
                            seed=self.seed,
                        )
                        fingerprint = spec.fingerprint()
                        if fingerprint not in seen:
                            seen.add(fingerprint)
                            specs.append(spec)
        return specs


def scenario_record(spec: ScenarioSpec, result: ExperimentResult, elapsed: float) -> dict:
    """Serialise one executed scenario to the store/report record shape.

    Accuracy fields (``metrics``, ``trials``, ``mean_f1``, ``std_f1``) are
    pure functions of the spec; only ``runtimes``/``median_runtime``/
    ``elapsed`` carry wall-clock noise, so equality checks across executors
    should compare the accuracy fields.
    """
    median = result.median
    return {
        "fingerprint": spec.fingerprint(),
        "spec": spec.to_dict(),
        "metrics": {
            "precision": median.precision,
            "recall": median.recall,
            "f1": median.f1,
        },
        "mean_f1": result.mean_f1,
        "std_f1": result.std_f1,
        "trials": [
            {"precision": m.precision, "recall": m.recall, "f1": m.f1}
            for m in result.trials
        ],
        "runtimes": list(result.runtimes),
        "median_runtime": result.median_runtime,
        "elapsed": elapsed,
    }


def run_scenario(spec: ScenarioSpec) -> dict:
    """Execute one scenario end-to-end; deterministic given the spec."""
    bundle = load_dataset(spec.dataset, num_rows=spec.rows, seed=spec.dataset_seed)
    profile = resolve_profile(spec.error_profile, **dict(spec.error_params))
    bundle = apply_profile(bundle, profile, rng=spec.errors_seed)
    method = build_method(spec.method, spec.method_params)
    with Timer() as timer:
        result = run_trials(
            method,
            bundle,
            spec.label_budget,
            num_trials=spec.trials,
            sampling_fraction=spec.sampling_fraction,
            seed=spec.trials_seed,
        )
    return scenario_record(spec, result, timer.elapsed)


def _init_worker(directory: str | None, backend: str | None) -> None:
    """Process-pool initializer: install the ambient artifact store and/or
    compute backend for every detector the worker builds."""
    if directory is not None:
        set_default_store(ArtifactStore(directory=directory))
    if backend is not None:
        from repro.nn.backend import set_default_backend

        set_default_backend(backend)


def _run_with_artifact_stats(runner: Callable[["ScenarioSpec"], dict], spec) -> dict:
    """Run one scenario and report the artifact-store counter delta it
    caused, so the coordinator can aggregate hit/miss totals across
    workers without touching the (resume-stable) scenario record."""
    store = get_default_store()
    if store is None:
        return {"record": runner(spec), "artifact_stats": None}
    before = store.stats.as_dict()
    record = runner(spec)
    after = store.stats.as_dict()
    return {
        "record": record,
        "artifact_stats": {k: after[k] - before[k] for k in after},
    }


def _ambient_store(artifact_dir: str | None):
    """Context installing the in-process ambient artifact store, if any."""
    if artifact_dir is None:
        return nullcontext(None)
    return use_store(ArtifactStore(directory=artifact_dir))


def _ambient_backend(backend: str | None):
    """Context installing the in-process ambient compute backend, if any."""
    if backend is None:
        return nullcontext(None)
    from repro.nn.backend import use_backend

    return use_backend(backend)


#: Absolute ceiling on pool size — beyond this, worker startup cost
#: dominates any timesharing benefit.
MAX_WORKERS = 64


def clamp_workers(requested: int, pending: int) -> int:
    """Clamp a worker request to ``[1, min(pending, MAX_WORKERS)]``.

    Zero/negative requests mean one worker, and there is never a reason
    for more workers than pending scenarios.  Oversubscribing CPUs is
    deliberately allowed: workers beyond the core count just timeshare,
    and capping at ``os.cpu_count()`` would silently serialise sweeps on
    small CI runners.
    """
    return max(1, min(int(requested), max(int(pending), 1), MAX_WORKERS))


@dataclass
class SweepReport:
    """The outcome of one :func:`run_matrix` call."""

    matrix: ScenarioMatrix
    records: list[dict]
    executed: int
    cached: int
    workers: int
    #: Artifact-store summary (``{"dir": ..., "stats": {...}}``) when the
    #: sweep ran with a shared artifact directory; ``None`` otherwise.
    #: Stats cover freshly executed scenarios only — records themselves
    #: stay pure functions of their spec (the resume contract).
    artifacts: dict | None = None
    #: Cooperative-mode summary (``{"dir", "worker", "ttl", "executed",
    #: "remote", ...}``) when the sweep ran with ``coordinate=``; ``None``
    #: for single-host sweeps.
    coordination: dict | None = None

    @property
    def total(self) -> int:
        return len(self.records)

    def table(self) -> str:
        """Markdown summary table, one scenario per row, expansion order."""
        rows = []
        for record in self.records:
            spec = record["spec"]
            metrics = record["metrics"]
            rows.append([
                spec["dataset"],
                spec["error_profile"],
                f"{spec['label_budget']:g}",
                spec["method"],
                f"{metrics['precision']:.3f}",
                f"{metrics['recall']:.3f}",
                f"{metrics['f1']:.3f}",
                f"{record['mean_f1']:.3f}±{record['std_f1']:.3f}",
                f"{record['median_runtime']:.2f}",
                "cached" if record.get("cached") else "run",
            ])
        return markdown_table(
            ["dataset", "profile", "budget", "method", "P", "R", "F1",
             "F1 mean±std", "runtime (s)", "source"],
            rows,
        )

    def to_json(self) -> dict:
        """The ``repro.sweep/v1`` report payload.

        The ``artifacts`` key is additive (present only for sweeps run
        with ``--artifacts``); consumers of the original schema are
        unaffected.
        """
        payload = {
            "schema": SWEEP_SCHEMA,
            "matrix": self.matrix.to_dict(),
            "total": self.total,
            "executed": self.executed,
            "cached": self.cached,
            "workers": self.workers,
            "scenarios": self.records,
        }
        if self.artifacts is not None:
            payload["artifacts"] = self.artifacts
        if self.coordination is not None:
            payload["coordination"] = self.coordination
        return payload


def _make_pool(
    executor: str, workers: int, artifact_dir: str | None, backend: str | None
) -> Executor:
    if executor == "process":
        if artifact_dir is not None or backend is not None:
            return ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker,
                initargs=(artifact_dir, backend),
            )
        return ProcessPoolExecutor(max_workers=workers)
    return ThreadPoolExecutor(max_workers=workers)


def run_matrix(
    matrix: ScenarioMatrix,
    store: ResultStore | None = None,
    workers: int = 1,
    resume: bool = False,
    executor: str = "process",
    on_result: Callable[[dict], None] | None = None,
    scenario_runner: Callable[[ScenarioSpec], dict] = run_scenario,
    artifact_dir: str | Path | None = None,
    backend: str | None = None,
    coordinate: "CoordinateOptions | None" = None,
) -> SweepReport:
    """Run every scenario in ``matrix``, fanning out over a worker pool.

    With ``resume=True`` and a ``store``, scenarios whose fingerprint is
    already on disk are served from the store (``record["cached"]`` is
    True) and only the missing ones execute; every freshly executed record
    is appended to the store as soon as it finishes, so a killed sweep
    restarts where it left off.  Results are returned in expansion order
    regardless of completion order, and each scenario is self-seeded, so
    metrics are identical for any ``workers``/``executor`` choice.

    ``executor`` is ``"process"`` (default; scenarios are CPU-bound),
    ``"thread"``, or ``"serial"`` (in-process loop, also used when only one
    worker is effective).  ``on_result`` is called in completion order from
    the coordinating process.

    ``artifact_dir`` attaches a shared fitted-artifact store directory
    (:mod:`repro.artifacts`): every worker serves trained embeddings and
    fitted featurizer states from it, so scenarios that fit the same
    component on the same data (the Table-2 shape: many methods × budgets
    × trials over one dirty relation) share one fit instead of retraining.
    Fits are content-seeded, so metrics are bit-identical with or without
    the store, at any worker count.

    ``backend`` installs a process/thread-ambient compute backend
    (:func:`repro.nn.backend.set_default_backend`) in every worker, so each
    scenario's detector trains and scores on it without the name appearing
    in any scenario fingerprint — metrics at float64 are bit-identical
    across backends, so cached records stay valid.

    ``coordinate`` switches to the cooperative claim-loop executor mode:
    instead of partitioning the matrix up front, this invocation becomes
    one of N independent workers (possibly on other hosts sharing the
    store's filesystem) that *claim* scenarios one at a time through lease
    files (:mod:`repro.coordination`) and drain the matrix together.
    Requires a ``store`` (the shared completion ledger) and implies
    ``resume`` — work already in the store is never re-claimed.
    """
    if executor not in _EXECUTORS:
        raise ValueError(f"unknown executor {executor!r}; choose from {_EXECUTORS}")
    artifact_dir = str(artifact_dir) if artifact_dir is not None else None
    if coordinate is not None:
        return _run_coordinated(
            matrix,
            store,
            workers=workers,
            executor=executor,
            on_result=on_result,
            scenario_runner=scenario_runner,
            artifact_dir=artifact_dir,
            backend=backend,
            coordinate=coordinate,
        )
    specs = matrix.expand()
    fingerprints = [spec.fingerprint() for spec in specs]
    records: dict[str, dict] = {}
    pending: list[ScenarioSpec] = []
    for spec, fingerprint in zip(specs, fingerprints):
        stored = store.get(fingerprint) if (resume and store is not None) else None
        if stored is not None:
            record = dict(stored)
            record["cached"] = True
            records[fingerprint] = record
            if on_result is not None:
                on_result(record)
        else:
            pending.append(spec)

    artifact_totals: dict[str, int] = {}
    # The per-scenario stats envelope is only needed where the coordinator
    # cannot see the store itself: the process executor.  In-process
    # executors (serial/thread) read the single shared store's counters
    # directly, which is also exact under thread interleaving.
    wrap_stats = artifact_dir is not None and executor == "process"

    def unwrap(result: dict) -> dict:
        """Strip the artifact-stats envelope (present iff wrap_stats)."""
        if not wrap_stats:
            return result
        delta = result.get("artifact_stats")
        if delta:
            for counter, value in delta.items():
                artifact_totals[counter] = artifact_totals.get(counter, 0) + value
        return result["record"]

    def finish(record: dict) -> None:
        record["cached"] = False
        if store is not None:
            store.put(record)
        records[record["fingerprint"]] = record
        if on_result is not None:
            on_result(record)

    def scenario_error(spec: ScenarioSpec, exc: Exception) -> RuntimeError:
        return RuntimeError(
            f"scenario {spec.dataset}/{spec.error_profile}/{spec.label_budget:g}"
            f"/{spec.method} (fingerprint {spec.fingerprint()[:12]}) failed: {exc}"
        )

    task: Callable[[ScenarioSpec], dict] = scenario_runner
    if wrap_stats:
        task = partial(_run_with_artifact_stats, scenario_runner)

    effective = clamp_workers(workers, len(pending))
    if pending:
        if effective == 1 or executor == "serial":
            effective = 1
            with _ambient_store(artifact_dir) as shared, _ambient_backend(backend):
                for spec in pending:
                    try:
                        result = task(spec)
                    except Exception as exc:
                        raise scenario_error(spec, exc) from exc
                    finish(unwrap(result))
                if shared is not None:
                    # Exact totals straight from the single shared store.
                    artifact_totals = shared.stats.as_dict()
        else:
            coordinator_store = (
                _ambient_store(artifact_dir) if executor == "thread" else nullcontext(None)
            )
            with coordinator_store as shared, _make_pool(
                executor, effective, artifact_dir, backend
            ) as pool:
                futures = {pool.submit(task, spec): spec for spec in pending}
                not_done = set(futures)
                try:
                    while not_done:
                        done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                        # The done set is unordered: flush every completed
                        # sibling first so a failure never discards finished
                        # work (the resume contract), then raise.
                        failed = None
                        for future in done:
                            if future.exception() is not None:
                                failed = failed or future
                            else:
                                finish(unwrap(future.result()))
                        if failed is not None:
                            # Drop queued-but-unstarted scenarios, but let
                            # in-flight ones run to completion and flush
                            # their records — a --resume rerun then repeats
                            # only the failed scenario, not finished work.
                            pool.shutdown(wait=False, cancel_futures=True)
                            for future in not_done:
                                # wait() must not be used here: futures
                                # cancelled by the shutdown queue-drain never
                                # reach CANCELLED_AND_NOTIFIED, so wait()
                                # would block forever.  exception() blocks
                                # only on genuinely in-flight work.
                                if not future.cancelled() and future.exception() is None:
                                    finish(unwrap(future.result()))
                            exc = failed.exception()
                            raise scenario_error(futures[failed], exc) from exc
                except BaseException:
                    # Interrupts and store failures: don't burn CPU
                    # finishing a doomed sweep.
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise
                if shared is not None:
                    artifact_totals = shared.stats.as_dict()
    return SweepReport(
        matrix=matrix,
        records=[records[fingerprint] for fingerprint in fingerprints],
        executed=len(pending),
        cached=len(specs) - len(pending),
        workers=effective,
        artifacts=(
            None
            if artifact_dir is None
            else {"dir": artifact_dir, "stats": artifact_totals}
        ),
    )


@dataclass(frozen=True)
class CoordinateOptions:
    """Knobs for the cooperative claim-loop executor mode of
    :func:`run_matrix` (``repro sweep --coordinate``).

    ``directory`` is the shared coordination directory (lease files +
    audit log); it defaults to ``<store path>.coord/`` so every worker and
    ``repro report`` agree on it with no extra configuration.  ``ttl`` is
    the stale-lease reclaim threshold: a worker silent for longer than
    this forfeits its in-flight scenarios to the survivors.  Size it to a
    small multiple of the longest expected scenario *claim-to-heartbeat*
    gap — i.e. filesystem latency, not scenario runtime (heartbeats renew
    during execution) — 60 s is comfortable on NFS.  ``heartbeat_interval``
    defaults to ``ttl / 4``; ``poll_interval`` is the idle re-scan period
    while other workers hold the remaining scenarios.
    """

    directory: str | Path | None = None
    worker_id: str | None = None
    ttl: float = 60.0
    heartbeat_interval: float | None = None
    poll_interval: float | None = None


def _coordinated_error(spec: ScenarioSpec, exc: BaseException) -> RuntimeError:
    return RuntimeError(
        f"scenario {spec.dataset}/{spec.error_profile}/{spec.label_budget:g}"
        f"/{spec.method} (fingerprint {spec.fingerprint()[:12]}) failed: {exc}"
    )


def _run_coordinated(
    matrix: ScenarioMatrix,
    store: ResultStore | None,
    workers: int,
    executor: str,
    on_result: Callable[[dict], None] | None,
    scenario_runner: Callable[[ScenarioSpec], dict],
    artifact_dir: str | None,
    backend: str | None,
    coordinate: CoordinateOptions,
) -> SweepReport:
    """The claim-loop executor: drain the matrix as one cooperating worker.

    Control flow per slot: *completion scan* (only fingerprints missing
    from the store are candidates — finished work is never re-claimed,
    even across restarts) → *claim* (atomic lease create; losing the race
    just moves on) → *execute* → *append to the store* → *release*.  When
    nothing is claimable but the matrix is not drained, the worker polls:
    other workers' completions arrive via :meth:`ResultStore.refresh`, and
    leases whose heartbeat exceeded the TTL are reclaimed so a killed
    worker's scenarios re-enter the pool.  The invocation returns only
    when the *whole* matrix is complete, with records for every scenario —
    locally executed or not.
    """
    from repro.coordination import HeartbeatThread, WorkQueue, coordination_dir

    if store is None:
        raise ValueError(
            "coordinated sweeps need a store: it is the shared completion ledger"
        )
    specs = matrix.expand()
    fingerprints = [spec.fingerprint() for spec in specs]
    by_fp = dict(zip(fingerprints, specs))
    directory = (
        Path(coordinate.directory)
        if coordinate.directory is not None
        else coordination_dir(store.path)
    )
    queue = WorkQueue(directory, worker_id=coordinate.worker_id, ttl=coordinate.ttl)
    poll = (
        coordinate.poll_interval
        if coordinate.poll_interval is not None
        else min(1.0, queue.ttl / 4.0)
    )

    store.refresh()
    initially_cached = sum(1 for fp in fingerprints if fp in store)
    executed_local: set[str] = set()
    reported: set[str] = set()

    def report(fingerprint: str, record: dict) -> None:
        reported.add(fingerprint)
        if on_result is not None:
            on_result(record)

    def stored_record(fingerprint: str, remote: bool) -> dict:
        record = dict(store.get(fingerprint) or {})
        record["cached"] = True
        if remote:
            record["remote"] = True
        return record

    for fp in fingerprints:
        if fp in store:
            report(fp, stored_record(fp, remote=False))

    wrap_stats = artifact_dir is not None and executor == "process"
    artifact_totals: dict[str, int] = {}

    def unwrap(result: dict) -> dict:
        if not wrap_stats:
            return result
        delta = result.get("artifact_stats")
        if delta:
            for counter, value in delta.items():
                artifact_totals[counter] = artifact_totals.get(counter, 0) + value
        return result["record"]

    task: Callable[[ScenarioSpec], dict] = scenario_runner
    if wrap_stats:
        task = partial(_run_with_artifact_stats, scenario_runner)

    def claim_next(busy: set[str]) -> str | None:
        """Claim the next runnable scenario; None when nothing claimable.

        After winning a claim the store is re-scanned: the lease may have
        been absent because another worker *finished* the scenario between
        our completion scan and the claim — then the claim is released
        unused (``skip``) instead of re-executing done work.
        """
        for fp in store.missing(fingerprints):
            if fp in busy:
                continue
            if not queue.claim(fp):
                continue
            store.refresh()
            if fp in store:
                queue.release(fp, event="skip")
                continue
            queue.audit("execute", fp)
            return fp
        return None

    def finish_local(fingerprint: str, result: dict) -> None:
        # Check the lease *before* the put: a worker that slept past its
        # TTL was reclaimed, and the scenario now belongs to whoever
        # re-claimed it.  Writing our record anyway would double-write the
        # store (latest-wins keeps it correct, but the audit would show a
        # completion from a worker that no longer held the lease).  The
        # "lost" audit event was already appended at detection time by
        # renew(); here we abandon the record and let note_remote() report
        # the new owner's result.
        if fingerprint in heartbeat.lost or fingerprint not in queue.held():
            queue.audit("abandoned", fingerprint)
            return
        record = unwrap(result)
        record["cached"] = False
        store.put(record)
        executed_local.add(fingerprint)
        queue.release(fingerprint, event="complete")
        report(fingerprint, dict(record))

    def note_remote() -> None:
        """Report scenarios other workers completed since the last scan."""
        for fp in fingerprints:
            if fp not in reported and fp in store:
                report(fp, stored_record(fp, remote=True))

    def idle_step() -> bool:
        """One poll iteration; True when the matrix has fully drained."""
        store.refresh()
        note_remote()
        missing = store.missing(fingerprints)
        if not missing:
            return True
        if not queue.reclaim_stale(missing):
            time.sleep(poll)
        return False

    effective = clamp_workers(workers, max(len(store.missing(fingerprints)), 1))
    heartbeat = HeartbeatThread(queue, coordinate.heartbeat_interval)

    if effective == 1 or executor == "serial":
        effective = 1
        with _ambient_store(artifact_dir) as shared, _ambient_backend(backend), heartbeat:
            while True:
                fp = claim_next(set())
                if fp is None:
                    if idle_step():
                        break
                    continue
                try:
                    result = task(by_fp[fp])
                except BaseException as exc:
                    queue.release(fp, event="failed")
                    if isinstance(exc, Exception):
                        raise _coordinated_error(by_fp[fp], exc) from exc
                    raise
                finish_local(fp, result)
            if shared is not None:
                artifact_totals = shared.stats.as_dict()
    else:
        coordinator_store = (
            _ambient_store(artifact_dir) if executor == "thread" else nullcontext(None)
        )
        with coordinator_store as shared, heartbeat, _make_pool(
            executor, effective, artifact_dir, backend
        ) as pool:
            in_flight: dict[Future, str] = {}
            try:
                while True:
                    while len(in_flight) < effective:
                        fp = claim_next(set(in_flight.values()))
                        if fp is None:
                            break
                        in_flight[pool.submit(task, by_fp[fp])] = fp
                    if not in_flight:
                        if idle_step():
                            break
                        continue
                    done, _ = wait(set(in_flight), return_when=FIRST_COMPLETED)
                    failed: tuple[str, Future] | None = None
                    for future in done:
                        fp = in_flight.pop(future)
                        if future.exception() is not None:
                            # Free the lease: another worker may retry.
                            queue.release(fp, event="failed")
                            failed = failed or (fp, future)
                        else:
                            finish_local(fp, future.result())
                    if failed is not None:
                        # Flush finished siblings, free unstarted claims,
                        # then raise — mirrors run_matrix's contract that a
                        # failure never discards completed work.
                        pool.shutdown(wait=False, cancel_futures=True)
                        for future in list(in_flight):
                            fp = in_flight.pop(future)
                            if future.cancelled():
                                queue.release(fp)
                            elif future.exception() is not None:
                                queue.release(fp, event="failed")
                            else:
                                finish_local(fp, future.result())
                        exc = failed[1].exception()
                        raise _coordinated_error(by_fp[failed[0]], exc) from exc
            except BaseException:
                # Interrupted: free every lease still held so surviving
                # workers pick the scenarios up without waiting for the
                # TTL (our discarded in-flight results don't count —
                # whoever re-runs them lands the same bits anyway).
                pool.shutdown(wait=False, cancel_futures=True)
                for fp in queue.held():
                    queue.release(fp, event="abort")
                raise
            if shared is not None:
                artifact_totals = shared.stats.as_dict()

    records = []
    for fp in fingerprints:
        record = dict(store.get(fp) or {})
        record["cached"] = fp not in executed_local
        records.append(record)
    return SweepReport(
        matrix=matrix,
        records=records,
        executed=len(executed_local),
        cached=len(specs) - len(executed_local),
        workers=effective,
        artifacts=(
            None
            if artifact_dir is None
            else {"dir": artifact_dir, "stats": artifact_totals}
        ),
        coordination={
            "dir": str(queue.directory),
            "worker": queue.worker_id,
            "ttl": queue.ttl,
            "executed": len(executed_local),
            "remote": len(specs) - len(executed_local) - initially_cached,
            "initially_cached": initially_cached,
        },
    )
