"""Precision / recall / F1 over cell-level error predictions (§6.1)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.dataset.table import Cell


@dataclass(frozen=True)
class Metrics:
    """The paper's accuracy triple."""

    precision: float
    recall: float
    f1: float
    true_positives: int = 0
    false_positives: int = 0
    false_negatives: int = 0

    def as_row(self) -> dict[str, float]:
        return {"P": round(self.precision, 3), "R": round(self.recall, 3), "F1": round(self.f1, 3)}


def evaluate_predictions(
    predicted_errors: Iterable[Cell],
    true_errors: Iterable[Cell],
    evaluated_cells: Iterable[Cell],
) -> Metrics:
    """Score predictions against truth over an evaluation cell set.

    Both prediction and truth sets are intersected with ``evaluated_cells``
    (the test split) so that training cells never contaminate the score.
    Precision with zero predictions is defined as 0 — the convention the
    paper's tables use (methods that flag nothing score 0 across the board).
    """
    scope = set(evaluated_cells)
    predicted = set(predicted_errors) & scope
    truth = set(true_errors) & scope
    tp = len(predicted & truth)
    fp = len(predicted - truth)
    fn = len(truth - predicted)
    precision = tp / (tp + fp) if (tp + fp) else 0.0
    recall = tp / (tp + fn) if (tp + fn) else 0.0
    f1 = 2 * precision * recall / (precision + recall) if (precision + recall) else 0.0
    return Metrics(precision, recall, f1, tp, fp, fn)
