"""Markdown report generation for experiment results.

The benchmark harness prints paper-style tables to stdout; downstream users
running their own sweeps usually want the same tables as markdown for a
notebook, PR description, or paper draft.  This module renders metric
dictionaries and :class:`~repro.evaluation.runner.ExperimentResult` sweeps
into aligned GitHub-flavoured markdown.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.evaluation.metrics import Metrics
from repro.evaluation.runner import ExperimentResult


def markdown_table(header: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a GitHub-flavoured markdown table with aligned columns."""
    if not header:
        raise ValueError("header must not be empty")
    for row in rows:
        if len(row) != len(header):
            raise ValueError("row arity does not match header")
    cells = [[str(h) for h in header]] + [[str(v) for v in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(header))]

    def line(row: Sequence[str]) -> str:
        return "| " + " | ".join(v.ljust(w) for v, w in zip(row, widths)) + " |"

    separator = "|" + "|".join("-" * (w + 2) for w in widths) + "|"
    return "\n".join([line(cells[0]), separator] + [line(r) for r in cells[1:]])


def metrics_table(results: Mapping[str, Metrics], title: str | None = None) -> str:
    """One method per row: precision / recall / F1.

    ``results`` maps method name → :class:`Metrics` (e.g. one Table 2
    column group).  Rows keep the mapping's insertion order.
    """
    rows = [
        [name, f"{m.precision:.3f}", f"{m.recall:.3f}", f"{m.f1:.3f}"]
        for name, m in results.items()
    ]
    table = markdown_table(["Method", "P", "R", "F1"], rows)
    return f"### {title}\n\n{table}" if title else table


def sweep_table(
    results: Mapping[str, ExperimentResult],
    parameter_name: str = "setting",
    include_runtime: bool = False,
) -> str:
    """One sweep point per row, using each result's median trial.

    ``results`` maps a sweep setting (e.g. ``"5%"`` training data) to an
    :class:`ExperimentResult`; the rendered row reports the F1-median trial
    so P/R/F1 stay coupled, plus mean±std F1 across trials.
    """
    header = [parameter_name, "P", "R", "F1", "F1 mean±std"]
    if include_runtime:
        header.append("runtime (s)")
    rows = []
    for setting, result in results.items():
        median = result.median
        row = [
            setting,
            f"{median.precision:.3f}",
            f"{median.recall:.3f}",
            f"{median.f1:.3f}",
            f"{result.mean_f1:.3f}±{result.std_f1:.3f}",
        ]
        if include_runtime:
            row.append(f"{result.median_runtime:.2f}")
        rows.append(row)
    return markdown_table(header, rows)
