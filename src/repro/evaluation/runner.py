"""Seeded multi-trial experiment runner.

§6.1: "we perform 10 runs with different random seeds ... we report the
median performance" — medians keep precision, recall, and F1 coupled (the
median *run by F1* is reported, not the per-metric median, for exactly that
reason).  The runner also records wall-clock time per trial for Table 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.data.bundle import DatasetBundle
from repro.evaluation.metrics import Metrics, evaluate_predictions
from repro.evaluation.splits import EvaluationSplit, make_split
from repro.utils.rng import spawn_generators
from repro.utils.timing import Timer

#: A method under evaluation: (bundle, split, rng) -> predicted error cells.
MethodFn = Callable[[DatasetBundle, EvaluationSplit, np.random.Generator], "set"]


@dataclass
class ExperimentResult:
    """Per-trial metrics plus the median summary."""

    trials: list[Metrics] = field(default_factory=list)
    runtimes: list[float] = field(default_factory=list)

    @property
    def median(self) -> Metrics:
        """The trial with median F1 (couples P, R, and F1, as in §6.1).

        Trials are ranked by ``(f1, precision, recall)`` so ties break
        deterministically.  For an **even** trial count the *lower* middle
        trial (index ``(n - 1) // 2``) is reported: the result is always an
        actually observed run — never an interpolated value — and the
        choice is pessimistic rather than optimistic.  One trial reports
        itself; two trials report the weaker one.
        """
        if not self.trials:
            raise ValueError("no trials recorded")
        ranked = sorted(self.trials, key=lambda m: (m.f1, m.precision, m.recall))
        return ranked[(len(ranked) - 1) // 2]

    @property
    def mean_f1(self) -> float:
        return float(np.mean([m.f1 for m in self.trials]))

    @property
    def std_f1(self) -> float:
        return float(np.std([m.f1 for m in self.trials]))

    @property
    def median_runtime(self) -> float:
        return float(np.median(self.runtimes)) if self.runtimes else 0.0


def run_trials(
    method: MethodFn,
    bundle: DatasetBundle,
    training_fraction: float,
    num_trials: int = 3,
    sampling_fraction: float = 0.2,
    seed: int = 0,
    warmup: bool = False,
) -> ExperimentResult:
    """Evaluate ``method`` over ``num_trials`` random splits.

    ``method`` receives the bundle, a fresh split, and a per-trial RNG and
    must return the set of cells it predicts to be erroneous.  Predictions
    are scored on the split's test cells only.

    ``warmup`` runs the method once on an extra split before the timed
    trials, untimed and unscored.  Use it when measuring steady-state
    runtime of methods with one-time *process-level* costs — lazy imports,
    module-level index construction, OS page-cache effects.  It does not
    warm the per-detector feature cache: methods construct a fresh detector
    (and hence a fresh cache) per trial, so cache effects are measured by
    ``benchmarks/bench_feature_engine.py`` instead, which times repeated
    prediction on one fitted detector.  The timed trials use the same
    generator stream as a non-warmup run, so metrics stay comparable
    across the two modes.
    """
    result = ExperimentResult()
    true_errors = bundle.error_cells
    generators = spawn_generators(seed, num_trials + (1 if warmup else 0))
    if warmup:
        warm_gen = generators.pop()
        warm_split = make_split(
            bundle, training_fraction, sampling_fraction=sampling_fraction, rng=warm_gen
        )
        method(bundle, warm_split, warm_gen)
    for gen in generators:
        split = make_split(
            bundle, training_fraction, sampling_fraction=sampling_fraction, rng=gen
        )
        with Timer() as timer:
            predicted = method(bundle, split, gen)
        result.runtimes.append(timer.elapsed)
        result.trials.append(
            evaluate_predictions(predicted, true_errors, split.test_cells)
        )
    return result
