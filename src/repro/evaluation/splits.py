"""The §6.1 evaluation split.

The available ground truth is divided into three disjoint cell sets:

- a **training set** T of a given fraction of the dataset's cells (the
  paper samples whole tuples for T; we follow that — 5% training data means
  5% of tuples, labelled on every attribute);
- a **sampling set** used by active learning to draw additional labels;
- a **test set** for evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.bundle import DatasetBundle
from repro.dataset.table import Cell
from repro.dataset.training import TrainingSet
from repro.utils.rng import as_generator


@dataclass
class EvaluationSplit:
    """Disjoint training / sampling / test cell sets plus the labelled T."""

    training: TrainingSet
    sampling_cells: list[Cell]
    test_cells: list[Cell]

    @property
    def training_cells(self) -> list[Cell]:
        return self.training.cells


def make_split(
    bundle: DatasetBundle,
    training_fraction: float,
    sampling_fraction: float = 0.2,
    rng: int | np.random.Generator | None = 0,
) -> EvaluationSplit:
    """Split a bundle's rows into training / sampling / test.

    ``training_fraction`` is the paper's "amount of training data" knob
    (e.g. 0.05 = 5%).  Rows are sampled without replacement; all cells of a
    training row are labelled.  The remaining rows are split between the
    active-learning sampling pool and the test set.
    """
    if not 0.0 < training_fraction < 1.0:
        raise ValueError("training_fraction must be in (0, 1)")
    if not 0.0 <= sampling_fraction < 1.0:
        raise ValueError("sampling_fraction must be in [0, 1)")
    gen = as_generator(rng)
    num_rows = bundle.dirty.num_rows
    order = gen.permutation(num_rows)
    n_train = max(int(round(training_fraction * num_rows)), 1)
    n_sampling = int(round(sampling_fraction * num_rows))
    train_rows = order[:n_train]
    sampling_rows = order[n_train : n_train + n_sampling]
    test_rows = order[n_train + n_sampling :]

    def rows_to_cells(rows: np.ndarray) -> list[Cell]:
        return [
            Cell(int(row), attr) for row in rows for attr in bundle.dirty.attributes
        ]

    training = TrainingSet.from_cells(rows_to_cells(train_rows), bundle.dirty, bundle.truth)
    return EvaluationSplit(
        training=training,
        sampling_cells=rows_to_cells(sampling_rows),
        test_cells=rows_to_cells(test_rows),
    )
