"""Resumable on-disk result store for sweep runs.

One JSONL file, one scenario record per line, keyed by the scenario's
content fingerprint.  Appending is the only write operation, and every
append is flushed, so a sweep killed mid-run loses at most the in-flight
scenarios (up to the worker count — records are flushed by the
coordinating process as workers hand results back); on restart,
:meth:`ResultStore.get` serves every completed scenario from disk and only
the missing fingerprints re-execute.

Robustness rules:

- a truncated or otherwise unparseable line (the tail of a killed run) is
  skipped on load rather than poisoning the whole store;
- duplicate fingerprints are legal — the *latest* record wins, so a store
  can simply be appended to across resumed runs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, Mapping


class ResultStore:
    """Append-only JSONL store of scenario records, keyed by fingerprint."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._records: dict[str, dict] = {}
        self.skipped_lines = 0
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        with self.path.open("r", encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    fingerprint = record["fingerprint"]
                except (json.JSONDecodeError, TypeError, KeyError):
                    self.skipped_lines += 1
                    continue
                self._records[fingerprint] = record

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._records

    def __iter__(self) -> Iterator[dict]:
        return iter(self._records.values())

    @property
    def fingerprints(self) -> set[str]:
        return set(self._records)

    def get(self, fingerprint: str) -> dict | None:
        """The stored record for ``fingerprint``, or None."""
        return self._records.get(fingerprint)

    def put(self, record: Mapping[str, object]) -> None:
        """Append ``record`` (must carry a ``"fingerprint"`` key) and flush."""
        fingerprint = record.get("fingerprint")
        if not isinstance(fingerprint, str) or not fingerprint:
            raise ValueError("record needs a non-empty string 'fingerprint'")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as f:
            f.write(json.dumps(record, sort_keys=True) + "\n")
            f.flush()
        self._records[fingerprint] = dict(record)
