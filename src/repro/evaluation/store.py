"""Resumable on-disk result store for sweep runs.

One JSONL file, one scenario record per line, keyed by the scenario's
content fingerprint.  Appending is the only write operation, and every
append is a **single ``O_APPEND`` ``write()``** of one whole line — the
kernel picks the offset atomically per write, so any number of concurrent
appenders (worker processes on one host, or cooperative sweep workers on
many hosts sharing a filesystem) interleave whole records, never sheared
ones.  A sweep killed mid-run loses at most the in-flight scenarios; on
restart, :meth:`ResultStore.get` serves every completed scenario from disk
and only the missing fingerprints re-execute.

For cooperative sweeps the store doubles as the *completion ledger*:
:meth:`refresh` tails the file for records appended by other workers since
the last scan (consuming only newline-terminated lines, so a record
another process is mid-append is never mis-parsed), and :meth:`missing`
is the completion scan a claim loop runs before claiming work.

Robustness rules:

- a truncated or otherwise unparseable line (the tail of a killed run) is
  skipped on load rather than poisoning the whole store; an unterminated
  tail found at load time is *healed* (newline-terminated) so future
  appends start on a fresh line;
- duplicate fingerprints are legal — the *latest* record wins, so a store
  can simply be appended to across resumed runs and by concurrent
  workers; :meth:`compact` rewrites the log keeping only the winners when
  a long-lived store's history outgrows its content;
- transient disk faults (``EAGAIN``, ``ESTALE``, ...) on append, scan and
  compact are retried through a :class:`~repro.faults.retry.RetryPolicy`
  at the ``store.append`` / ``store.read`` / ``store.compact`` fault
  points.  A *torn* append (a signal landing mid-``write(2)``) is healed
  before the retry: the partial fragment is newline-terminated so the
  reissued full line starts fresh instead of merging into garbage, and the
  fragment is later skipped as one unparseable line;
- stale ``*.compact-<pid>`` temp siblings (a compactor killed between the
  temp write and the ``os.replace``) are removed at load time.
"""

from __future__ import annotations

import errno
import json
import os
from pathlib import Path
from typing import Iterable, Iterator, Mapping

from repro.faults.inject import checked_write, trip
from repro.faults.retry import RetryPolicy, resolve_policy


class ResultStore:
    """Append-only JSONL store of scenario records, keyed by fingerprint."""

    def __init__(self, path: str | Path, retry_policy: RetryPolicy | None = None):
        self.path = Path(path)
        self._records: dict[str, dict] = {}
        self._offset = 0  # bytes of the file consumed so far
        self._lines_read = 0  # complete lines consumed (parseable or not)
        self.skipped_lines = 0
        # None = resolve the process-ambient default at each use.
        self._retry_policy = retry_policy
        self.stale_tmp_removed = self._clean_stale_tmp()
        if self.path.exists():
            self._load()

    @property
    def retry_policy(self) -> RetryPolicy:
        """The policy disk I/O retries through (ambient default if unset)."""
        return resolve_policy(self._retry_policy)

    def _clean_stale_tmp(self) -> int:
        """Remove orphaned compaction temp files; returns the count.

        A compactor killed between its temp write and the ``os.replace``
        leaves a ``<name>.compact-<pid>`` sibling behind.  Any such file
        found at load time is stale by construction (this store has not
        compacted yet, and compactions are only run on quiescent stores),
        so it is garbage — delete it rather than letting orphans
        accumulate next to long-lived stores.
        """
        parent = self.path.parent
        if not parent.is_dir():
            return 0
        removed = 0
        for tmp in parent.glob(f"{self.path.name}.compact-*"):
            try:
                tmp.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    # -- reading ----------------------------------------------------------

    def _consume_line(self, line: bytes) -> None:
        self._lines_read += 1
        text = line.strip()
        if not text:
            return
        try:
            record = json.loads(text.decode("utf-8"))
            fingerprint = record["fingerprint"]
            if not isinstance(fingerprint, str):
                raise TypeError("fingerprint must be a string")
        except (json.JSONDecodeError, UnicodeDecodeError, TypeError, KeyError):
            self.skipped_lines += 1
            return
        self._records[fingerprint] = record

    def _load(self) -> None:
        """Initial scan: consume every complete line, then heal the tail.

        A non-empty unterminated tail is the signature of a run killed
        mid-append.  It is counted as one skipped line (it cannot hold a
        whole record) and a ``\\n`` is appended so that the *next* append —
        from this or any other process — starts on a fresh line instead of
        merging into garbage.
        """
        def scan() -> bytes:
            trip("store.read")
            tail = b""
            with self.path.open("rb") as f:
                f.seek(self._offset)  # no-op first time; makes retries resume
                while True:
                    line = f.readline()
                    if not line:
                        break
                    if not line.endswith(b"\n"):
                        tail = line
                        break
                    self._offset += len(line)
                    self._consume_line(line)
            return tail

        tail = self.retry_policy.call(scan, point="store.read", op="read")
        if tail:
            self._offset += len(tail)
            self._lines_read += 1
            self.skipped_lines += 1
            fd = os.open(self.path, os.O_WRONLY | os.O_APPEND)
            try:
                os.write(fd, b"\n")
            finally:
                os.close(fd)
            self._offset += 1

    def refresh(self) -> int:
        """Consume records appended since the last scan; returns the count.

        Only newline-terminated lines are consumed: a line that another
        worker is mid-append stays unread until its terminator lands, so a
        live cooperative sweep can be re-scanned at any moment without
        ever mis-parsing an in-flight record.  Cheap when nothing changed
        (one ``seek`` past the consumed prefix).
        """
        if not self.path.exists():
            return 0
        consumed = 0

        def scan() -> None:
            # The offset only advances past fully-consumed lines, so a
            # fault mid-scan retries from exactly where it stopped.
            nonlocal consumed
            trip("store.read")
            with self.path.open("rb") as f:
                f.seek(self._offset)
                while True:
                    line = f.readline()
                    if not line or not line.endswith(b"\n"):
                        break
                    self._offset += len(line)
                    self._consume_line(line)
                    consumed += 1

        self.retry_policy.call(scan, point="store.read", op="read")
        return consumed

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._records

    def __iter__(self) -> Iterator[dict]:
        return iter(self._records.values())

    @property
    def fingerprints(self) -> set[str]:
        return set(self._records)

    def get(self, fingerprint: str) -> dict | None:
        """The stored record for ``fingerprint``, or None."""
        return self._records.get(fingerprint)

    def missing(self, fingerprints: Iterable[str]) -> list[str]:
        """The given fingerprints not yet completed, in the given order.

        The completion scan of a cooperative claim loop: run before
        claiming so finished work is never re-claimed, even across worker
        restarts (the store, not any process, is the source of truth).
        """
        return [fp for fp in fingerprints if fp not in self._records]

    # -- writing ----------------------------------------------------------

    def put(self, record: Mapping[str, object]) -> None:
        """Append ``record`` (must carry a ``"fingerprint"`` key).

        The whole line goes down in one ``O_APPEND`` ``write()``: records
        from concurrent appenders interleave but never shear.  A transient
        fault (including a torn/short write) is healed and retried; see
        the module docstring.
        """
        fingerprint = record.get("fingerprint")
        if not isinstance(fingerprint, str) or not fingerprint:
            raise ValueError("record needs a non-empty string 'fingerprint'")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")

        def append() -> None:
            fd = os.open(self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
            try:
                written = checked_write("store.append", fd, line)
            finally:
                os.close(fd)
            if written != len(line):
                raise OSError(
                    errno.EAGAIN,
                    f"short write to {self.path}: {written}/{len(line)} bytes",
                )

        def heal(_exc: BaseException, _attempt: int) -> None:
            # A failed attempt may have landed a partial fragment (torn
            # write).  Terminate it so the reissued full line starts on a
            # fresh line; an unnecessary lone "\n" is just a blank line,
            # which every reader skips.
            try:
                fd = os.open(self.path, os.O_WRONLY | os.O_APPEND)
            except OSError:
                return
            try:
                os.write(fd, b"\n")
            finally:
                os.close(fd)

        self.retry_policy.call(
            append, point="store.append", op="write", on_retry=heal
        )
        self._records[fingerprint] = dict(record)

    def compact(self) -> tuple[int, int]:
        """Rewrite the log keeping only latest-wins records.

        Returns ``(kept_records, dropped_lines)``.  The rewrite is atomic
        (temp sibling + ``os.replace``), so concurrent *readers* always see
        a complete file.  Concurrent **appenders** are another matter: a
        record appended between this store's snapshot and the replace is
        lost, so compact only a quiescent store — cooperative sweeps do it
        after the matrix has fully drained (``repro sweep --compact``).
        """
        self.refresh()
        dropped = self._lines_read - len(self._records)
        payload = b"".join(
            (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
            for record in self._records.values()
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(f"{self.path.name}.compact-{os.getpid()}")

        def rewrite() -> None:
            fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
            try:
                os.write(fd, payload)
                os.fsync(fd)
            finally:
                os.close(fd)
            # The window a killed compactor orphans its temp file in.
            trip("store.compact")
            os.replace(tmp, self.path)

        try:
            self.retry_policy.call(rewrite, point="store.compact", op="write")
        except BaseException:
            # Don't leave the temp sibling behind on a persistent fault
            # (a crash can't run this; _clean_stale_tmp covers that case).
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._offset = len(payload)
        self._lines_read = len(self._records)
        self.skipped_lines = 0
        return len(self._records), max(dropped, 0)
