"""Deterministic fault injection + transient-fault resilience primitives.

Five I/O-heavy subsystems (artifact store, result store, lease
coordination, sharded datasets, serving) share one fault model:

- :mod:`repro.faults.taxonomy` — the errno taxonomy splitting *transient*
  faults (``EAGAIN``, ``EINTR``, ``ESTALE``, ``EIO``-on-read: retry) from
  *fatal* ones (``ENOSPC``, ``EROFS``, ``EACCES``: fail fast, never retry);
- :mod:`repro.faults.retry` — :class:`RetryPolicy`, bounded exponential
  backoff with seeded jitter and injectable clock/sleep (tests never
  real-sleep), plus the process-ambient default policy every retried call
  site resolves when not handed one explicitly;
- :mod:`repro.faults.inject` — the deterministic fault injector: named
  fault points with seeded schedules (fail-first-N, every-Kth, seeded
  rate, torn/short writes), installable in-process via the
  :func:`inject` context manager and in CLI subprocesses via the
  ``REPRO_FAULTS`` environment spec;
- :mod:`repro.faults.breaker` — :class:`CircuitBreaker`, the
  open → half-open → closed lifecycle the serving layer wraps around
  repeated model-load failures.

The injector and the retry engine are designed to compose: fault points
sit *inside* the retried operation, so each retry attempt observes the
next tick of the schedule — ``first:2:EAGAIN`` means two transient
failures, then success on the third attempt.
"""

from repro.faults.breaker import BreakerOpen, CircuitBreaker
from repro.faults.inject import (
    FAULT_POINTS,
    FaultInjector,
    FaultSpecError,
    active_injector,
    checked_write,
    inject,
    install_from_env,
    trip,
)
from repro.faults.retry import (
    RetryExhausted,
    RetryPolicy,
    get_default_policy,
    set_default_policy,
    use_policy,
)
from repro.faults.taxonomy import (
    FATAL_ERRNOS,
    TRANSIENT_ERRNOS,
    FaultClass,
    classify_exception,
    is_fatal,
    is_transient,
)

__all__ = [
    "BreakerOpen",
    "CircuitBreaker",
    "FAULT_POINTS",
    "FATAL_ERRNOS",
    "FaultClass",
    "FaultInjector",
    "FaultSpecError",
    "RetryExhausted",
    "RetryPolicy",
    "TRANSIENT_ERRNOS",
    "active_injector",
    "checked_write",
    "classify_exception",
    "get_default_policy",
    "inject",
    "install_from_env",
    "is_fatal",
    "is_transient",
    "set_default_policy",
    "trip",
    "use_policy",
]
