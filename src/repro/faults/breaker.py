"""A minimal circuit breaker: closed → open → half-open → closed.

Wraps an operation that is failing *persistently* (a corrupt saved model,
a dead NFS export) so callers stop paying the full failure cost on every
request:

- **closed** — calls pass through; ``failure_threshold`` consecutive
  failures open the circuit;
- **open** — calls fail fast with :class:`BreakerOpen` (the serving layer
  maps it to a structured 503 with ``Retry-After``) until ``cooldown``
  seconds have passed;
- **half-open** — the first call after the cooldown is admitted as a
  *probe*: success closes the circuit (the fault healed — e.g. the model
  directory was repaired on disk), failure re-opens it for another
  cooldown.

The clock is injectable so breaker lifecycles are testable without real
sleeps.  Instances are not thread-safe by design: the serving layer drives
them from a single event loop.
"""

from __future__ import annotations

import time
from typing import Callable


class BreakerOpen(Exception):
    """The circuit is open: fail fast instead of re-attempting the call."""

    def __init__(self, name: str, retry_after: float, last_error: str):
        super().__init__(
            f"circuit {name!r} is open after repeated failures "
            f"(retry in {retry_after:.1f}s): {last_error}"
        )
        self.name = name
        self.retry_after = retry_after
        self.last_error = last_error


class CircuitBreaker:
    """Consecutive-failure breaker around one named operation."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        name: str,
        failure_threshold: int = 3,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown <= 0:
            raise ValueError(f"cooldown must be positive, got {cooldown}")
        self.name = name
        self.failure_threshold = int(failure_threshold)
        self.cooldown = float(cooldown)
        self.clock = clock
        self.failures = 0  # consecutive failures while closed/half-open
        self.opened_at: float | None = None
        self.last_error = ""
        self.trips = 0  # closed→open transitions, cumulative
        self._probing = False

    # -- state ------------------------------------------------------------- #

    @property
    def state(self) -> str:
        if self.opened_at is None:
            return self.CLOSED
        if self._probing or self.clock() - self.opened_at >= self.cooldown:
            return self.HALF_OPEN
        return self.OPEN

    def retry_after(self) -> float:
        """Seconds until the next probe is admitted (0 when not open)."""
        if self.opened_at is None:
            return 0.0
        return max(0.0, self.cooldown - (self.clock() - self.opened_at))

    # -- lifecycle --------------------------------------------------------- #

    def before_call(self) -> None:
        """Admit or reject the next call; raises :class:`BreakerOpen`.

        In half-open state the first caller through becomes the probe;
        anyone else arriving before the probe resolves is rejected (one
        probe at a time keeps a broken backend from being hammered the
        instant the cooldown lapses).
        """
        state = self.state
        if state == self.CLOSED:
            return
        if state == self.HALF_OPEN and not self._probing:
            self._probing = True
            return
        raise BreakerOpen(self.name, self.retry_after() or self.cooldown, self.last_error)

    def record_success(self) -> None:
        self.failures = 0
        self.opened_at = None
        self.last_error = ""
        self._probing = False

    def record_failure(self, error: BaseException | str) -> None:
        self.last_error = str(error)
        if self._probing:
            # Failed probe: straight back to open, fresh cooldown.
            self._probing = False
            self.opened_at = self.clock()
            return
        self.failures += 1
        if self.opened_at is None and self.failures >= self.failure_threshold:
            self.opened_at = self.clock()
            self.trips += 1

    def as_dict(self) -> dict[str, object]:
        return {
            "state": self.state,
            "failures": self.failures,
            "trips": self.trips,
            "retry_after": round(self.retry_after(), 3),
            "last_error": self.last_error,
        }
