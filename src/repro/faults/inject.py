"""Deterministic fault injector: named points, seeded schedules.

Every hardened I/O call site in the repo passes through a *named fault
point* (:data:`FAULT_POINTS`).  In production the hook is a no-op global
read; under test an installed :class:`FaultInjector` turns scheduled
invocations of a point into real ``OSError``\\ s — deterministically, so a
chaos run is exactly reproducible from its spec string.

Schedules (``<point>=<mode>`` clauses, ``;``-separated)::

    store.append=first:2:EAGAIN      # invocations 1..2 raise EAGAIN
    lease.renew=every:3:ESTALE       # every 3rd invocation raises ESTALE
    shard.read=rate:0.2:EIO          # seeded ~20% of invocations raise EIO
    artifacts.object_write=torn:1    # 1st write lands half its bytes, EINTR
    store.append=first:1:ENOSPC      # fatal-fault schedules work too

Install in-process with the :func:`inject` context manager, or across a
CLI subprocess fleet via the ``REPRO_FAULTS`` environment variable (read
lazily, once per process, by :func:`active_injector` — worker processes
spawned with the variable set inject without any code cooperation).

Torn/short writes need the call site's cooperation (only it holds the fd
and the payload), which is what :func:`checked_write` provides: a single
``os.write`` in the clean path, and under a ``torn`` schedule a *partial*
write followed by a transient ``OSError`` — the injected version of a
signal landing mid-``write(2)``.
"""

from __future__ import annotations

import errno as _errno
import hashlib
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Mapping

#: The named fault points threaded through the I/O plane.  The tuple is
#: documentation + validation, not a closed set — subsystems may add
#: points, and specs naming unknown points fail loudly.
FAULT_POINTS = (
    "artifacts.object_write",
    "artifacts.object_read",
    "artifacts.index_append",
    "store.append",
    "store.read",
    "store.compact",
    "lease.claim",
    "lease.renew",
    "lease.release",
    "lease.audit",
    "shard.read",
    "serve.load",
)

_MODES = ("first", "every", "rate", "torn")

#: Default errno of a torn write: the signal-interrupted-write classic.
_TORN_DEFAULT_ERRNO = "EINTR"


class FaultSpecError(ValueError):
    """A fault spec string is malformed (unknown point, mode, errno, ...)."""


def _errno_value(name: str) -> int:
    value = getattr(_errno, name.upper(), None)
    if not isinstance(value, int):
        raise FaultSpecError(f"unknown errno name {name!r} (e.g. EAGAIN, ENOSPC)")
    return value


@dataclass(frozen=True)
class FaultRule:
    """One point's schedule: when to fire, and with which errno."""

    point: str
    mode: str  # first | every | rate | torn
    arg: float  # N for first/torn, K for every, P for rate
    errno_name: str

    @property
    def errno_value(self) -> int:
        return _errno_value(self.errno_name)

    @property
    def torn(self) -> bool:
        return self.mode == "torn"

    def fires(self, count: int, seed: int) -> bool:
        """Whether invocation number ``count`` (1-based) is scheduled."""
        if self.mode in ("first", "torn"):
            return count <= int(self.arg)
        if self.mode == "every":
            return int(self.arg) > 0 and count % int(self.arg) == 0
        # rate: seeded, deterministic per (seed, point, count)
        digest = hashlib.sha256(
            f"{seed}:{self.point}:{count}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2**64 < self.arg

    def spec(self) -> str:
        arg = f"{self.arg:g}" if self.mode == "rate" else str(int(self.arg))
        return f"{self.point}={self.mode}:{arg}:{self.errno_name}"


def _parse_clause(clause: str) -> FaultRule:
    point, sep, schedule = clause.partition("=")
    point = point.strip()
    if not sep or not point or not schedule.strip():
        raise FaultSpecError(
            f"bad fault clause {clause!r}; expected <point>=<mode>:<arg>[:<ERRNO>]"
        )
    if point not in FAULT_POINTS:
        raise FaultSpecError(
            f"unknown fault point {point!r}; known: {', '.join(FAULT_POINTS)}"
        )
    parts = [p.strip() for p in schedule.strip().split(":")]
    mode = parts[0]
    if mode not in _MODES:
        raise FaultSpecError(
            f"{point}: unknown mode {mode!r}; known: {', '.join(_MODES)}"
        )
    if len(parts) < 2:
        raise FaultSpecError(f"{point}: mode {mode!r} needs an argument")
    try:
        arg = float(parts[1])
    except ValueError:
        raise FaultSpecError(
            f"{point}: bad schedule argument {parts[1]!r}"
        ) from None
    if mode == "rate":
        if not 0 < arg <= 1:
            raise FaultSpecError(f"{point}: rate must be in (0, 1], got {arg:g}")
    elif arg < 1 or arg != int(arg):
        raise FaultSpecError(
            f"{point}: {mode} needs a positive integer, got {parts[1]!r}"
        )
    default = _TORN_DEFAULT_ERRNO if mode == "torn" else "EAGAIN"
    errno_name = (parts[2] if len(parts) > 2 else default).upper()
    _errno_value(errno_name)  # validate eagerly
    if len(parts) > 3:
        raise FaultSpecError(f"{point}: trailing schedule parts {parts[3:]!r}")
    return FaultRule(point=point, mode=mode, arg=arg, errno_name=errno_name)


def parse_spec(spec: str) -> list[FaultRule]:
    """Parse a ``REPRO_FAULTS``-style spec string into rules."""
    rules: list[FaultRule] = []
    for chunk in spec.replace(",", ";").split(";"):
        chunk = chunk.strip()
        if chunk:
            rules.append(_parse_clause(chunk))
    if not rules:
        raise FaultSpecError(f"empty fault spec {spec!r}")
    return rules


class FaultInjector:
    """Deterministic, thread-safe scheduler of faults at named points.

    One rule per point (a later rule for the same point replaces the
    earlier — last wins, like CLI flags).  Counters are per-injector and
    per-point; ``snapshot()`` is the chaos report's raw material.
    """

    def __init__(self, rules: "list[FaultRule] | str", seed: int = 0):
        if isinstance(rules, str):
            rules = parse_spec(rules)
        self.rules: dict[str, FaultRule] = {rule.point: rule for rule in rules}
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}
        self._fired: dict[str, int] = {}

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "FaultInjector":
        return cls(parse_spec(spec), seed=seed)

    def spec(self) -> str:
        """The canonical spec string reproducing this injector."""
        return ";".join(rule.spec() for rule in self.rules.values())

    def __repr__(self) -> str:
        return f"FaultInjector({self.spec()!r}, seed={self.seed})"

    # -- scheduling -------------------------------------------------------- #

    def _tick(self, point: str) -> FaultRule | None:
        """Count one invocation of ``point``; the rule if it fires now."""
        rule = self.rules.get(point)
        if rule is None:
            return None
        with self._lock:
            self._counts[point] = count = self._counts.get(point, 0) + 1
            if not rule.fires(count, self.seed):
                return None
            self._fired[point] = self._fired.get(point, 0) + 1
        return rule

    def fire(self, point: str) -> None:
        """Raise the scheduled ``OSError`` if this invocation is faulted."""
        rule = self._tick(point)
        if rule is not None:
            raise OSError(
                rule.errno_value,
                f"injected fault at {point} "
                f"({rule.mode}:{rule.arg:g}:{rule.errno_name})",
            )

    def write(self, point: str, fd: int, data: bytes) -> int:
        """``os.write`` with scheduled full or torn/short failures.

        A non-torn scheduled fault raises before any byte lands; a torn
        one writes roughly half the payload first — the injected version
        of a signal interrupting ``write(2)`` mid-transfer.
        """
        rule = self._tick(point)
        if rule is None:
            return os.write(fd, data)
        message = (
            f"injected fault at {point} "
            f"({rule.mode}:{rule.arg:g}:{rule.errno_name})"
        )
        if rule.torn and data:
            os.write(fd, data[: max(1, len(data) // 2)])
            raise OSError(rule.errno_value, f"{message} after a short write")
        raise OSError(rule.errno_value, message)

    # -- accounting -------------------------------------------------------- #

    def snapshot(self) -> dict[str, dict[str, object]]:
        """Per-point ``{invocations, fired, rule}`` counters."""
        with self._lock:
            return {
                point: {
                    "invocations": self._counts.get(point, 0),
                    "fired": self._fired.get(point, 0),
                    "rule": rule.spec(),
                }
                for point, rule in self.rules.items()
            }


# --------------------------------------------------------------------------- #
# Installation: in-process context manager + REPRO_FAULTS environment spec
# --------------------------------------------------------------------------- #

ENV_VAR = "REPRO_FAULTS"
ENV_SEED_VAR = "REPRO_FAULTS_SEED"

_install_lock = threading.Lock()
_installed: FaultInjector | None = None
_env_checked = False


def install_from_env(environ: Mapping[str, str] | None = None) -> FaultInjector | None:
    """Install an injector from ``REPRO_FAULTS``, if set; returns it.

    Idempotent per process (the spec is read once); an explicit
    :func:`inject` context always takes precedence while active.
    """
    global _installed, _env_checked
    environ = os.environ if environ is None else environ
    with _install_lock:
        _env_checked = True
        spec = environ.get(ENV_VAR, "").strip()
        if not spec:
            return None
        if _installed is None:
            seed = int(environ.get(ENV_SEED_VAR, "0"))
            _installed = FaultInjector.from_spec(spec, seed=seed)
        return _installed


def active_injector() -> FaultInjector | None:
    """The currently installed injector, if any.

    Checks ``REPRO_FAULTS`` lazily on first call, so subprocesses (CLI
    sweep workers, process-pool workers) inject from the inherited
    environment without any explicit installation call.
    """
    global _env_checked
    if _installed is not None:
        return _installed
    if not _env_checked:
        return install_from_env()
    return None


@contextmanager
def inject(spec: "str | FaultInjector", seed: int = 0) -> Iterator[FaultInjector]:
    """Install a fault injector for the duration of a ``with`` block."""
    global _installed, _env_checked
    injector = (
        spec if isinstance(spec, FaultInjector) else FaultInjector.from_spec(spec, seed)
    )
    with _install_lock:
        previous, previous_checked = _installed, _env_checked
        _installed, _env_checked = injector, True
    try:
        yield injector
    finally:
        with _install_lock:
            _installed, _env_checked = previous, previous_checked


def trip(point: str) -> None:
    """The fault hook call sites embed: no-op unless an injector schedules
    a fault for this invocation of ``point``."""
    injector = active_injector()
    if injector is not None:
        injector.fire(point)


def checked_write(point: str, fd: int, data: bytes) -> int:
    """``os.write`` through the fault point ``point``.

    The clean path is exactly one ``os.write`` call — no wrapping, no
    copies.  Under an installed injector, scheduled invocations raise
    (optionally after a deliberate short write; see
    :meth:`FaultInjector.write`).
    """
    injector = active_injector()
    if injector is None:
        return os.write(fd, data)
    return injector.write(point, fd, data)
