"""Bounded exponential backoff with seeded jitter and injectable sleep.

One :class:`RetryPolicy` instance serves a whole subsystem (it is
thread-safe; the counters are lock-guarded).  The contract at every call
site is :meth:`RetryPolicy.call`::

    policy.call(lambda: os.write(fd, line), point="store.append", op="write")

- a **transient** fault (per :mod:`repro.faults.taxonomy`) sleeps the next
  backoff delay and retries, up to ``max_attempts`` total attempts;
- a **fatal or unknown** fault is re-raised immediately — retrying a full
  disk only hides it;
- exhausting the attempts raises :class:`RetryExhausted`, an ``OSError``
  subclass carrying the last fault's errno, so existing ``except OSError``
  handling keeps working while tests can assert the exhaustion path
  precisely.

Backoff delays are *deterministic*: the jitter for attempt ``k`` at fault
point ``p`` is derived by hashing ``(seed, p, k)``, not drawn from a
global RNG — two runs of the same schedule back off identically, which is
what keeps chaos tests reproducible.  ``sleep`` is injectable (and the
process-ambient default policy can be swapped via :func:`use_policy`), so
no test ever real-sleeps through a backoff.

Environment knobs for subprocess fleets (the chaos CI job): the *default*
policy reads ``REPRO_RETRY_BASE_DELAY`` / ``REPRO_RETRY_ATTEMPTS`` at
first use, so ``REPRO_RETRY_BASE_DELAY=0`` makes a whole CLI worker fleet
retry without wall-clock cost.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator, TypeVar

from repro.faults.taxonomy import FaultClass, classify_exception

T = TypeVar("T")


class RetryExhausted(OSError):
    """A transient fault persisted through every allowed attempt.

    Subclasses ``OSError`` (with the last fault's errno) so call sites
    that already handle ``OSError`` degrade gracefully; ``point`` and
    ``attempts`` make the exhaustion observable to tests and logs.
    """

    def __init__(self, point: str, attempts: int, last: BaseException):
        errno_value = getattr(last, "errno", None)
        super().__init__(
            errno_value,
            f"{point}: transient fault persisted through {attempts} attempts: "
            f"{type(last).__name__}: {last}",
        )
        self.point = point
        self.attempts = attempts
        self.last = last


class RetryStats:
    """Lock-guarded counters for one :class:`RetryPolicy`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.retries = 0  # sleeps taken (attempts beyond the first)
        self.exhausted = 0  # calls that ran out of attempts
        self.fatal = 0  # calls re-raised immediately on a fatal fault
        self.by_point: dict[str, int] = {}

    def note_retry(self, point: str) -> None:
        with self._lock:
            self.retries += 1
            self.by_point[point] = self.by_point.get(point, 0) + 1

    def note_exhausted(self) -> None:
        with self._lock:
            self.exhausted += 1

    def note_fatal(self) -> None:
        with self._lock:
            self.fatal += 1

    def as_dict(self) -> dict[str, object]:
        with self._lock:
            return {
                "retries": self.retries,
                "exhausted": self.exhausted,
                "fatal": self.fatal,
                "by_point": dict(self.by_point),
            }


class RetryPolicy:
    """Bounded exponential backoff: ``max_attempts`` total tries.

    ``jitter`` is the symmetric fractional spread around each delay
    (0.25 → each delay lands in ``[0.75d, 1.25d]``), derived
    deterministically from ``(seed, point, attempt)``.
    """

    def __init__(
        self,
        max_attempts: int = 4,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        multiplier: float = 2.0,
        jitter: float = 0.25,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if base_delay < 0 or max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0 <= jitter <= 1:
            raise ValueError(f"jitter must be in [0, 1], got {jitter}")
        if multiplier < 1:
            raise ValueError(f"multiplier must be >= 1, got {multiplier}")
        self.max_attempts = int(max_attempts)
        self.base_delay = float(base_delay)
        self.max_delay = float(max_delay)
        self.multiplier = float(multiplier)
        self.jitter = float(jitter)
        self.seed = int(seed)
        self.sleep = sleep
        self.stats = RetryStats()

    def __repr__(self) -> str:
        return (
            f"RetryPolicy(attempts={self.max_attempts}, "
            f"base={self.base_delay}, max={self.max_delay})"
        )

    # -- deterministic backoff -------------------------------------------- #

    def delay(self, point: str, attempt: int) -> float:
        """The backoff before attempt ``attempt + 1`` (attempts count from 1)."""
        raw = min(
            self.max_delay, self.base_delay * self.multiplier ** (attempt - 1)
        )
        if not self.jitter or not raw:
            return raw
        digest = hashlib.sha256(
            f"{self.seed}:{point}:{attempt}".encode("utf-8")
        ).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2**64  # [0, 1)
        return raw * (1.0 - self.jitter + 2.0 * self.jitter * fraction)

    def delays(self, point: str) -> Iterator[float]:
        """The full deterministic backoff schedule for one fault point."""
        for attempt in range(1, self.max_attempts):
            yield self.delay(point, attempt)

    # -- the retry loop --------------------------------------------------- #

    def call(
        self,
        fn: Callable[[], T],
        *,
        point: str,
        op: str = "read",
        on_retry: Callable[[BaseException, int], None] | None = None,
    ) -> T:
        """Run ``fn`` retrying transient faults; see the module docstring.

        ``on_retry(exc, attempt)`` fires before each backoff sleep — the
        hook call sites use to heal partial state (e.g. terminating a torn
        append) before the operation is reissued.
        """
        last: BaseException | None = None
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn()
            except Exception as exc:
                if classify_exception(exc, op) is not FaultClass.TRANSIENT:
                    if isinstance(exc, OSError):
                        self.stats.note_fatal()
                    raise
                last = exc
                if attempt == self.max_attempts:
                    break
                if on_retry is not None:
                    on_retry(exc, attempt)
                self.stats.note_retry(point)
                self.sleep(self.delay(point, attempt))
        self.stats.note_exhausted()
        assert last is not None
        raise RetryExhausted(point, self.max_attempts, last) from last


# --------------------------------------------------------------------------- #
# The process-ambient default policy
# --------------------------------------------------------------------------- #

_default_lock = threading.Lock()
_default_policy: RetryPolicy | None = None


def _policy_from_env() -> RetryPolicy:
    base = os.environ.get("REPRO_RETRY_BASE_DELAY")
    attempts = os.environ.get("REPRO_RETRY_ATTEMPTS")
    kwargs: dict[str, float | int] = {}
    if base is not None:
        kwargs["base_delay"] = max(0.0, float(base))
        kwargs["max_delay"] = max(0.0, float(base)) * 16
    if attempts is not None:
        kwargs["max_attempts"] = max(1, int(attempts))
    return RetryPolicy(**kwargs)  # type: ignore[arg-type]


def get_default_policy() -> RetryPolicy:
    """The process-ambient policy retried call sites resolve by default."""
    global _default_policy
    with _default_lock:
        if _default_policy is None:
            _default_policy = _policy_from_env()
        return _default_policy


def set_default_policy(policy: RetryPolicy | None) -> None:
    """Install (or with ``None``, reset) the process-ambient policy."""
    global _default_policy
    with _default_lock:
        _default_policy = policy


@contextmanager
def use_policy(policy: RetryPolicy):
    """Temporarily install ``policy`` as the ambient default (tests)."""
    global _default_policy
    with _default_lock:
        previous = _default_policy
        _default_policy = policy
    try:
        yield policy
    finally:
        with _default_lock:
            _default_policy = previous


def resolve_policy(policy: RetryPolicy | None) -> RetryPolicy:
    """``policy`` itself, or the ambient default when ``None``."""
    return policy if policy is not None else get_default_policy()
