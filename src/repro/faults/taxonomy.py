"""The errno taxonomy: which I/O faults are worth retrying.

The split follows what a retry can actually fix:

- **Transient** faults are the filesystem having a moment — a signal
  interrupted the syscall (``EINTR``), the resource was briefly busy
  (``EAGAIN``/``EWOULDBLOCK``), an NFS file handle went stale between a
  lookup and the operation (``ESTALE``), the network filesystem timed out
  (``ETIMEDOUT``), or a *read* hit a transient device error (``EIO``).
  Retrying with backoff routinely succeeds.
- **Fatal** faults are states no retry changes on its own timescale: the
  disk is full (``ENOSPC``), over quota (``EDQUOT``), mounted read-only
  (``EROFS``), or permissions are wrong (``EACCES``/``EPERM``).  Retrying
  only delays the inevitable and hides the condition from the operator —
  fail fast and surface it.
- ``EIO`` on a **write** is classified fatal: unlike a read (where a
  re-read often lands on a healthy replica or a repaired page), a failed
  write may have left the medium in an unknown state, and hammering a
  dying device makes things worse.

Everything not named in either set is *unknown* and treated as fatal by
:func:`is_transient` — the safe default is to not retry faults we cannot
reason about.
"""

from __future__ import annotations

import errno
from enum import Enum

#: Errnos a bounded retry with backoff is expected to clear.
TRANSIENT_ERRNOS = frozenset(
    {
        errno.EAGAIN,
        errno.EWOULDBLOCK,  # == EAGAIN on Linux; distinct on some platforms
        errno.EINTR,
        errno.ESTALE,
        errno.ETIMEDOUT,
        errno.EBUSY,
    }
)

#: Errnos no retry fixes: surface them immediately.
FATAL_ERRNOS = frozenset(
    {
        errno.ENOSPC,
        errno.EDQUOT,
        errno.EROFS,
        errno.EACCES,
        errno.EPERM,
        errno.ENAMETOOLONG,
    }
)


class FaultClass(Enum):
    """How a fault should be handled by the retry engine."""

    TRANSIENT = "transient"  # retry with backoff
    FATAL = "fatal"  # fail fast, surface to the operator
    UNKNOWN = "unknown"  # unclassified: treated as fatal (no retry)


def classify_errno(err: int | None, op: str = "read") -> FaultClass:
    """Classify a raw errno for an operation of kind ``op``.

    ``op`` is ``"read"`` or ``"write"`` — the only errno whose class
    depends on it is ``EIO`` (transient on reads, fatal on writes).
    """
    if err is None:
        return FaultClass.UNKNOWN
    if err == errno.EIO:
        return FaultClass.TRANSIENT if op == "read" else FaultClass.FATAL
    if err in TRANSIENT_ERRNOS:
        return FaultClass.TRANSIENT
    if err in FATAL_ERRNOS:
        return FaultClass.FATAL
    return FaultClass.UNKNOWN


def classify_exception(exc: BaseException, op: str = "read") -> FaultClass:
    """Classify any exception: only ``OSError`` carries an errno.

    ``FileNotFoundError`` and ``FileExistsError`` are deliberately
    UNKNOWN (never retried): they are *answers*, not faults — a missing
    object is a cache miss, an existing lease file is a lost claim race.
    """
    if isinstance(exc, (FileNotFoundError, FileExistsError)):
        return FaultClass.UNKNOWN
    if isinstance(exc, OSError):
        return classify_errno(exc.errno, op)
    return FaultClass.UNKNOWN


def is_transient(exc: BaseException, op: str = "read") -> bool:
    """True when a bounded retry is the right response to ``exc``."""
    return classify_exception(exc, op) is FaultClass.TRANSIENT


def is_fatal(exc: BaseException, op: str = "read") -> bool:
    """True when ``exc`` names a state no retry fixes (disk full, ...)."""
    return classify_exception(exc, op) is FaultClass.FATAL
