"""Representation model Q (§4, Fig. 2A, Table 7).

Q concatenates representation models from three contexts:

- **attribute-level** — character/word embeddings of the cell value (fed to
  learnable layers), character and symbolic format 3-gram models, the
  empirical value distribution, and a column-id one-hot;
- **tuple-level** — attribute-pair co-occurrence statistics and a learnable
  tuple embedding;
- **dataset-level** — per-constraint violation counts and the
  nearest-neighbour distance in a tuple-value embedding space.

Each model is a :class:`~repro.features.base.Featurizer`.  The
:class:`~repro.features.pipeline.FeaturePipeline` fits them on the noisy
dataset D, transforms cells into a fixed ``numeric`` block plus named
embedding branches, and supports dropping any single model for the Fig. 3
ablation study.

Transforms are batched through :class:`~repro.features.base.CellBatch` and
optionally memoised by a :class:`~repro.features.cache.FeatureCache` — see
``docs/architecture.md`` for where the cache sits in the system.
"""

from repro.features.base import CellBatch, Featurizer, FeatureContext
from repro.features.cache import CacheStats, FeatureCache
from repro.features.attribute import (
    CharEmbeddingFeaturizer,
    ColumnIdFeaturizer,
    EmpiricalDistributionFeaturizer,
    FormatNGramFeaturizer,
    SymbolicNGramFeaturizer,
    WordEmbeddingFeaturizer,
)
from repro.features.tuple_level import CooccurrenceFeaturizer, TupleEmbeddingFeaturizer
from repro.features.dataset_level import (
    ConstraintViolationFeaturizer,
    NeighborhoodFeaturizer,
)
from repro.features.extra import TokenFrequencyFeaturizer, ValueLengthFeaturizer
from repro.features.pipeline import CellFeatures, FeaturePipeline, default_pipeline

__all__ = [
    "Featurizer",
    "FeatureContext",
    "CellBatch",
    "FeatureCache",
    "CacheStats",
    "CharEmbeddingFeaturizer",
    "WordEmbeddingFeaturizer",
    "FormatNGramFeaturizer",
    "SymbolicNGramFeaturizer",
    "EmpiricalDistributionFeaturizer",
    "ColumnIdFeaturizer",
    "CooccurrenceFeaturizer",
    "TupleEmbeddingFeaturizer",
    "ConstraintViolationFeaturizer",
    "NeighborhoodFeaturizer",
    "ValueLengthFeaturizer",
    "TokenFrequencyFeaturizer",
    "CellFeatures",
    "FeaturePipeline",
    "default_pipeline",
]
