"""Representation model Q (§4, Fig. 2A, Table 7).

Q concatenates representation models from three contexts:

- **attribute-level** — character/word embeddings of the cell value (fed to
  learnable layers), character and symbolic format 3-gram models, the
  empirical value distribution, and a column-id one-hot;
- **tuple-level** — attribute-pair co-occurrence statistics and a learnable
  tuple embedding;
- **dataset-level** — per-constraint violation counts and the
  nearest-neighbour distance in a tuple-value embedding space.

Each model is a :class:`~repro.features.base.Featurizer`.  The
:class:`~repro.features.pipeline.FeaturePipeline` fits them on the noisy
dataset D, transforms cells into a fixed ``numeric`` block plus named
embedding branches, and supports dropping any single model for the Fig. 3
ablation study.
"""

from repro.features.base import Featurizer, FeatureContext
from repro.features.attribute import (
    CharEmbeddingFeaturizer,
    ColumnIdFeaturizer,
    EmpiricalDistributionFeaturizer,
    FormatNGramFeaturizer,
    SymbolicNGramFeaturizer,
    WordEmbeddingFeaturizer,
)
from repro.features.tuple_level import CooccurrenceFeaturizer, TupleEmbeddingFeaturizer
from repro.features.dataset_level import (
    ConstraintViolationFeaturizer,
    NeighborhoodFeaturizer,
)
from repro.features.extra import TokenFrequencyFeaturizer, ValueLengthFeaturizer
from repro.features.pipeline import CellFeatures, FeaturePipeline, default_pipeline

__all__ = [
    "Featurizer",
    "FeatureContext",
    "CharEmbeddingFeaturizer",
    "WordEmbeddingFeaturizer",
    "FormatNGramFeaturizer",
    "SymbolicNGramFeaturizer",
    "EmpiricalDistributionFeaturizer",
    "ColumnIdFeaturizer",
    "CooccurrenceFeaturizer",
    "TupleEmbeddingFeaturizer",
    "ConstraintViolationFeaturizer",
    "NeighborhoodFeaturizer",
    "ValueLengthFeaturizer",
    "TokenFrequencyFeaturizer",
    "CellFeatures",
    "FeaturePipeline",
    "default_pipeline",
]
