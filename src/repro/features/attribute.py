"""Attribute-level representation models (§4.1, Table 7).

All models here are per-attribute: a separate statistic (or embedding) is
learned for every column, because "Zip Code" and "City" have entirely
different value, format, and frequency distributions.

Every transform is batched (see :class:`~repro.features.base.CellBatch`):
per-value statistics are computed once per *unique* value of a column and
scattered to all cells carrying it, which is where most of the speedup of
the batched engine comes from — real columns are heavily repetitive.

All models here declare ``scope = ATTRIBUTE`` — their transforms read
nothing beyond the cell's own (possibly overridden) value and the fitted
per-column statistics — and implement column-scoped :meth:`refresh`: after a
batch edit, only the models of the touched columns are refitted.
"""

from __future__ import annotations

import numpy as np

from repro.artifacts.codec import fit_embedding_artifact
from repro.artifacts.keys import seed_material
from repro.dataset.table import Dataset, DatasetDelta
from repro.embeddings.corpus import char_corpus, word_corpus
from repro.embeddings.fasttext import FastTextEmbedding
from repro.features.base import (
    CellBatch,
    ColumnScopedFeaturizer,
    FeatureContext,
    Featurizer,
)
from repro.text.ngrams import NGramModel, SymbolicNGramModel
from repro.text.tokenize import char_tokens, word_tokens


class _ColumnEmbeddingFeaturizer(ColumnScopedFeaturizer):
    """Shared machinery of the per-column FastText featurizers.

    One embedding model per attribute, trained on the column's
    ``_view``-token corpus.  Each column's model is a content-addressed
    fitted artifact (:mod:`repro.artifacts`): it is keyed by (corpus view,
    column content fingerprint, embedding config), trains from a seed
    derived from that key, and — when a store is attached — is served from
    the store instead of retrained.  Scoping per column means an edit to
    one column retrains (or re-fetches) only that column's model, the same
    locality rule the PR-2 feature cache uses for transformed blocks.
    """

    #: Corpus view tag ("char"/"word") — part of the artifact key.
    _view: str = ""

    def __init__(self, dim: int = 16, epochs: int = 2, rng=None):
        self._dim = dim
        self._epochs = epochs
        # Training seeds derive from the artifact key (content-addressed);
        # an explicitly passed rng survives as extra key material so
        # distinct seeds still produce distinct embeddings.
        self._seed_material = seed_material(rng)
        self._models: dict[str, FastTextEmbedding] | None = None

    @staticmethod
    def _corpus(dataset: Dataset, attr: str) -> list[list[str]]:
        raise NotImplementedError

    @staticmethod
    def _tokens(value: str) -> list[str]:
        raise NotImplementedError

    def _embedding_config(self) -> dict:
        # The full training-config enumeration (not just the knobs this
        # featurizer exposes): a future change to any FastTextEmbedding
        # default must change the key, never silently serve stale weights.
        config = FastTextEmbedding(dim=self._dim, epochs=self._epochs).config_dict()
        config["view"] = self._view
        if self._seed_material is not None:
            config["rng"] = self._seed_material
        return config

    def _fit_column(self, dataset: Dataset, attr: str) -> None:
        # Default n-gram range: a single-character token "c" is wrapped
        # to "<c>" whose only 3-gram is itself, giving each character a
        # dedicated bucket.  (n_min=1 would make every character share
        # the "<" and ">" buckets, which destabilises training.)
        key, model = fit_embedding_artifact(
            self.artifact_store,
            f"embedding/{self._view}",
            dataset.column_fingerprint(attr),
            self._embedding_config(),
            lambda seed: FastTextEmbedding(
                dim=self._dim, epochs=self._epochs, rng=seed
            ).fit(self._corpus(dataset, attr)),
            meta={"column": attr},
        )
        self._record_artifact(f"{self.name}/{attr}", key)
        self._models[attr] = model

    def fit(self, dataset: Dataset) -> "_ColumnEmbeddingFeaturizer":
        self._models = {}
        self._artifact_keys = {}
        for attr in dataset.attributes:
            self._fit_column(dataset, attr)
        return self

    def transform_batch(self, batch: CellBatch) -> np.ndarray:
        self._require_fitted("_models")
        out = np.zeros((len(batch), self._dim))
        for attr, by_value in batch.value_groups.items():
            model = self._models[attr]
            for value, idx in by_value.items():
                tokens = self._tokens(value) or ["<empty>"]
                out[idx] = model.sentence_vector(tokens)
        return out

    @property
    def dim(self) -> int:
        return self._dim


class CharEmbeddingFeaturizer(_ColumnEmbeddingFeaturizer):
    """FastText embedding of the cell value as a *character* sequence.

    One embedding model per attribute; the cell feature is the mean of its
    character vectors.  Output feeds the ``char`` learnable branch.
    """

    name = "char_embedding"
    context = FeatureContext.ATTRIBUTE
    scope = FeatureContext.ATTRIBUTE
    branch = "char"
    _view = "char"
    _corpus = staticmethod(char_corpus)
    _tokens = staticmethod(char_tokens)


class WordEmbeddingFeaturizer(_ColumnEmbeddingFeaturizer):
    """FastText embedding of the cell value as a *word* sequence.

    One model per attribute; cell feature is the mean of its word vectors.
    Output feeds the ``word`` learnable branch.  Subword n-grams give typo'd
    words vectors close to — but measurably offset from — their clean forms.
    """

    name = "word_embedding"
    context = FeatureContext.ATTRIBUTE
    scope = FeatureContext.ATTRIBUTE
    branch = "word"
    _view = "word"
    _corpus = staticmethod(word_corpus)
    _tokens = staticmethod(word_tokens)


class FormatNGramFeaturizer(ColumnScopedFeaturizer):
    """Character 3-gram format model: frequency of the least frequent gram.

    A clean "60614" contains only common digit grams; "606x4" contains a gram
    never (or rarely) seen in the column, so its minimum gram probability
    collapses.  Log-scaled so magnitudes stay comparable across columns.
    """

    name = "format_3gram"
    context = FeatureContext.ATTRIBUTE
    scope = FeatureContext.ATTRIBUTE
    branch = None

    def __init__(self, n: int = 3, least_k: int = 1):
        self._n = n
        self._least_k = least_k
        self._models: dict[str, NGramModel] | None = None

    def _fit_column(self, dataset: Dataset, attr: str) -> None:
        self._models[attr] = NGramModel(n=self._n).fit(dataset.column(attr))

    def fit(self, dataset: Dataset) -> "FormatNGramFeaturizer":
        self._models = {}
        for attr in dataset.attributes:
            self._fit_column(dataset, attr)
        return self

    def transform_batch(self, batch: CellBatch) -> np.ndarray:
        self._require_fitted("_models")
        out = np.zeros((len(batch), self._least_k))
        for attr, by_value in batch.value_groups.items():
            model = self._models[attr]
            for value, idx in by_value.items():
                out[idx] = np.log(model.least_probable_grams(value, self._least_k))
        return out

    @property
    def dim(self) -> int:
        return self._least_k


class SymbolicNGramFeaturizer(ColumnScopedFeaturizer):
    """Symbolic 3-gram format model over the {C, N, S} signature.

    Captures shape violations (a letter inside a numeric column) even when
    the raw character grams are individually plausible.
    """

    name = "symbolic_3gram"
    context = FeatureContext.ATTRIBUTE
    scope = FeatureContext.ATTRIBUTE
    branch = None

    def __init__(self, n: int = 3, least_k: int = 1):
        self._n = n
        self._least_k = least_k
        self._models: dict[str, SymbolicNGramModel] | None = None

    def _fit_column(self, dataset: Dataset, attr: str) -> None:
        self._models[attr] = SymbolicNGramModel(n=self._n).fit(dataset.column(attr))

    def fit(self, dataset: Dataset) -> "SymbolicNGramFeaturizer":
        self._models = {}
        for attr in dataset.attributes:
            self._fit_column(dataset, attr)
        return self

    def transform_batch(self, batch: CellBatch) -> np.ndarray:
        self._require_fitted("_models")
        out = np.zeros((len(batch), self._least_k))
        for attr, by_value in batch.value_groups.items():
            model = self._models[attr]
            for value, idx in by_value.items():
                out[idx] = np.log(model.least_probable_grams(value, self._least_k))
        return out

    @property
    def dim(self) -> int:
        return self._least_k


class EmpiricalDistributionFeaturizer(ColumnScopedFeaturizer):
    """Empirical probability of the cell value within its column.

    Errors are usually rare values; a swap of a frequent value into the wrong
    tuple stays frequent here, which is exactly why the tuple-level models
    are also needed (this featurizer alone cannot see swaps).
    """

    name = "empirical_dist"
    context = FeatureContext.ATTRIBUTE
    scope = FeatureContext.ATTRIBUTE
    state_attribute = "_counts"
    branch = None

    def __init__(self) -> None:
        self._counts: dict[str, dict[str, int]] | None = None
        self._totals: dict[str, int] = {}

    def _fit_column(self, dataset: Dataset, attr: str) -> None:
        # Appends change num_rows for every column, but they also list every
        # column in the delta, so per-column totals stay consistent.
        self._counts[attr] = dataset.value_counts(attr)
        self._totals[attr] = dataset.num_rows

    def fit(self, dataset: Dataset) -> "EmpiricalDistributionFeaturizer":
        self._counts = {}
        self._totals = {}
        for attr in dataset.attributes:
            self._fit_column(dataset, attr)
        return self

    def transform_batch(self, batch: CellBatch) -> np.ndarray:
        self._require_fitted("_counts")
        out = np.zeros((len(batch), 1))
        for attr, by_value in batch.value_groups.items():
            counts = self._counts[attr]
            total = self._totals[attr] or 1
            for value, idx in by_value.items():
                out[idx, 0] = counts.get(value, 0) / total
        return out

    @property
    def dim(self) -> int:
        return 1


class ColumnIdFeaturizer(Featurizer):
    """One-hot column id, capturing per-column bias (Table 7)."""

    name = "column_id"
    context = FeatureContext.ATTRIBUTE
    scope = FeatureContext.ATTRIBUTE
    branch = None

    def __init__(self) -> None:
        self._index: dict[str, int] | None = None

    def fit(self, dataset: Dataset) -> "ColumnIdFeaturizer":
        self._index = {attr: i for i, attr in enumerate(dataset.attributes)}
        return self

    def refresh(self, dataset: Dataset, delta: DatasetDelta) -> bool:
        # Depends only on the schema, which mutations never change.
        return False

    def transform_batch(self, batch: CellBatch) -> np.ndarray:
        self._require_fitted("_index")
        out = np.zeros((len(batch), len(self._index)))
        for attr, idx in batch.by_attr.items():
            out[idx, self._index[attr]] = 1.0
        return out

    @property
    def dim(self) -> int:
        if self._index is None:
            raise RuntimeError("ColumnIdFeaturizer used before fit()")
        return len(self._index)
