"""Featurizer interface shared by all representation models.

Featurization is *batched*: the unit of work is a :class:`CellBatch`, which
bundles the cells to transform, the dataset supplying their tuple context,
and the optional per-cell value overrides used for augmented examples.  The
batch precomputes the groupings every vectorised featurizer needs — resolved
values, positions grouped by attribute, unique-value groups per attribute —
once, so per-column statistics are shared across all models of a pipeline
instead of being recomputed per cell per featurizer.
"""

from __future__ import annotations

import enum
import hashlib
import itertools
from typing import Sequence

import numpy as np

from repro.dataset.table import Cell, Dataset, DatasetDelta

#: Monotonic counter backing :attr:`Featurizer.cache_token` — every reset
#: yields a token never seen before in the process, so stale cache entries
#: from a previous fit can never collide with a refitted model.
_TOKEN_COUNTER = itertools.count()


class FeatureContext(enum.Enum):
    """The three granularities of §4.1.

    Used in two distinct roles:

    - :attr:`Featurizer.context` — the *fit-time* granularity of the model
      (the paper's classification: what the statistics describe);
    - :attr:`Featurizer.scope` — the *transform-time* dependency: which part
      of the dataset a transformed block reads beyond the batch's own
      resolved values.  ``ATTRIBUTE`` = nothing beyond the batch's columns,
      ``TUPLE`` = the batch rows' contents across all columns, ``DATASET`` =
      potentially anything.  The scope drives cache keying and incremental
      re-scoring; the two often differ (e.g. the neighborhood model *fits*
      on the whole dataset but *transforms* from the cell value alone).
    """

    ATTRIBUTE = "attribute"
    TUPLE = "tuple"
    DATASET = "dataset"


class CellBatch:
    """A batch of cells to featurize against one dataset.

    Built once per pipeline call and shared by every featurizer in the
    pipeline.  All derived groupings are lazy: a featurizer that only needs
    ``resolved`` values never pays for the per-attribute index.

    ``values`` overrides the observed cell values — this is how augmented
    examples are featurised: the synthetic value replaces the observed one
    while the tuple context stays real.
    """

    __slots__ = (
        "cells",
        "dataset",
        "values",
        "resolved",
        "_by_attr",
        "_value_groups",
        "_overridden",
        "_digest",
        "_columns_fingerprint",
        "_rows_fingerprint",
    )

    def __init__(
        self,
        cells: Sequence[Cell],
        dataset: Dataset,
        values: Sequence[str] | None = None,
    ):
        self.cells: list[Cell] = list(cells)
        self.dataset = dataset
        if values is not None and len(values) != len(self.cells):
            raise ValueError("values override must match cells length")
        self.values: list[str] | None = (
            None if values is None else [str(v) for v in values]
        )
        #: Per-cell value, honouring the override when present.
        self.resolved: list[str] = (
            self.values
            if self.values is not None
            else [dataset.value(c) for c in self.cells]
        )
        self._by_attr: dict[str, np.ndarray] | None = None
        self._value_groups: dict[str, dict[str, np.ndarray]] | None = None
        self._overridden: np.ndarray | None = None
        self._digest: str | None = None
        self._columns_fingerprint: str | None = None
        self._rows_fingerprint: str | None = None

    def __len__(self) -> int:
        return len(self.cells)

    @property
    def by_attr(self) -> dict[str, np.ndarray]:
        """Batch positions grouped by attribute (insertion order preserved)."""
        if self._by_attr is None:
            groups: dict[str, list[int]] = {}
            for i, cell in enumerate(self.cells):
                groups.setdefault(cell.attr, []).append(i)
            self._by_attr = {
                attr: np.asarray(idx, dtype=np.intp) for attr, idx in groups.items()
            }
        return self._by_attr

    @property
    def value_groups(self) -> dict[str, dict[str, np.ndarray]]:
        """Positions grouped by ``(attribute, resolved value)``.

        The core vectorisation structure: per-value statistics (n-gram
        probabilities, embeddings, frequencies) are computed once per unique
        value of a column and scattered to every cell carrying it.
        """
        if self._value_groups is None:
            groups: dict[str, dict[str, list[int]]] = {}
            for i, cell in enumerate(self.cells):
                groups.setdefault(cell.attr, {}).setdefault(self.resolved[i], []).append(i)
            self._value_groups = {
                attr: {
                    value: np.asarray(idx, dtype=np.intp)
                    for value, idx in by_value.items()
                }
                for attr, by_value in groups.items()
            }
        return self._value_groups

    @property
    def overridden(self) -> np.ndarray:
        """Boolean mask: cell value differs from the observed one."""
        if self._overridden is None:
            if self.values is None:
                self._overridden = np.zeros(len(self.cells), dtype=bool)
            else:
                self._overridden = np.array(
                    [
                        value != self.dataset.value(cell)
                        for cell, value in zip(self.cells, self.resolved)
                    ],
                    dtype=bool,
                )
        return self._overridden

    @property
    def dataset_fingerprint(self) -> str:
        """Content hash of the backing dataset (see ``Dataset.fingerprint``)."""
        return self.dataset.fingerprint()

    @property
    def columns_fingerprint(self) -> str:
        """Combined content hash of the columns the batch's cells live in.

        Keys attribute-scoped blocks: it changes when any of the batch's
        columns is mutated, and is untouched by edits to other columns.
        """
        if self._columns_fingerprint is None:
            h = hashlib.blake2b(digest_size=16)
            for attr in sorted(self.by_attr):
                h.update(attr.encode("utf-8"))
                h.update(b"\x1f")
                h.update(self.dataset.column_fingerprint(attr).encode("ascii"))
                h.update(b"\x1d")
            self._columns_fingerprint = h.hexdigest()
        return self._columns_fingerprint

    @property
    def rows_fingerprint(self) -> str:
        """Content hash of the batch's rows across all attributes.

        Keys tuple-scoped blocks: it changes when any cell of any of the
        batch's rows is mutated, and is untouched by edits to other rows.
        """
        if self._rows_fingerprint is None:
            self._rows_fingerprint = self.dataset.rows_fingerprint(
                c.row for c in self.cells
            )
        return self._rows_fingerprint

    @property
    def digest(self) -> str:
        """Stable hash of the batch's cells and resolved values.

        Together with :attr:`dataset_fingerprint` and a featurizer's
        ``cache_token``, this fully keys a transformed block: same cells,
        same overrides, same dataset, same fitted model → same output.
        """
        if self._digest is None:
            h = hashlib.blake2b(digest_size=16)
            for cell, value in zip(self.cells, self.resolved):
                h.update(f"{cell.row}\x1f{cell.attr}\x1f{value}\x1e".encode("utf-8"))
            self._digest = h.hexdigest()
        return self._digest


class Featurizer:
    """One representation model: fit on the noisy dataset, transform cells.

    Subclasses set :attr:`name` (used by the ablation study to address
    models), :attr:`context`, :attr:`scope`, and :attr:`branch`.  ``branch``
    is ``None`` for fixed numeric features and a branch label (``"char"``,
    ``"word"``, ``"tuple"``) for outputs that feed a learnable representation
    layer (Fig. 2B) inside the joint model.

    ``scope`` declares the transform-time dependency granularity — what a
    transformed block reads from the dataset beyond the batch's own resolved
    values — and selects the fingerprint that keys the block in the feature
    cache (see :meth:`scoped_fingerprint`).  The default is the conservative
    ``DATASET`` (any mutation invalidates); built-in models declare the
    tightest scope that is honest for their transform.

    The primary transform contract is :meth:`transform_batch`, which receives
    a :class:`CellBatch` and returns the feature block for all of its cells
    at once; :meth:`transform` is a convenience wrapper that builds the batch
    from loose arguments.  Legacy subclasses that override only
    :meth:`transform` keep working — the base :meth:`transform_batch`
    delegates to it.
    """

    name: str = "featurizer"
    context: FeatureContext = FeatureContext.ATTRIBUTE
    #: Transform-time dependency granularity (cache scoping + incremental
    #: re-scoring).  DATASET is the safe default for custom subclasses.
    scope: FeatureContext = FeatureContext.DATASET
    branch: str | None = None
    _cache_token: str | None = None
    #: Whole-state artifact kind tag (see :mod:`repro.artifacts`).  ``None``
    #: means this featurizer is not stored at whole-state granularity —
    #: either its fit is too cheap to be worth a store round-trip (n-gram
    #: counts, frequencies, one-hots) or it manages finer-grained artifacts
    #: itself (the per-column embedding models).
    artifact_kind: str | None = None
    #: The fitted-artifact store in effect for this fit, attached by
    #: :meth:`FeaturePipeline.fit` (and left in place so column-scoped
    #: ``refresh`` consults it too).  ``None`` disables store consultation.
    artifact_store = None
    _artifact_keys: "dict[str, str] | None" = None

    def fit(self, dataset: Dataset) -> "Featurizer":
        """Learn the model's statistics from the (noisy) input dataset D.

        Refitting an already-fitted featurizer should be followed by
        :meth:`reset_cache_token` so cached blocks from the previous fit
        cannot be served (``FeaturePipeline.fit`` does this automatically).
        """
        raise NotImplementedError

    def refresh(self, dataset: Dataset, delta: DatasetDelta) -> bool:
        """Refit on ``dataset`` if ``delta`` dirties this model's fitted state.

        Returns whether a refit happened (and hence a fresh cache token was
        issued).  The base implementation refits fully on any effective
        change; per-column models override this to refit only the touched
        columns, and models whose fitted state cannot go stale (e.g. a
        schema-only one-hot) override it to do nothing.
        """
        if delta.is_empty:
            return False
        self.fit_through_store(dataset)
        self.reset_cache_token()
        return True

    def fit_through_store(self, dataset: Dataset) -> None:
        """Fit, serving/storing the whole fitted state through the attached
        artifact store when this featurizer declares an :attr:`artifact_kind`.

        Used by both :meth:`FeaturePipeline.fit` and the base
        :meth:`refresh`, so an interactive-loop refit consults the store
        exactly like an initial fit.  The artifact key is recorded store or
        not — it is a pure content/config derivation, and persisted
        detectors carry it as provenance.
        """
        if self.artifact_kind is None:
            self.fit(dataset)
            return
        from repro.artifacts.codec import featurizer_from_payload, featurizer_payload
        from repro.artifacts.keys import artifact_key

        key = artifact_key(
            self.artifact_kind, self.artifact_scope(dataset), self.artifact_config()
        )
        store = self.artifact_store
        if store is not None:
            payload = store.get(key)
            if payload is not None and self._adopt_state(payload, featurizer_from_payload):
                self._artifact_keys = {self.name: key}
                return
        self.fit(dataset)
        # Record (not replace): an out-of-core fit records its per-shard
        # partial keys inside fit(), and the whole-state key joins them.
        self._record_artifact(self.name, key)
        if store is not None:
            payload = featurizer_payload(self)
            if payload is not None:
                store.put(key, payload, kind=self.artifact_kind)

    def _adopt_state(self, payload: dict, decode) -> bool:
        """Take a stored fitted state in place; False on any decode trouble
        (the caller then refits — a bad artifact must never break a fit)."""
        try:
            loaded = decode(payload)
        except Exception:
            return False
        if type(loaded) is not type(self):
            return False
        keep = {
            k: self.__dict__[k]
            for k in ("artifact_store", "_artifact_keys")
            if k in self.__dict__
        }
        self.__dict__.update(loaded.__dict__)
        self.__dict__.update(keep)
        return True

    # -- fitted-artifact participation (see repro.artifacts) ------------ #

    def artifact_config(self) -> dict:
        """JSON-able configuration identifying this component for keying.

        Together with :attr:`artifact_kind` and :meth:`artifact_scope` this
        determines the whole-state artifact key; subclasses with knobs that
        change the fitted state must include them here.
        """
        return {}

    def artifact_scope(self, dataset: Dataset) -> str:
        """Scoped content fingerprint of the data this model's fit reads.

        Defaults to the whole-relation fingerprint; models fitting narrower
        state may override (the per-column embedding featurizers key each
        column's model on that column's fingerprint instead).
        """
        return dataset.fingerprint()

    @property
    def artifact_keys(self) -> dict[str, str]:
        """Artifact keys consulted/stored by the most recent fit, labelled
        ``name`` (whole-state) or ``name/<column>`` (per-column)."""
        return dict(self._artifact_keys or {})

    def _record_artifact(self, label: str, key: str) -> None:
        if self._artifact_keys is None:
            self._artifact_keys = {}
        self._artifact_keys[label] = key

    def scoped_fingerprint(self, batch: CellBatch) -> str:
        """The dataset fingerprint keying this model's block for ``batch``.

        Selected by :attr:`scope`: attribute-scoped models key on the
        batch's column fingerprints, tuple-scoped models on the batch rows'
        content hash, dataset-scoped models on the whole-relation
        fingerprint.  Together with :attr:`cache_token` and the batch digest
        this fully determines a transformed block.
        """
        if self.scope is FeatureContext.ATTRIBUTE:
            return batch.columns_fingerprint
        if self.scope is FeatureContext.TUPLE:
            return batch.rows_fingerprint
        return batch.dataset_fingerprint

    def transform_batch(self, batch: CellBatch) -> np.ndarray:
        """Feature block ``[len(batch), self.dim]`` for the batch's cells.

        Implementations should vectorise over :attr:`CellBatch.value_groups`
        (or :attr:`CellBatch.by_attr`) so per-column statistics are computed
        once per unique value, not once per cell.
        """
        if type(self).transform is Featurizer.transform:
            raise NotImplementedError(
                f"{type(self).__name__} must implement transform_batch()"
            )
        # Legacy subclass: only the loose-argument transform() is overridden.
        # Older subclasses may predate the ``values`` parameter, so only pass
        # the override when there is one to honour.
        if batch.values is None:
            return self.transform(batch.cells, batch.dataset)
        return self.transform(batch.cells, batch.dataset, batch.values)

    def transform(
        self, cells: Sequence[Cell], dataset: Dataset, values: Sequence[str] | None = None
    ) -> np.ndarray:
        """Feature block ``[len(cells), self.dim]`` for the given cells.

        ``dataset`` supplies the observed values; it may differ from the fit
        dataset only in cell values (augmented examples reuse row context).
        ``values`` overrides observed cell values position-by-position.
        """
        return self.transform_batch(CellBatch(cells, dataset, values))

    @property
    def dim(self) -> int:
        """Output width of :meth:`transform_batch`."""
        raise NotImplementedError

    @property
    def cache_token(self) -> str:
        """Opaque token identifying this featurizer's *fitted state*.

        Feature-cache keys include this token; it changes on every
        :meth:`reset_cache_token`, so blocks computed under an older fit can
        never be confused with the current one.
        """
        if self._cache_token is None:
            self.reset_cache_token()
        return self._cache_token

    def reset_cache_token(self) -> None:
        """Issue a fresh cache token (call after refitting in place)."""
        self._cache_token = f"{type(self).__name__}:{self.name}#{next(_TOKEN_COUNTER)}"

    def _require_fitted(self, attribute: str) -> None:
        if getattr(self, attribute, None) is None:
            raise RuntimeError(f"{type(self).__name__} used before fit()")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, context={self.context.value})"


class ColumnScopedFeaturizer(Featurizer):
    """Base for featurizers whose fitted state is an independent per-column
    mapping (one model/statistic per attribute).

    Subclasses implement :meth:`_fit_column` (refit one column's state) and
    set :attr:`state_attribute` to the instance attribute holding the
    per-column mapping (``None`` before :meth:`fit`).  In exchange they get
    a column-scoped :meth:`refresh` — after a batch edit only the touched
    columns are refitted.

    Note the cache-token granularity: a refresh still issues one fresh
    token for the whole featurizer, so cached blocks of *untouched* columns
    are also recomputed on next use.  That is a deliberate trade-off —
    refitting a column's model (e.g. a FastText embedding) dwarfs
    re-transforming its cached blocks, and a per-column token would
    complicate every cache key for a cost that is already marginal.
    """

    scope = FeatureContext.ATTRIBUTE
    #: Name of the instance attribute holding the per-column fitted state.
    state_attribute: str = "_models"

    def _fit_column(self, dataset: Dataset, attr: str) -> None:
        """(Re)fit the state of one column in place."""
        raise NotImplementedError

    def refresh(self, dataset: Dataset, delta: DatasetDelta) -> bool:
        if delta.is_empty:
            return False
        if getattr(self, self.state_attribute, None) is None:
            self.fit(dataset)
        else:
            for attr in delta.columns:
                self._fit_column(dataset, attr)
        self.reset_cache_token()
        return True
