"""Featurizer interface shared by all representation models."""

from __future__ import annotations

import enum
from typing import Sequence

import numpy as np

from repro.dataset.table import Cell, Dataset


class FeatureContext(enum.Enum):
    """The three granularities of §4.1."""

    ATTRIBUTE = "attribute"
    TUPLE = "tuple"
    DATASET = "dataset"


class Featurizer:
    """One representation model: fit on the noisy dataset, transform cells.

    Subclasses set :attr:`name` (used by the ablation study to address
    models), :attr:`context`, and :attr:`branch`.  ``branch`` is ``None`` for
    fixed numeric features and a branch label (``"char"``, ``"word"``,
    ``"tuple"``) for outputs that feed a learnable representation layer
    (Fig. 2B) inside the joint model.
    """

    name: str = "featurizer"
    context: FeatureContext = FeatureContext.ATTRIBUTE
    branch: str | None = None

    def fit(self, dataset: Dataset) -> "Featurizer":
        """Learn the model's statistics from the (noisy) input dataset D."""
        raise NotImplementedError

    def transform(self, cells: Sequence[Cell], dataset: Dataset) -> np.ndarray:
        """Feature block ``[len(cells), self.dim]`` for the given cells.

        ``dataset`` supplies the observed values; it may differ from the fit
        dataset only in cell values (augmented examples reuse row context).
        """
        raise NotImplementedError

    @property
    def dim(self) -> int:
        """Output width of :meth:`transform`."""
        raise NotImplementedError

    def _require_fitted(self, attribute: str) -> None:
        if getattr(self, attribute, None) is None:
            raise RuntimeError(f"{type(self).__name__} used before fit()")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, context={self.context.value})"
