"""Keyed, invalidation-aware cache of transformed feature blocks.

Featurization dominates runtime at scale: every augmentation epoch, repeated
evaluation run, and full-dataset prediction pass re-derives the same blocks
from the same fitted models.  :class:`FeatureCache` memoises each block
under the triple

    ``(featurizer fitted-state token, scoped fingerprint, batch digest)``

so identical work is done once:

- the **featurizer token** (``Featurizer.cache_token``) changes whenever a
  model is (re)fitted, so blocks from a stale fit can never be served;
- the **scoped fingerprint** (``Featurizer.scoped_fingerprint``) hashes
  exactly the part of the dataset the model's ``scope`` declares its
  transform depends on — the batch's columns for attribute-scoped models,
  the batch rows' contents for tuple-scoped models, the whole relation for
  dataset-scoped models.  In-place edits therefore invalidate only the
  blocks that could actually change: an edit to column A never evicts
  attribute-scoped blocks of column B, and tuple-scoped blocks of untouched
  rows survive edits elsewhere;
- the **batch digest** hashes the cells *and* their resolved (possibly
  overridden) values, so augmented variants of the same cells key
  separately.

Entries are bounded LRU; eviction and hit/miss counts are tracked in
:class:`CacheStats` (``cache.stats``).  Lookups are thread-safe, which the
detector's ``prediction_workers`` featurization pool relies on.

Cached arrays are returned by reference — treat them as read-only.  The
pipeline obeys this: standardisation and clipping allocate new arrays.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.features.base import CellBatch, Featurizer

#: A fully resolved cache key (featurizer token, scoped fingerprint, digest).
CacheKey = tuple[str, str, str]


@dataclass
class CacheStats:
    """Hit/miss/eviction accounting for one :class:`FeatureCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    #: Subset of ``evictions`` forced by the ``max_bytes`` bound (the rest
    #: were forced by ``max_entries``).
    byte_evictions: int = 0
    #: Blocks never inserted because they alone exceed ``max_bytes``.
    oversize_rejections: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never used)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, int]:
        """JSON-able counter snapshot (includes the derived ``lookups``)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "byte_evictions": self.byte_evictions,
            "oversize_rejections": self.oversize_rejections,
            "invalidations": self.invalidations,
            "lookups": self.lookups,
        }

    def summary(self) -> str:
        text = (
            f"{self.hits} hits / {self.lookups} lookups "
            f"({self.hit_rate:.0%}), {self.evictions} evicted, "
            f"{self.invalidations} invalidated"
        )
        if self.byte_evictions or self.oversize_rejections:
            text += (
                f" ({self.byte_evictions} by bytes, "
                f"{self.oversize_rejections} oversize)"
            )
        return text


@dataclass
class _Entry:
    block: np.ndarray
    nbytes: int = field(init=False)

    def __post_init__(self) -> None:
        self.nbytes = int(self.block.nbytes)


class FeatureCache:
    """Bounded LRU cache of transformed feature blocks.

    ``max_entries`` bounds the entry count (an entry is one featurizer's
    block for one batch); ``max_bytes``, when set, additionally bounds the
    total bytes held by cached blocks — out-of-core relations can stream
    millions of cells through prediction, and an entry-count bound alone
    lets the cache grow with block width.  Either bound evicts LRU-first.
    A single block larger than ``max_bytes`` is returned to the caller but
    never inserted.  All operations are thread-safe; a miss computes
    outside the lock so concurrent workers never serialise on featurization.
    """

    def __init__(self, max_entries: int = 1024, max_bytes: int | None = None):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive when set")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.stats = CacheStats()
        self._entries: OrderedDict[CacheKey, _Entry] = OrderedDict()
        self._nbytes = 0
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Total bytes held by cached blocks."""
        with self._lock:
            return self._nbytes

    @staticmethod
    def key_for(featurizer: Featurizer, batch: CellBatch) -> CacheKey:
        return (featurizer.cache_token, featurizer.scoped_fingerprint(batch), batch.digest)

    def get_or_compute(self, featurizer: Featurizer, batch: CellBatch) -> np.ndarray:
        """The featurizer's block for ``batch``, computed at most once.

        The returned array is shared with the cache — do not mutate it.
        """
        key = self.key_for(featurizer, batch)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return entry.block
        # Miss: compute without holding the lock (parallel misses allowed).
        block = featurizer.transform_batch(batch)
        with self._lock:
            self.stats.misses += 1
            if key not in self._entries:
                entry = _Entry(block)
                if self.max_bytes is not None and entry.nbytes > self.max_bytes:
                    self.stats.oversize_rejections += 1
                    return block
                self._entries[key] = entry
                self._nbytes += entry.nbytes
                while len(self._entries) > self.max_entries:
                    _, evicted = self._entries.popitem(last=False)
                    self._nbytes -= evicted.nbytes
                    self.stats.evictions += 1
                while self.max_bytes is not None and self._nbytes > self.max_bytes:
                    _, evicted = self._entries.popitem(last=False)
                    self._nbytes -= evicted.nbytes
                    self.stats.evictions += 1
                    self.stats.byte_evictions += 1
        return block

    def invalidate_scope(self, fingerprint: str) -> int:
        """Drop every block keyed under the given scoped fingerprint.

        ``fingerprint`` may be any scoped fingerprint — a whole-relation
        fingerprint, a batch columns fingerprint, or a batch rows
        fingerprint.  Normally unnecessary — a mutated dataset produces new
        scoped fingerprints and old entries age out — but lets callers
        reclaim memory eagerly when a relation is known to be gone.  Returns
        the number of entries dropped.
        """
        with self._lock:
            stale = [k for k in self._entries if k[1] == fingerprint]
            for k in stale:
                self._nbytes -= self._entries[k].nbytes
                del self._entries[k]
            self.stats.invalidations += len(stale)
            return len(stale)

    def clear(self) -> None:
        """Drop all entries (statistics are preserved)."""
        with self._lock:
            self.stats.invalidations += len(self._entries)
            self._entries.clear()
            self._nbytes = 0

    def __repr__(self) -> str:
        return (
            f"FeatureCache(entries={len(self._entries)}/{self.max_entries}, "
            f"{self.stats.summary()})"
        )
