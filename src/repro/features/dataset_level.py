"""Dataset-level representation models (§4.1).

These capture compatibility of a cell with the dataset as a whole: how many
denial-constraint violations its tuple participates in, and how far the value
sits from its nearest neighbour in a dataset-wide value embedding.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

import numpy as np

from repro.artifacts.codec import fit_embedding_artifact
from repro.artifacts.keys import seed_material, shard_partial_key
from repro.constraints.dc import DenialConstraint
from repro.constraints.violations import ViolationEngine
from repro.dataset.relation import ShardSpan
from repro.dataset.table import Cell, Dataset
from repro.embeddings.corpus import EMPTY_TOKEN, tuple_value_corpus
from repro.embeddings.fasttext import FastTextEmbedding
from repro.features.base import CellBatch, FeatureContext, Featurizer
from repro.features.partials import (
    decode_fd_group_partial,
    encode_fd_group_partial,
    fd_group_partial,
    merge_fd_group_partials,
)


class ConstraintViolationFeaturizer(Featurizer):
    """Per-constraint violation counts for the cell's tuple (Table 7).

    For each constraint σ ∈ Σ the feature is the number of violations of σ
    the tuple participates in, masked to constraints that mention the cell's
    attribute.  For FD-shaped constraints the featurizer maintains group
    indexes so that a *value override* (augmented example) updates the count
    exactly; other constraint shapes keep the fit-time count.

    With an empty Σ (constraints are optional input) the block has zero
    width and the pipeline simply omits it.
    """

    name = "constraint_violations"
    context = FeatureContext.DATASET
    #: The transform reads fit-time counts plus, for overridden cells, the
    #: cell's row — so a block depends on at most the batch rows' contents.
    scope = FeatureContext.TUPLE
    branch = None
    #: Violation counts + FD indexes are pure functions of (relation, Σ):
    #: stored whole as a fitted artifact, keyed on both (Σ enters via
    #: :meth:`artifact_config`).
    artifact_kind = "featurizer/constraint_violations"

    def artifact_config(self) -> dict:
        return {
            "constraints": [
                {
                    "name": c.name,
                    "predicates": [
                        [p.left_attr, p.op, p.right_attr, p.constant]
                        for p in c.predicates
                    ],
                }
                for c in self._constraints
            ]
        }

    def __init__(self, constraints: Sequence[DenialConstraint]):
        self._constraints = list(constraints)
        self._engine = ViolationEngine(self._constraints)
        self._tuple_counts: np.ndarray | None = None
        # Per FD-shaped constraint: join attrs, residual attr, and the
        # group index {join_key -> {residual_value -> count}}.
        self._fd_indexes: list[dict | None] = []
        self._fit_dataset: Dataset | None = None

    def fit(self, dataset: Dataset) -> "ConstraintViolationFeaturizer":
        """Count per-tuple violations; shard-streamed when Σ is FD-shaped.

        Over a multi-shard relation whose constraints are all FD-shaped,
        the fit builds one mergeable group-table partial per (constraint,
        shard) — consulted/stored through the artifact store under the
        shard's fingerprint — then derives every tuple's count in a second
        streaming pass: within a join group of size ``n`` holding ``m``
        copies of the tuple's residual value, the tuple participates in
        exactly ``n - m`` violating pairs, which is what the pairwise hash
        join counts.  Any non-FD constraint (or a single-shard relation)
        falls back to the whole-relation engine pass.
        """
        self._fit_dataset = dataset
        self._artifact_keys = {}
        spans = dataset.shard_spans()
        shapes = [self._fd_shape(c) for c in self._constraints]
        if len(spans) <= 1 or any(shape is None for shape in shapes):
            self._tuple_counts = self._engine.tuple_violation_counts(dataset)
            self._fd_indexes = [
                self._build_fd_index(c, dataset) for c in self._constraints
            ]
            return self
        counts = np.zeros((dataset.num_rows, len(self._constraints)), dtype=np.float64)
        indexes: list[dict | None] = []
        for k, (constraint, shape) in enumerate(zip(self._constraints, shapes)):
            join_attrs, residual_attr = shape
            groups = merge_fd_group_partials(
                self._shard_groups(dataset, span, constraint, join_attrs, residual_attr)
                for span in spans
            )
            indexes.append(
                {
                    "join_attrs": join_attrs,
                    "residual_attr": residual_attr,
                    "groups": groups,
                }
            )
            for span in spans:
                join_chunks = [
                    dataset.column_chunk(a, span.start, span.stop) for a in join_attrs
                ]
                residual_chunk = dataset.column_chunk(
                    residual_attr, span.start, span.stop
                )
                for i in range(span.rows):
                    group = groups[tuple(chunk[i] for chunk in join_chunks)]
                    counts[span.start + i, k] = sum(group.values()) - group[
                        residual_chunk[i]
                    ]
        self._tuple_counts = counts
        self._fd_indexes = indexes
        return self

    def _shard_groups(
        self,
        dataset: Dataset,
        span: ShardSpan,
        constraint: DenialConstraint,
        join_attrs: list[str],
        residual_attr: str,
    ):
        """One (constraint, shard) group-table partial, through the store."""
        store = self.artifact_store
        if store is None:
            return fd_group_partial(dataset, span, join_attrs, residual_attr)
        config = {
            "constraint": {
                "name": constraint.name,
                "predicates": [
                    [p.left_attr, p.op, p.right_attr, p.constant]
                    for p in constraint.predicates
                ],
            }
        }
        key = shard_partial_key(
            self.artifact_kind, dataset.shard_fingerprint(span.index), config
        )
        self._record_artifact(f"{self.name}/{constraint.name}/shard/{span.index}", key)
        payload = store.get(key)
        if payload is not None:
            try:
                return decode_fd_group_partial(payload)
            except Exception:
                pass  # corrupt partial: recount below, overwrite in store
        groups = fd_group_partial(dataset, span, join_attrs, residual_attr)
        store.put(
            key,
            encode_fd_group_partial(groups),
            kind=f"{self.artifact_kind}.partial",
        )
        return groups

    @staticmethod
    def _fd_shape(constraint: DenialConstraint) -> tuple[list[str], str] | None:
        """Detect ``join_attrs == … & residual !=`` FD shape; None otherwise."""
        join_attrs = constraint.equality_join_attrs()
        residual = constraint.residual_predicates()
        if (
            join_attrs
            and len(residual) == 1
            and residual[0].op == "!="
            and residual[0].right_attr == residual[0].left_attr
        ):
            return join_attrs, residual[0].left_attr
        return None

    def _build_fd_index(self, constraint: DenialConstraint, dataset: Dataset) -> dict | None:
        shape = self._fd_shape(constraint)
        if shape is None:
            return None
        join_attrs, residual_attr = shape
        groups: dict[tuple[str, ...], dict[str, int]] = defaultdict(lambda: defaultdict(int))
        join_cols = [dataset.column(a) for a in join_attrs]
        residual_col = dataset.column(residual_attr)
        for row in range(dataset.num_rows):
            key = tuple(col[row] for col in join_cols)
            groups[key][residual_col[row]] += 1
        return {
            "join_attrs": join_attrs,
            "residual_attr": residual_attr,
            "groups": {k: dict(v) for k, v in groups.items()},
        }

    def _count_with_override(
        self, index: dict, cell: Cell, value: str, dataset: Dataset
    ) -> float:
        """Exact violation count for a tuple whose ``cell`` is overridden."""
        row_values = dataset.row_dict(cell.row)
        row_values[cell.attr] = value
        key = tuple(row_values[a] for a in index["join_attrs"])
        group = index["groups"].get(key, {})
        same_key = sum(group.values())
        same_residual = group.get(row_values[index["residual_attr"]], 0)
        # Exclude the tuple itself when it is a member of the group (i.e.
        # the override did not move it out of its original group).
        original_key = tuple(dataset.value(Cell(cell.row, a)) for a in index["join_attrs"])
        original_residual = dataset.value(Cell(cell.row, index["residual_attr"]))
        in_original_group = key == original_key
        if in_original_group:
            same_key -= 1
            if row_values[index["residual_attr"]] == original_residual:
                same_residual -= 1
        return float(same_key - same_residual)

    def transform_batch(self, batch: CellBatch) -> np.ndarray:
        self._require_fitted("_tuple_counts")
        dataset = batch.dataset
        out = np.zeros((len(batch), len(self._constraints)))
        overridden = batch.overridden
        rows = np.fromiter((c.row for c in batch.cells), dtype=np.intp, count=len(batch))
        for k, constraint in enumerate(self._constraints):
            # Constraint attribute sets and the per-attribute position index
            # are resolved once per constraint, not once per cell.
            attrs = constraint.attributes()
            index = self._fd_indexes[k]
            touched = [
                idx for attr, idx in batch.by_attr.items() if attr in attrs
            ]
            if not touched:
                continue
            sel = np.concatenate(touched)
            # Without an FD index the override cannot be recomputed exactly;
            # those cells keep the fit-time count (as before the batching).
            plain = sel if index is None else sel[~overridden[sel]]
            # Fit-time counts for unmodified tuples: one vectorised gather.
            in_range = plain[rows[plain] < self._tuple_counts.shape[0]]
            out[in_range, k] = self._tuple_counts[rows[in_range], k]
            if index is not None:
                for i in sel[overridden[sel]]:
                    out[i, k] = self._count_with_override(
                        index, batch.cells[i], batch.resolved[i], dataset
                    )
        # Log-compress: violation counts scale with group sizes.
        return np.log1p(np.maximum(out, 0.0))

    @property
    def dim(self) -> int:
        return len(self._constraints)


class NeighborhoodFeaturizer(Featurizer):
    """Distance to the closest other value in a tuple-value embedding.

    A word-embedding model is trained on tuples whose tokens are the raw
    attribute values (Appendix A.1); for each cell the feature is the cosine
    distance to the nearest *other* vocabulary entry.  The intuition: if a
    cell is a typo, some near-identical clean value exists nearby — small
    distance co-occurring with other "suspicious" signals is evidence of
    error, while a unique-but-clean value has no close neighbour.
    """

    name = "neighborhood"
    context = FeatureContext.DATASET
    #: Fits on the whole dataset, but the transform reads only the cell's
    #: resolved value (covered by the batch digest) — attribute-scoped.
    scope = FeatureContext.ATTRIBUTE
    branch = None

    def __init__(self, dim: int = 16, epochs: int = 2, rng=None):
        self._dim = dim
        self._epochs = epochs
        self._seed_material = seed_material(rng)
        self._model: FastTextEmbedding | None = None
        self._cache: dict[str, float] = {}

    def _embedding_config(self) -> dict:
        # Full training config so any default change rekeys the artifact.
        config = FastTextEmbedding(
            dim=self._dim, epochs=self._epochs, window=8
        ).config_dict()
        if self._seed_material is not None:
            config["rng"] = self._seed_material
        return config

    def fit(self, dataset: Dataset) -> "NeighborhoodFeaturizer":
        key, model = fit_embedding_artifact(
            self.artifact_store,
            "embedding/tuple-value",
            dataset.fingerprint(),
            self._embedding_config(),
            lambda seed: FastTextEmbedding(
                dim=self._dim, epochs=self._epochs, window=8, rng=seed
            ).fit(tuple_value_corpus(dataset)),
        )
        self._artifact_keys = {self.name: key}
        self._model = model
        self._cache = {}
        return self

    def transform_batch(self, batch: CellBatch) -> np.ndarray:
        self._require_fitted("_model")
        out = np.zeros((len(batch), 1))
        # Distance depends only on the value: compute per unique token, with
        # the persistent per-fit memo carrying hits across batches.
        unique: dict[str, list[int]] = {}
        for i, value in enumerate(batch.resolved):
            unique.setdefault(value if value else EMPTY_TOKEN, []).append(i)
        for token, idx in unique.items():
            if token not in self._cache:
                self._cache[token] = self._model.nearest_neighbor_distance(token)
            out[idx, 0] = self._cache[token]
        return out

    @property
    def dim(self) -> int:
        return 1
