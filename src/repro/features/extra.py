"""Optional extra representation models.

§4.1: "Our architecture can trivially accommodate additional models or more
complex variants of the current models."  These two are the variants we
found most useful beyond the paper's bare-bone set; they are opt-in (append
them to a :class:`~repro.features.pipeline.FeaturePipeline`'s featurizer
list, or build a custom pipeline) so the default pipeline stays exactly the
paper's Table 7.

- :class:`ValueLengthFeaturizer` — z-scored value length per attribute.
  Insertion/deletion typos shift a value's length away from its column's
  distribution; cheap and surprisingly discriminative on fixed-width
  columns (zip codes, phone numbers, ids).
- :class:`TokenFrequencyFeaturizer` — frequency of the value's *rarest word
  token* within its attribute.  Complements the character 3-gram format
  model at the word level: a swapped-in token that is valid characters-wise
  but alien to the column surfaces here.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.dataset.table import Cell, Dataset
from repro.features.attribute import _resolved_values
from repro.features.base import FeatureContext, Featurizer
from repro.text.tokenize import word_tokens


class ValueLengthFeaturizer(Featurizer):
    """Z-score of the cell value's length within its attribute."""

    name = "value_length"
    context = FeatureContext.ATTRIBUTE
    branch = None

    def __init__(self) -> None:
        self._stats: dict[str, tuple[float, float]] | None = None

    def fit(self, dataset: Dataset) -> "ValueLengthFeaturizer":
        self._stats = {}
        for attr in dataset.attributes:
            lengths = np.array([len(v) for v in dataset.column(attr)], dtype=np.float64)
            mean = float(lengths.mean()) if lengths.size else 0.0
            std = float(lengths.std()) if lengths.size else 0.0
            self._stats[attr] = (mean, std if std > 1e-9 else 1.0)
        return self

    def transform(
        self, cells: Sequence[Cell], dataset: Dataset, values: Sequence[str] | None = None
    ) -> np.ndarray:
        self._require_fitted("_stats")
        resolved = _resolved_values(cells, dataset, values)
        out = np.zeros((len(cells), 1))
        for i, (cell, value) in enumerate(zip(cells, resolved)):
            mean, std = self._stats[cell.attr]
            out[i, 0] = (len(value) - mean) / std
        return out

    @property
    def dim(self) -> int:
        return 1


class TokenFrequencyFeaturizer(Featurizer):
    """Frequency of the rarest word token of the cell within its attribute.

    Log-scaled relative frequency with Laplace smoothing; values with no
    word tokens (pure punctuation / empty) get the frequency of the empty
    sentinel, which is itself learned from the column.
    """

    name = "token_frequency"
    context = FeatureContext.ATTRIBUTE
    branch = None

    _EMPTY = "<no-token>"

    def __init__(self, alpha: float = 0.5):
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.alpha = alpha
        self._counts: dict[str, dict[str, int]] | None = None
        self._totals: dict[str, int] = {}

    def fit(self, dataset: Dataset) -> "TokenFrequencyFeaturizer":
        self._counts = {}
        self._totals = {}
        for attr in dataset.attributes:
            counts: dict[str, int] = {}
            total = 0
            for value in dataset.column(attr):
                tokens = word_tokens(value) or [self._EMPTY]
                for token in tokens:
                    counts[token] = counts.get(token, 0) + 1
                    total += 1
            self._counts[attr] = counts
            self._totals[attr] = total
        return self

    def _min_token_logfreq(self, attr: str, value: str) -> float:
        counts = self._counts[attr]
        total = self._totals[attr]
        vocab = len(counts) + 1
        tokens = word_tokens(value) or [self._EMPTY]
        freqs = [
            (counts.get(t, 0) + self.alpha) / (total + self.alpha * vocab) for t in tokens
        ]
        return float(np.log(min(freqs)))

    def transform(
        self, cells: Sequence[Cell], dataset: Dataset, values: Sequence[str] | None = None
    ) -> np.ndarray:
        self._require_fitted("_counts")
        resolved = _resolved_values(cells, dataset, values)
        out = np.zeros((len(cells), 1))
        for i, (cell, value) in enumerate(zip(cells, resolved)):
            out[i, 0] = self._min_token_logfreq(cell.attr, value)
        return out

    @property
    def dim(self) -> int:
        return 1
