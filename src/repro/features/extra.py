"""Optional extra representation models beyond the paper's Table 7 set.

§4.1: "Our architecture can trivially accommodate additional models or more
complex variants of the current models."  These two are the variants we
found most useful beyond the paper's bare-bone set; they are opt-in so the
default pipeline stays exactly the paper's Table 7.

Public API
----------

:class:`ValueLengthFeaturizer`
    Z-scored value length per attribute.  Insertion/deletion typos shift a
    value's length away from its column's distribution; cheap and
    surprisingly discriminative on fixed-width columns (zip codes, phone
    numbers, ids).  One output dimension; ``branch=None`` (feeds the wide
    numeric block).

:class:`TokenFrequencyFeaturizer`
    Frequency of the value's *rarest word token* within its attribute,
    Laplace-smoothed (``alpha``) and log-scaled.  Complements the character
    3-gram format model at the word level: a swapped-in token that is valid
    characters-wise but alien to the column surfaces here.  One output
    dimension; ``branch=None``.

Both follow the standard :class:`~repro.features.base.Featurizer` lifecycle
— ``fit(dataset)`` learns per-attribute statistics, then the batched
``transform_batch`` / ``transform`` produce ``[n_cells, 1]`` blocks — and
are compatible with the feature cache and value overrides.

Usage::

    from repro.features import FeaturePipeline, default_pipeline
    from repro.features.extra import ValueLengthFeaturizer, TokenFrequencyFeaturizer

    base = default_pipeline(constraints)
    pipeline = FeaturePipeline(
        base.featurizers + [ValueLengthFeaturizer(), TokenFrequencyFeaturizer()]
    ).fit(dataset)

Both are registered ``featurizer`` components (keys ``value_length`` and
``token_frequency``), so a :class:`~repro.spec.DetectorSpec` can add them
by name, and :mod:`repro.persistence` knows how to encode them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataset.table import Dataset
from repro.features.base import CellBatch, ColumnScopedFeaturizer, FeatureContext
from repro.registry import ComponentError, register
from repro.text.tokenize import word_tokens


@dataclass(frozen=True)
class TokenFrequencyConfig:
    """Typed config of :class:`TokenFrequencyFeaturizer` (registry key
    ``token_frequency``)."""

    alpha: float = 0.5

    def __post_init__(self) -> None:
        if not self.alpha > 0:
            raise ValueError(f"alpha must be positive, got {self.alpha!r}")


class ValueLengthFeaturizer(ColumnScopedFeaturizer):
    """Z-score of the cell value's length within its attribute."""

    name = "value_length"
    context = FeatureContext.ATTRIBUTE
    scope = FeatureContext.ATTRIBUTE
    state_attribute = "_stats"
    branch = None

    def __init__(self) -> None:
        self._stats: dict[str, tuple[float, float]] | None = None

    def _fit_column(self, dataset: Dataset, attr: str) -> None:
        lengths = np.array([len(v) for v in dataset.column(attr)], dtype=np.float64)
        mean = float(lengths.mean()) if lengths.size else 0.0
        std = float(lengths.std()) if lengths.size else 0.0
        self._stats[attr] = (mean, std if std > 1e-9 else 1.0)

    def fit(self, dataset: Dataset) -> "ValueLengthFeaturizer":
        self._stats = {}
        for attr in dataset.attributes:
            self._fit_column(dataset, attr)
        return self

    def transform_batch(self, batch: CellBatch) -> np.ndarray:
        self._require_fitted("_stats")
        out = np.zeros((len(batch), 1))
        for attr, idx in batch.by_attr.items():
            mean, std = self._stats[attr]
            lengths = np.fromiter(
                (len(batch.resolved[i]) for i in idx), dtype=np.float64, count=len(idx)
            )
            out[idx, 0] = (lengths - mean) / std
        return out

    @property
    def dim(self) -> int:
        return 1


class TokenFrequencyFeaturizer(ColumnScopedFeaturizer):
    """Frequency of the rarest word token of the cell within its attribute.

    Log-scaled relative frequency with Laplace smoothing; values with no
    word tokens (pure punctuation / empty) get the frequency of the empty
    sentinel, which is itself learned from the column.
    """

    name = "token_frequency"
    context = FeatureContext.ATTRIBUTE
    scope = FeatureContext.ATTRIBUTE
    state_attribute = "_counts"
    branch = None

    _EMPTY = "<no-token>"

    def __init__(self, alpha: float = 0.5):
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.alpha = alpha
        self._counts: dict[str, dict[str, int]] | None = None
        self._totals: dict[str, int] = {}

    def _fit_column(self, dataset: Dataset, attr: str) -> None:
        counts: dict[str, int] = {}
        total = 0
        for value in dataset.column(attr):
            tokens = word_tokens(value) or [self._EMPTY]
            for token in tokens:
                counts[token] = counts.get(token, 0) + 1
                total += 1
        self._counts[attr] = counts
        self._totals[attr] = total

    def fit(self, dataset: Dataset) -> "TokenFrequencyFeaturizer":
        self._counts = {}
        self._totals = {}
        for attr in dataset.attributes:
            self._fit_column(dataset, attr)
        return self

    def _min_token_logfreq(self, attr: str, value: str) -> float:
        counts = self._counts[attr]
        total = self._totals[attr]
        vocab = len(counts) + 1
        tokens = word_tokens(value) or [self._EMPTY]
        freqs = [
            (counts.get(t, 0) + self.alpha) / (total + self.alpha * vocab) for t in tokens
        ]
        return float(np.log(min(freqs)))

    def transform_batch(self, batch: CellBatch) -> np.ndarray:
        self._require_fitted("_counts")
        out = np.zeros((len(batch), 1))
        for attr, by_value in batch.value_groups.items():
            for value, idx in by_value.items():
                out[idx, 0] = self._min_token_logfreq(attr, value)
        return out

    @property
    def dim(self) -> int:
        return 1


# --------------------------------------------------------------------- #
# Registry wiring: the opt-in models register as ordinary "featurizer"
# components, so a DetectorSpec can add them by name — e.g.
# ``[[featurizers]] name = "value_length"`` — with zero imperative code.
# --------------------------------------------------------------------- #


@register(
    "featurizer", "value_length",
    description="z-scored value length within the attribute (opt-in)",
)
def _value_length(params, ctx=None) -> ValueLengthFeaturizer:
    if params:
        raise ComponentError(f"takes no parameters, got {sorted(params)}")
    return ValueLengthFeaturizer()


@register(
    "featurizer", "token_frequency",
    config=TokenFrequencyConfig,
    description="log-frequency of the value's rarest word token (opt-in)",
)
def _token_frequency(cfg: TokenFrequencyConfig, ctx=None) -> TokenFrequencyFeaturizer:
    return TokenFrequencyFeaturizer(alpha=cfg.alpha)
