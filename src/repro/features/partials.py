"""Mergeable per-shard partials of relation-scoped featurizer fits.

Out-of-core relations (:mod:`repro.dataset.sharded`) are fitted shard by
shard: each shard yields a *partial* — a summary whose merge is associative
and commutative-up-to-order — and merging all partials reproduces exactly
the state a whole-relation fit would have produced.  Two families live here:

- **co-occurrence partials** — the nested joint-count tables of
  :class:`~repro.features.tuple_level.CooccurrenceFeaturizer`; merging sums
  counts, and because each shard scans its rows in order, the merged tables
  are equal (as mappings) to a single whole-relation scan;
- **FD group partials** — the ``{join_key -> {residual_value -> count}}``
  group tables of FD-shaped denial constraints
  (:class:`~repro.features.dataset_level.ConstraintViolationFeaturizer`);
  merging sums group counts, and each tuple's violation count follows in a
  second streaming pass as ``group_total - count(own residual value)``,
  which equals the pairwise hash-join count exactly.

Partials are stored through the fitted-artifact store under
:func:`repro.artifacts.keys.shard_partial_key` — keyed on the *shard's*
content fingerprint — so growing a relation by appending shards refits
nothing that was already summarised.  The store carries JSON-able payloads;
the ``encode_*``/``decode_*`` pairs here convert the tuple-keyed runtime
form to a pure-JSON form and back.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.dataset.relation import Relation, ShardSpan

#: Joint-count partial runtime form (also the featurizer's fitted state):
#: ``joint[(attr_a, value_a)][attr_b][value_b] -> count`` plus
#: ``counts[(attr_a, value_a)] -> count``.
CooccurrencePartial = tuple[
    dict[tuple[str, str], dict[str, dict[str, int]]],
    dict[tuple[str, str], int],
]

#: FD group partial runtime form: ``{join_key_tuple: {residual_value: count}}``.
FDGroups = dict[tuple[str, ...], dict[str, int]]


# --------------------------------------------------------------------- #
# Co-occurrence
# --------------------------------------------------------------------- #


def cooccurrence_partial(relation: Relation, span: ShardSpan) -> CooccurrencePartial:
    """Joint-count tables of one shard's rows (same scan order as a full fit)."""
    attrs = relation.attributes
    chunks = [relation.column_chunk(a, span.start, span.stop) for a in attrs]
    joint: dict[tuple[str, str], dict[str, dict[str, int]]] = {}
    counts: dict[tuple[str, str], int] = {}
    for i in range(span.rows):
        values = [chunk[i] for chunk in chunks]
        for a, (attr_a, value_a) in enumerate(zip(attrs, values)):
            key = (attr_a, value_a)
            counts[key] = counts.get(key, 0) + 1
            bucket = joint.setdefault(key, {})
            for attr_b, value_b in zip(attrs, values):
                if attr_b != attr_a:
                    by_value = bucket.setdefault(attr_b, {})
                    by_value[value_b] = by_value.get(value_b, 0) + 1
    return joint, counts


def merge_cooccurrence_partials(
    partials: Iterable[CooccurrencePartial],
) -> CooccurrencePartial:
    """Sum joint-count partials; associative, and (in row-shard order)
    equal to a single whole-relation scan.

    Consumes ``partials`` lazily — pass a generator so only one shard's
    partial is alive alongside the accumulating merge (the fit-path peak
    RSS is then bounded by two partials, not the shard count)."""
    joint: dict[tuple[str, str], dict[str, dict[str, int]]] = {}
    counts: dict[tuple[str, str], int] = {}
    for part_joint, part_counts in partials:
        for key, n in part_counts.items():
            counts[key] = counts.get(key, 0) + n
        for key, buckets in part_joint.items():
            merged = joint.setdefault(key, {})
            for attr_b, by_value in buckets.items():
                merged_by_value = merged.setdefault(attr_b, {})
                for value_b, n in by_value.items():
                    merged_by_value[value_b] = merged_by_value.get(value_b, 0) + n
    return joint, counts


def encode_cooccurrence_partial(partial: CooccurrencePartial) -> dict:
    """Pure-JSON store payload (tuple keys become nested string keys)."""
    joint, counts = partial
    return {
        "joint": [
            [attr_a, value_a, {b: dict(v) for b, v in buckets.items()}]
            for (attr_a, value_a), buckets in joint.items()
        ],
        "counts": [[attr_a, value_a, n] for (attr_a, value_a), n in counts.items()],
    }


def decode_cooccurrence_partial(payload: Mapping) -> CooccurrencePartial:
    joint = {
        (attr_a, value_a): {
            str(b): {str(v): int(n) for v, n in by_value.items()}
            for b, by_value in buckets.items()
        }
        for attr_a, value_a, buckets in payload["joint"]
    }
    counts = {(attr_a, value_a): int(n) for attr_a, value_a, n in payload["counts"]}
    return joint, counts


# --------------------------------------------------------------------- #
# FD group tables (constraint violations)
# --------------------------------------------------------------------- #


def fd_group_partial(
    relation: Relation,
    span: ShardSpan,
    join_attrs: Sequence[str],
    residual_attr: str,
) -> FDGroups:
    """Group-by table of one shard's rows for one FD-shaped constraint."""
    join_chunks = [relation.column_chunk(a, span.start, span.stop) for a in join_attrs]
    residual_chunk = relation.column_chunk(residual_attr, span.start, span.stop)
    groups: FDGroups = {}
    for i in range(span.rows):
        key = tuple(chunk[i] for chunk in join_chunks)
        by_value = groups.setdefault(key, {})
        value = residual_chunk[i]
        by_value[value] = by_value.get(value, 0) + 1
    return groups


def merge_fd_group_partials(partials: Iterable[FDGroups]) -> FDGroups:
    """Sum group tables; associative and order-insensitive as a mapping.

    Like :func:`merge_cooccurrence_partials`, consumes lazily."""
    groups: FDGroups = {}
    for partial in partials:
        for key, by_value in partial.items():
            merged = groups.setdefault(key, {})
            for value, n in by_value.items():
                merged[value] = merged.get(value, 0) + n
    return groups


def encode_fd_group_partial(groups: FDGroups) -> dict:
    return {"groups": [[list(k), dict(v)] for k, v in groups.items()]}


def decode_fd_group_partial(payload: Mapping) -> FDGroups:
    return {
        tuple(str(p) for p in key): {str(v): int(n) for v, n in by_value.items()}
        for key, by_value in payload["groups"]
    }
