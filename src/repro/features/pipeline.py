"""Feature pipeline: fit all representation models, produce model inputs.

The pipeline concatenates fixed numeric features into one standardised block
(the "wide" part of the wide-and-deep architecture, Appendix A.1) and keeps
each learnable-branch output separate (the "deep" part feeding highway
layers).  Dropping a model by name reproduces the Fig. 3 ablation.

Transforms are batched: one :class:`~repro.features.base.CellBatch` is built
per call and shared by every featurizer, so resolved values and per-column
groupings are computed once per batch rather than once per model.  Attaching
a :class:`~repro.features.cache.FeatureCache` (``pipeline.cache``) memoises
each featurizer's block per batch, which makes repeated passes over the same
cells — augmentation epochs, repeated evaluation, full-dataset prediction —
near-free.

After in-place dataset mutations, :meth:`FeaturePipeline.refresh` refits
only the models whose fitted state the :class:`~repro.dataset.table.DatasetDelta`
dirties (per-column models refit just the touched columns).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.constraints.dc import DenialConstraint
from repro.dataset.table import Cell, Dataset, DatasetDelta
from repro.features.attribute import (
    CharEmbeddingFeaturizer,
    ColumnIdFeaturizer,
    EmpiricalDistributionFeaturizer,
    FormatNGramFeaturizer,
    SymbolicNGramFeaturizer,
    WordEmbeddingFeaturizer,
)
from repro.features.base import CellBatch, Featurizer
from repro.features.dataset_level import (
    ConstraintViolationFeaturizer,
    NeighborhoodFeaturizer,
)
from repro.features.tuple_level import CooccurrenceFeaturizer, TupleEmbeddingFeaturizer

if TYPE_CHECKING:
    from repro.features.cache import FeatureCache

#: Names of all representation models in the default pipeline, usable with
#: :func:`default_pipeline`'s ``exclude`` for ablation studies.
ALL_MODEL_NAMES = (
    "char_embedding",
    "word_embedding",
    "format_3gram",
    "symbolic_3gram",
    "empirical_dist",
    "column_id",
    "cooccurrence",
    "tuple_embedding",
    "constraint_violations",
    "neighborhood",
)


@dataclass
class CellFeatures:
    """Transformed features for a batch of cells.

    ``numeric`` is the standardised wide block; ``branches`` maps branch name
    (``char``/``word``/``tuple``) to the raw embedding block feeding that
    learnable layer.
    """

    numeric: np.ndarray
    branches: dict[str, np.ndarray]

    @property
    def batch_size(self) -> int:
        return self.numeric.shape[0]


class FeaturePipeline:
    """Fits featurizers on a dataset and transforms cells into model inputs."""

    def __init__(
        self, featurizers: Sequence[Featurizer], cache: "FeatureCache | None" = None
    ):
        names = [f.name for f in featurizers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate featurizer names: {names}")
        self.featurizers = list(featurizers)
        #: Optional block cache; assign a ``FeatureCache`` at any time to
        #: start memoising, or set back to ``None`` to bypass it.
        self.cache = cache
        self._fitted = False
        self._numeric_mean: np.ndarray | None = None
        self._numeric_std: np.ndarray | None = None

    @property
    def model_names(self) -> list[str]:
        return [f.name for f in self.featurizers]

    def without(self, name: str) -> "FeaturePipeline":
        """A new (unfitted) pipeline with one representation model removed."""
        remaining = [f for f in self.featurizers if f.name != name]
        if len(remaining) == len(self.featurizers):
            raise ValueError(f"no featurizer named {name!r}")
        return FeaturePipeline(remaining, cache=self.cache)

    def fit(self, dataset: Dataset) -> "FeaturePipeline":
        """Fit every representation model on the noisy input dataset D."""
        for featurizer in self.featurizers:
            featurizer.fit(dataset)
            # A refit invalidates any cached blocks of the previous fit.
            featurizer.reset_cache_token()
        self._fit_standardisation(dataset)
        self._fitted = True
        return self

    def refresh(self, dataset: Dataset, delta: DatasetDelta) -> list[str]:
        """Refit only the models whose fitted state ``delta`` dirties.

        Per-column models (the attribute-context featurizers) refit just the
        touched columns; tuple- and dataset-context models, whose statistics
        span the whole relation, refit fully on any effective change; models
        that depend only on the schema never refit.  Returns the names of
        the refitted models (empty for an empty delta).

        Standardisation statistics are deliberately *not* recomputed: they
        are fit-time normalisation constants (eval-mode semantics, like a
        normalisation layer's running statistics).  Recomputing them would
        shift every cell's numeric features globally, destroying the
        locality that lets :class:`~repro.core.detector.DetectionSession`
        re-score only the cells a refit actually touches.
        """
        if not self._fitted:
            raise RuntimeError("pipeline used before fit()")
        if delta.is_empty:
            return []
        return [f.name for f in self.featurizers if f.refresh(dataset, delta)]

    def _fit_standardisation(self, dataset: Dataset) -> None:
        # Standardisation statistics come from a sample of D's cells so that
        # feature scales are comparable regardless of the training subset.
        sample_cells = self._sample_cells(dataset, limit=2000)
        numeric = self._numeric_block(CellBatch(sample_cells, dataset))
        if numeric.shape[1]:
            self._numeric_mean = numeric.mean(axis=0)
            std = numeric.std(axis=0)
            self._numeric_std = np.where(std < 1e-6, 1.0, std)
        else:
            self._numeric_mean = np.zeros(0)
            self._numeric_std = np.ones(0)

    @staticmethod
    def _sample_cells(dataset: Dataset, limit: int) -> list[Cell]:
        cells = list(dataset.cells())
        if len(cells) <= limit:
            return cells
        stride = max(1, len(cells) // limit)
        return cells[::stride][:limit]

    def _block(self, featurizer: Featurizer, batch: CellBatch) -> np.ndarray:
        """One featurizer's block for the batch, through the cache if any."""
        if self.cache is None:
            return featurizer.transform_batch(batch)
        return self.cache.get_or_compute(featurizer, batch)

    def _numeric_block(self, batch: CellBatch) -> np.ndarray:
        blocks = [
            self._block(f, batch)
            for f in self.featurizers
            if f.branch is None and f.dim > 0
        ]
        if not blocks:
            return np.zeros((len(batch), 0))
        return np.concatenate(blocks, axis=1)

    def transform(
        self, cells: Sequence[Cell], dataset: Dataset, values: Sequence[str] | None = None
    ) -> CellFeatures:
        """Features for ``cells``; ``values`` overrides observed cell values.

        The override is how augmented examples are featurised: the synthetic
        value replaces the observed one while the tuple context stays real.
        """
        return self.transform_batch(CellBatch(cells, dataset, values))

    def transform_batch(self, batch: CellBatch) -> CellFeatures:
        """Features for a prepared :class:`CellBatch`.

        The batch's groupings are shared by all featurizers; with a cache
        attached each featurizer's block is memoised per batch.
        """
        if not self._fitted:
            raise RuntimeError("pipeline used before fit()")
        numeric = self._numeric_block(batch)
        if numeric.shape[1]:
            # Standardisation allocates a fresh array, so cached blocks stay
            # pristine.  Standardised features are clipped: a value whose raw
            # statistic is wildly outside the fit sample (e.g. an unseen
            # n-gram in a near-constant column) should read "extreme", not
            # destabilise the optimiser.
            numeric = (numeric - self._numeric_mean) / self._numeric_std
            numeric = np.clip(numeric, -10.0, 10.0)
        branches = {
            f.branch: self._block(f, batch)
            for f in self.featurizers
            if f.branch is not None
        }
        return CellFeatures(numeric=numeric, branches=branches)

    @property
    def numeric_dim(self) -> int:
        return sum(f.dim for f in self.featurizers if f.branch is None)

    @property
    def branch_dims(self) -> dict[str, int]:
        return {f.branch: f.dim for f in self.featurizers if f.branch is not None}


def default_pipeline(
    constraints: Sequence[DenialConstraint] | None = None,
    embedding_dim: int = 16,
    embedding_epochs: int = 2,
    exclude: Sequence[str] = (),
    rng=None,
) -> FeaturePipeline:
    """The full representation model Q of Table 7.

    ``constraints`` may be ``None``/empty (Σ is optional input); ``exclude``
    removes named models for ablation studies (see :data:`ALL_MODEL_NAMES`).
    """
    featurizers: list[Featurizer] = [
        CharEmbeddingFeaturizer(dim=embedding_dim, epochs=embedding_epochs, rng=rng),
        WordEmbeddingFeaturizer(dim=embedding_dim, epochs=embedding_epochs, rng=rng),
        FormatNGramFeaturizer(),
        SymbolicNGramFeaturizer(),
        EmpiricalDistributionFeaturizer(),
        ColumnIdFeaturizer(),
        CooccurrenceFeaturizer(),
        TupleEmbeddingFeaturizer(dim=embedding_dim, epochs=embedding_epochs, rng=rng),
        NeighborhoodFeaturizer(dim=embedding_dim, epochs=embedding_epochs, rng=rng),
    ]
    if constraints:
        featurizers.append(ConstraintViolationFeaturizer(constraints))
    chosen = [f for f in featurizers if f.name not in set(exclude)]
    unknown = set(exclude) - {f.name for f in featurizers}
    if unknown:
        raise ValueError(f"unknown model names in exclude: {sorted(unknown)}")
    return FeaturePipeline(chosen)
