"""Feature pipeline: fit all representation models, produce model inputs.

The pipeline concatenates fixed numeric features into one standardised block
(the "wide" part of the wide-and-deep architecture, Appendix A.1) and keeps
each learnable-branch output separate (the "deep" part feeding highway
layers).  Dropping a model by name reproduces the Fig. 3 ablation.

Transforms are batched: one :class:`~repro.features.base.CellBatch` is built
per call and shared by every featurizer, so resolved values and per-column
groupings are computed once per batch rather than once per model.  Attaching
a :class:`~repro.features.cache.FeatureCache` (``pipeline.cache``) memoises
each featurizer's block per batch, which makes repeated passes over the same
cells — augmentation epochs, repeated evaluation, full-dataset prediction —
near-free.

After in-place dataset mutations, :meth:`FeaturePipeline.refresh` refits
only the models whose fitted state the :class:`~repro.dataset.table.DatasetDelta`
dirties (per-column models refit just the touched columns).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.constraints.dc import DenialConstraint
from repro.dataset.table import Cell, Dataset, DatasetDelta
from repro.features.attribute import (
    CharEmbeddingFeaturizer,
    ColumnIdFeaturizer,
    EmpiricalDistributionFeaturizer,
    FormatNGramFeaturizer,
    SymbolicNGramFeaturizer,
    WordEmbeddingFeaturizer,
)
from repro.features.base import CellBatch, Featurizer
from repro.features.dataset_level import (
    ConstraintViolationFeaturizer,
    NeighborhoodFeaturizer,
)
from repro.features.tuple_level import CooccurrenceFeaturizer, TupleEmbeddingFeaturizer
from repro.registry import REGISTRY, ComponentError, register

if TYPE_CHECKING:
    from repro.features.cache import FeatureCache

#: Names of all representation models in the default pipeline, usable with
#: :func:`default_pipeline`'s ``exclude`` for ablation studies.
ALL_MODEL_NAMES = (
    "char_embedding",
    "word_embedding",
    "format_3gram",
    "symbolic_3gram",
    "empirical_dist",
    "column_id",
    "cooccurrence",
    "tuple_embedding",
    "constraint_violations",
    "neighborhood",
)


# --------------------------------------------------------------------- #
# Registry wiring: every built-in representation model is a registered
# "featurizer" component, so detector specs (and user code) can compose a
# pipeline declaratively.  Factories receive their validated config plus a
# FeaturizerContext carrying the pipeline-level injections (the shared RNG,
# the constraint set Σ, and the default embedding geometry).
# --------------------------------------------------------------------- #


@dataclass
class FeaturizerContext:
    """Pipeline-level injections shared by all featurizer factories."""

    constraints: Sequence[DenialConstraint] = ()
    embedding_dim: int = 16
    embedding_epochs: int = 2
    rng: object = None


@dataclass(frozen=True)
class EmbeddingModelConfig:
    """Config of the embedding-backed models; ``None`` inherits the
    pipeline-level defaults (``DetectorConfig.embedding_dim``/``_epochs``)."""

    dim: int | None = None
    epochs: int | None = None

    def __post_init__(self) -> None:
        if self.dim is not None and (not isinstance(self.dim, int) or self.dim < 1):
            raise ValueError(f"dim must be a positive integer, got {self.dim!r}")
        if self.epochs is not None and (
            not isinstance(self.epochs, int) or self.epochs < 1
        ):
            raise ValueError(f"epochs must be a positive integer, got {self.epochs!r}")


@dataclass(frozen=True)
class NGramModelConfig:
    """Config of the n-gram format models."""

    n: int = 3
    least_k: int = 1

    def __post_init__(self) -> None:
        if not isinstance(self.n, int) or self.n < 1:
            raise ValueError(f"n must be a positive integer, got {self.n!r}")
        if not isinstance(self.least_k, int) or self.least_k < 1:
            raise ValueError(f"least_k must be a positive integer, got {self.least_k!r}")


def _embedding_factory(cls):
    def factory(cfg: EmbeddingModelConfig, ctx: FeaturizerContext) -> Featurizer:
        return cls(
            dim=cfg.dim if cfg.dim is not None else ctx.embedding_dim,
            epochs=cfg.epochs if cfg.epochs is not None else ctx.embedding_epochs,
            rng=ctx.rng,
        )

    return factory


def _ngram_factory(cls):
    def factory(cfg: NGramModelConfig, ctx: FeaturizerContext) -> Featurizer:
        return cls(n=cfg.n, least_k=cfg.least_k)

    return factory


def _plain_factory(cls):
    def factory(params: Mapping[str, object], ctx: FeaturizerContext) -> Featurizer:
        if params:
            raise ComponentError(f"takes no parameters, got {sorted(params)}")
        return cls()

    return factory


REGISTRY.add(
    "featurizer", "char_embedding", _embedding_factory(CharEmbeddingFeaturizer),
    config=EmbeddingModelConfig,
    description="FastText embedding of the value as a character sequence",
)
REGISTRY.add(
    "featurizer", "word_embedding", _embedding_factory(WordEmbeddingFeaturizer),
    config=EmbeddingModelConfig,
    description="FastText embedding of the value as a word sequence",
)
REGISTRY.add(
    "featurizer", "format_3gram", _ngram_factory(FormatNGramFeaturizer),
    config=NGramModelConfig,
    description="character n-gram format likelihood per attribute",
)
REGISTRY.add(
    "featurizer", "symbolic_3gram", _ngram_factory(SymbolicNGramFeaturizer),
    config=NGramModelConfig,
    description="symbol-class n-gram likelihood per attribute",
)
REGISTRY.add(
    "featurizer", "empirical_dist", _plain_factory(EmpiricalDistributionFeaturizer),
    description="empirical value frequency within the attribute",
)
REGISTRY.add(
    "featurizer", "column_id", _plain_factory(ColumnIdFeaturizer),
    description="one-hot column identity",
)
REGISTRY.add(
    "featurizer", "cooccurrence", _plain_factory(CooccurrenceFeaturizer),
    description="attribute-pair value co-occurrence statistics",
)
REGISTRY.add(
    "featurizer", "tuple_embedding", _embedding_factory(TupleEmbeddingFeaturizer),
    config=EmbeddingModelConfig,
    description="learnable tuple-context embedding (tuple branch)",
)
REGISTRY.add(
    "featurizer", "neighborhood", _embedding_factory(NeighborhoodFeaturizer),
    config=EmbeddingModelConfig,
    description="nearest-neighbour distance in tuple-value embedding space",
)


@register(
    "featurizer", "constraint_violations",
    description="per-constraint violation counts (needs Σ from context)",
)
def _constraint_violations(
    params: Mapping[str, object], ctx: FeaturizerContext
) -> Featurizer:
    if params:
        raise ComponentError(f"takes no parameters, got {sorted(params)}")
    return ConstraintViolationFeaturizer(list(ctx.constraints or ()))


def build_featurizer(
    name: str,
    params: Mapping[str, object] | None = None,
    ctx: FeaturizerContext | None = None,
) -> Featurizer:
    """Build one featurizer by registry key (or ``module:attr`` reference).

    External references are invoked with their params only; built-ins also
    receive the :class:`FeaturizerContext`.  The result must quack like a
    :class:`~repro.features.base.Featurizer` — ``fit``/``transform_batch``/
    ``dim`` — which is validated structurally here so a bad reference fails
    at build time, not deep inside ``fit()``.
    """
    ctx = ctx or FeaturizerContext()
    entry = REGISTRY.entry("featurizer", name)
    if entry.builtin:
        featurizer = REGISTRY.create("featurizer", name, params, ctx=ctx)
    else:
        featurizer = REGISTRY.create("featurizer", name, params)
    missing = [
        attr
        for attr in ("fit", "transform_batch", "dim", "name", "scope", "branch")
        # Checked on the type first: properties like ``dim`` may raise on an
        # unfitted instance, which hasattr(instance, ...) would misread.
        if not hasattr(type(featurizer), attr)
        and attr not in getattr(featurizer, "__dict__", {})
    ]
    if missing:
        raise ComponentError(
            f"featurizer {name!r} built {type(featurizer).__name__}, which lacks "
            f"the Featurizer interface attributes {missing}"
        )
    return featurizer


@dataclass
class CellFeatures:
    """Transformed features for a batch of cells.

    ``numeric`` is the standardised wide block; ``branches`` maps branch name
    (``char``/``word``/``tuple``) to the raw embedding block feeding that
    learnable layer.
    """

    numeric: np.ndarray
    branches: dict[str, np.ndarray]

    @property
    def batch_size(self) -> int:
        return self.numeric.shape[0]


class FeaturePipeline:
    """Fits featurizers on a dataset and transforms cells into model inputs."""

    def __init__(
        self,
        featurizers: Sequence[Featurizer],
        cache: "FeatureCache | None" = None,
        artifacts=None,
    ):
        names = [f.name for f in featurizers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate featurizer names: {names}")
        self.featurizers = list(featurizers)
        #: Optional block cache; assign a ``FeatureCache`` at any time to
        #: start memoising, or set back to ``None`` to bypass it.
        self.cache = cache
        #: Optional fitted-artifact store (:mod:`repro.artifacts`); when
        #: attached, :meth:`fit` serves trained embeddings and fitted
        #: featurizer states from it instead of retraining.
        self.artifacts = artifacts
        self._fitted = False
        self._numeric_mean: np.ndarray | None = None
        self._numeric_std: np.ndarray | None = None

    @property
    def model_names(self) -> list[str]:
        return [f.name for f in self.featurizers]

    @property
    def artifact_keys(self) -> dict[str, str]:
        """Artifact keys of the last fit, labelled ``model`` or
        ``model/<column>`` (empty before :meth:`fit`)."""
        keys: dict[str, str] = {}
        for featurizer in self.featurizers:
            keys.update(featurizer.artifact_keys)
        return keys

    def without(self, name: str) -> "FeaturePipeline":
        """A new (unfitted) pipeline with one representation model removed."""
        remaining = [f for f in self.featurizers if f.name != name]
        if len(remaining) == len(self.featurizers):
            raise ValueError(f"no featurizer named {name!r}")
        return FeaturePipeline(remaining, cache=self.cache, artifacts=self.artifacts)

    def fit(self, dataset: Dataset) -> "FeaturePipeline":
        """Fit every representation model on the noisy input dataset D.

        With an artifact store attached (:attr:`artifacts`), each model's
        fit first consults the store: whole-state artifacts here, and —
        inside the column-scoped embedding featurizers — per-column
        embedding artifacts.  Served or trained, the result is identical
        (training seeds are content-derived), so a warm fit changes nothing
        but wall-clock time.
        """
        for featurizer in self.featurizers:
            self._fit_featurizer(featurizer, dataset)
            # A refit invalidates any cached blocks of the previous fit.
            featurizer.reset_cache_token()
        self._fit_standardisation(dataset)
        self._fitted = True
        return self

    def _fit_featurizer(self, featurizer: Featurizer, dataset: Dataset) -> None:
        """Fit one model, through the artifact store when possible."""
        # Attached for the duration of the pipeline's life so per-column
        # fits (and later column-scoped refreshes) consult the same store.
        featurizer.artifact_store = self.artifacts
        featurizer.fit_through_store(dataset)

    def refresh(self, dataset: Dataset, delta: DatasetDelta) -> list[str]:
        """Refit only the models whose fitted state ``delta`` dirties.

        Per-column models (the attribute-context featurizers) refit just the
        touched columns; tuple- and dataset-context models, whose statistics
        span the whole relation, refit fully on any effective change; models
        that depend only on the schema never refit.  Returns the names of
        the refitted models (empty for an empty delta).

        Standardisation statistics are deliberately *not* recomputed: they
        are fit-time normalisation constants (eval-mode semantics, like a
        normalisation layer's running statistics).  Recomputing them would
        shift every cell's numeric features globally, destroying the
        locality that lets :class:`~repro.core.detector.DetectionSession`
        re-score only the cells a refit actually touches.
        """
        if not self._fitted:
            raise RuntimeError("pipeline used before fit()")
        if delta.is_empty:
            return []
        return [f.name for f in self.featurizers if f.refresh(dataset, delta)]

    def _fit_standardisation(self, dataset: Dataset) -> None:
        # Standardisation statistics come from a sample of D's cells so that
        # feature scales are comparable regardless of the training subset.
        sample_cells = self._sample_cells(dataset, limit=2000)
        numeric = self._numeric_block(CellBatch(sample_cells, dataset))
        if numeric.shape[1]:
            self._numeric_mean = numeric.mean(axis=0)
            std = numeric.std(axis=0)
            self._numeric_std = np.where(std < 1e-6, 1.0, std)
        else:
            self._numeric_mean = np.zeros(0)
            self._numeric_std = np.ones(0)

    @staticmethod
    def _sample_cells(dataset: Dataset, limit: int) -> list[Cell]:
        # Arithmetic strided sample over the attr-major cell order — the
        # same cells ``list(dataset.cells())[::stride][:limit]`` yields,
        # without materialising every cell of an out-of-core relation.
        total = dataset.num_cells
        num_rows = dataset.num_rows
        attributes = dataset.attributes
        if total <= limit:
            return list(dataset.cells())
        stride = max(1, total // limit)
        return [
            Cell(row=i % num_rows, attr=attributes[i // num_rows])
            for i in range(0, total, stride)[:limit]
        ]

    def _block(self, featurizer: Featurizer, batch: CellBatch) -> np.ndarray:
        """One featurizer's block for the batch, through the cache if any."""
        if self.cache is None:
            return featurizer.transform_batch(batch)
        return self.cache.get_or_compute(featurizer, batch)

    def _numeric_block(self, batch: CellBatch) -> np.ndarray:
        blocks = [
            self._block(f, batch)
            for f in self.featurizers
            if f.branch is None and f.dim > 0
        ]
        if not blocks:
            return np.zeros((len(batch), 0))
        return np.concatenate(blocks, axis=1)

    def transform(
        self, cells: Sequence[Cell], dataset: Dataset, values: Sequence[str] | None = None
    ) -> CellFeatures:
        """Features for ``cells``; ``values`` overrides observed cell values.

        The override is how augmented examples are featurised: the synthetic
        value replaces the observed one while the tuple context stays real.
        """
        return self.transform_batch(CellBatch(cells, dataset, values))

    def transform_batch(self, batch: CellBatch) -> CellFeatures:
        """Features for a prepared :class:`CellBatch`.

        The batch's groupings are shared by all featurizers; with a cache
        attached each featurizer's block is memoised per batch.
        """
        if not self._fitted:
            raise RuntimeError("pipeline used before fit()")
        numeric = self._numeric_block(batch)
        if numeric.shape[1]:
            # Standardisation allocates a fresh array, so cached blocks stay
            # pristine.  Standardised features are clipped: a value whose raw
            # statistic is wildly outside the fit sample (e.g. an unseen
            # n-gram in a near-constant column) should read "extreme", not
            # destabilise the optimiser.
            numeric = (numeric - self._numeric_mean) / self._numeric_std
            numeric = np.clip(numeric, -10.0, 10.0)
        branches = {
            f.branch: self._block(f, batch)
            for f in self.featurizers
            if f.branch is not None
        }
        return CellFeatures(numeric=numeric, branches=branches)

    @property
    def numeric_dim(self) -> int:
        return sum(f.dim for f in self.featurizers if f.branch is None)

    @property
    def branch_dims(self) -> dict[str, int]:
        return {f.branch: f.dim for f in self.featurizers if f.branch is not None}


#: Construction order of the default pipeline (Table 7).  The constraint
#: model is appended last, and only when Σ is non-empty.
DEFAULT_MODEL_ORDER = (
    "char_embedding",
    "word_embedding",
    "format_3gram",
    "symbolic_3gram",
    "empirical_dist",
    "column_id",
    "cooccurrence",
    "tuple_embedding",
    "neighborhood",
)


def build_pipeline(
    entries: Sequence[str | tuple[str, Mapping[str, object]]],
    ctx: FeaturizerContext | None = None,
    cache: "FeatureCache | None" = None,
) -> FeaturePipeline:
    """Build an (unfitted) pipeline from declarative featurizer entries.

    Each entry is a registry key — or ``module:attr`` reference — optionally
    paired with a parameter mapping.  This is the construction path behind
    :class:`~repro.spec.DetectorSpec` pipelines; :func:`default_pipeline`
    uses it for the built-in Table 7 composition.
    """
    ctx = ctx or FeaturizerContext()
    featurizers = []
    for entry in entries:
        name, params = entry if isinstance(entry, tuple) else (entry, {})
        featurizers.append(build_featurizer(name, params, ctx))
    return FeaturePipeline(featurizers, cache=cache)


def default_pipeline(
    constraints: Sequence[DenialConstraint] | None = None,
    embedding_dim: int = 16,
    embedding_epochs: int = 2,
    exclude: Sequence[str] = (),
    rng=None,
) -> FeaturePipeline:
    """The full representation model Q of Table 7.

    ``constraints`` may be ``None``/empty (Σ is optional input); ``exclude``
    removes named models for ablation studies (see :data:`ALL_MODEL_NAMES`).
    Every model is resolved through the component registry, so the default
    composition and a spec-declared one share a single construction path.
    """
    ctx = FeaturizerContext(
        constraints=list(constraints) if constraints else (),
        embedding_dim=embedding_dim,
        embedding_epochs=embedding_epochs,
        rng=rng,
    )
    names = list(DEFAULT_MODEL_ORDER)
    if constraints:
        names.append("constraint_violations")
    unknown = set(exclude) - set(names)
    if unknown:
        raise ValueError(f"unknown model names in exclude: {sorted(unknown)}")
    return build_pipeline([n for n in names if n not in set(exclude)], ctx)
