"""Tuple-level representation models (§4.1).

These capture the joint distribution across attributes of a tuple: value
co-occurrence statistics, and a learnable embedding of the whole tuple.
Swapped values — which look perfectly normal to every attribute-level model —
break co-occurrence patterns, and these models are what surfaces them.

Both models are batched: co-occurrence statistics are looked up once per
unique ``(attribute, value)`` pair of the batch, and tuple/context embedding
vectors are memoised per unique value and per ``(row, attribute)`` context.
"""

from __future__ import annotations

import numpy as np

from repro.artifacts.codec import fit_embedding_artifact
from repro.artifacts.keys import seed_material, shard_partial_key
from repro.dataset.relation import ShardSpan
from repro.dataset.table import Cell, Dataset
from repro.embeddings.corpus import tuple_corpus
from repro.embeddings.fasttext import FastTextEmbedding
from repro.features.base import CellBatch, FeatureContext, Featurizer
from repro.features.partials import (
    cooccurrence_partial,
    decode_cooccurrence_partial,
    encode_cooccurrence_partial,
    merge_cooccurrence_partials,
)
from repro.text.tokenize import word_tokens


class CooccurrenceFeaturizer(Featurizer):
    """Pairwise conditional co-occurrence ``P(t[B] | t[A] = v)``.

    For a cell in attribute A with value v, the feature vector holds — for
    every other attribute B — the empirical probability of seeing the tuple's
    B-value among tuples that also carry v in A.  A swapped or garbled v
    co-occurs with "wrong" company, dragging these probabilities toward zero.
    One model covers all attributes (Table 7: "#attributes - 1" dimensions).
    """

    name = "cooccurrence"
    context = FeatureContext.TUPLE
    #: The transform reads the cell's row-mates — tuple-scoped.
    scope = FeatureContext.TUPLE
    branch = None
    #: The fitted joint-count tables are a pure function of the relation:
    #: stored whole as a fitted artifact and reloaded on a warm fit.
    artifact_kind = "featurizer/cooccurrence"

    def __init__(self) -> None:
        # (attr_a, value_a) -> (attr_b -> (value_b -> count))
        self._joint: dict[tuple[str, str], dict[str, dict[str, int]]] | None = None
        self._value_counts: dict[tuple[str, str], int] = {}
        self._attributes: tuple[str, ...] = ()

    def fit(self, dataset: Dataset) -> "CooccurrenceFeaturizer":
        """Count joint occurrences, one row shard at a time.

        The in-memory backing is a single shard spanning the relation, so
        this is one scan; an out-of-core relation is summarised into one
        mergeable partial per shard (consulted/stored through the artifact
        store under its shard fingerprint — see
        :mod:`repro.features.partials`), and the merged tables equal a
        whole-relation scan exactly.
        """
        self._attributes = dataset.attributes
        self._artifact_keys = {}
        spans = dataset.shard_spans()
        # Generator, not list: the merge consumes lazily, so peak memory is
        # two partials (one shard + the accumulator), not one per shard.
        partials = (self._shard_partial(dataset, span, len(spans)) for span in spans)
        joint, value_counts = merge_cooccurrence_partials(partials)
        self._joint = joint
        self._value_counts = value_counts
        return self

    def _shard_partial(self, dataset: Dataset, span: ShardSpan, num_spans: int):
        """One shard's joint-count partial, through the store when sharded."""
        store = self.artifact_store
        if store is None or num_spans <= 1:
            return cooccurrence_partial(dataset, span)
        key = shard_partial_key(
            self.artifact_kind,
            dataset.shard_fingerprint(span.index),
            self.artifact_config(),
        )
        self._record_artifact(f"{self.name}/shard/{span.index}", key)
        payload = store.get(key)
        if payload is not None:
            try:
                return decode_cooccurrence_partial(payload)
            except Exception:
                pass  # corrupt partial: recount below, overwrite in store
        partial = cooccurrence_partial(dataset, span)
        store.put(
            key,
            encode_cooccurrence_partial(partial),
            kind=f"{self.artifact_kind}.partial",
        )
        return partial

    def transform_batch(self, batch: CellBatch) -> np.ndarray:
        self._require_fitted("_joint")
        dataset = batch.dataset
        width = len(self._attributes) - 1
        out = np.zeros((len(batch), width))
        for attr, by_value in batch.value_groups.items():
            # Other-attribute order and their columns, resolved once per attr.
            others = [a for a in self._attributes if a != attr]
            other_cols = [dataset.column(a) for a in others]
            for value, idx in by_value.items():
                key = (attr, value)
                total = self._value_counts.get(key, 0)
                if not total:
                    # Unseen value: all conditionals are 0, the strongest
                    # signal — the zero initialisation already encodes it.
                    continue
                buckets = self._joint[key]
                for i in idx:
                    row = batch.cells[i].row
                    for j, (attr_b, col_b) in enumerate(zip(others, other_cols)):
                        count = buckets.get(attr_b, {}).get(col_b[row], 0)
                        out[i, j] = count / total
        return out

    @property
    def dim(self) -> int:
        return len(self._attributes) - 1


class TupleEmbeddingFeaturizer(Featurizer):
    """Learnable tuple representation (§4.1).

    Embeds the tuple as a bag of word tokens pooled across attributes (the
    word-embedding context is the whole tuple, order-free) and concatenates
    the *cell's own* token embedding so the branch is cell-specific.  Output
    feeds the ``tuple`` learnable branch (highway layers in the joint model).
    """

    name = "tuple_embedding"
    context = FeatureContext.TUPLE
    #: The context half of the output reads the cell's row-mates.
    scope = FeatureContext.TUPLE
    branch = "tuple"

    def __init__(self, dim: int = 16, epochs: int = 2, rng=None):
        self._dim = dim
        self._epochs = epochs
        self._seed_material = seed_material(rng)
        self._model: FastTextEmbedding | None = None

    def _embedding_config(self) -> dict:
        # Full training config so any default change rekeys the artifact.
        config = FastTextEmbedding(
            dim=self._dim, epochs=self._epochs, window=8
        ).config_dict()
        if self._seed_material is not None:
            config["rng"] = self._seed_material
        return config

    def fit(self, dataset: Dataset) -> "TupleEmbeddingFeaturizer":
        # The tuple corpus pools every attribute, so the artifact scope is
        # the whole-relation fingerprint; the training seed derives from
        # the key (content-addressed — see repro.artifacts.keys).
        key, model = fit_embedding_artifact(
            self.artifact_store,
            "embedding/tuple",
            dataset.fingerprint(),
            self._embedding_config(),
            lambda seed: FastTextEmbedding(
                dim=self._dim, epochs=self._epochs, window=8, rng=seed
            ).fit(tuple_corpus(dataset)),
        )
        self._artifact_keys = {self.name: key}
        self._model = model
        return self

    def transform_batch(self, batch: CellBatch) -> np.ndarray:
        self._require_fitted("_model")
        dataset = batch.dataset
        out = np.zeros((len(batch), 2 * self._dim))
        # The model is dataset-global, so the cell's own vector depends only
        # on its value — memoise per unique value across the whole batch.
        value_vectors: dict[str, np.ndarray] = {}
        # Context excludes the cell's own attribute, so the cache key is
        # (row, attr); the override never changes the context.
        context_cache: dict[tuple[int, str], np.ndarray] = {}
        for i, (cell, value) in enumerate(zip(batch.cells, batch.resolved)):
            if value not in value_vectors:
                cell_tokens = word_tokens(value) or ["<empty>"]
                value_vectors[value] = self._model.sentence_vector(cell_tokens)
            key = (cell.row, cell.attr)
            if key not in context_cache:
                context_tokens: list[str] = []
                for attr in dataset.attributes:
                    if attr != cell.attr:
                        context_tokens.extend(word_tokens(dataset.value(Cell(cell.row, attr))))
                context_cache[key] = self._model.sentence_vector(
                    context_tokens or ["<empty>"]
                )
            out[i, : self._dim] = value_vectors[value]
            out[i, self._dim :] = context_cache[key]
        return out

    @property
    def dim(self) -> int:
        return 2 * self._dim
