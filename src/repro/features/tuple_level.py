"""Tuple-level representation models (§4.1).

These capture the joint distribution across attributes of a tuple: value
co-occurrence statistics, and a learnable embedding of the whole tuple.
Swapped values — which look perfectly normal to every attribute-level model —
break co-occurrence patterns, and these models are what surfaces them.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

import numpy as np

from repro.dataset.table import Cell, Dataset
from repro.embeddings.corpus import tuple_corpus
from repro.embeddings.fasttext import FastTextEmbedding
from repro.features.attribute import _resolved_values
from repro.features.base import FeatureContext, Featurizer
from repro.text.tokenize import word_tokens


class CooccurrenceFeaturizer(Featurizer):
    """Pairwise conditional co-occurrence ``P(t[B] | t[A] = v)``.

    For a cell in attribute A with value v, the feature vector holds — for
    every other attribute B — the empirical probability of seeing the tuple's
    B-value among tuples that also carry v in A.  A swapped or garbled v
    co-occurs with "wrong" company, dragging these probabilities toward zero.
    One model covers all attributes (Table 7: "#attributes - 1" dimensions).
    """

    name = "cooccurrence"
    context = FeatureContext.TUPLE
    branch = None

    def __init__(self) -> None:
        # (attr_a, value_a) -> (attr_b -> (value_b -> count))
        self._joint: dict[tuple[str, str], dict[str, dict[str, int]]] | None = None
        self._value_counts: dict[tuple[str, str], int] = {}
        self._attributes: tuple[str, ...] = ()

    def fit(self, dataset: Dataset) -> "CooccurrenceFeaturizer":
        self._attributes = dataset.attributes
        joint: dict[tuple[str, str], dict[str, dict[str, int]]] = defaultdict(
            lambda: defaultdict(lambda: defaultdict(int))
        )
        value_counts: dict[tuple[str, str], int] = defaultdict(int)
        for row in range(dataset.num_rows):
            values = dataset.row_dict(row)
            for attr_a, value_a in values.items():
                key = (attr_a, value_a)
                value_counts[key] += 1
                bucket = joint[key]
                for attr_b, value_b in values.items():
                    if attr_b != attr_a:
                        bucket[attr_b][value_b] += 1
        # Freeze the nested defaultdicts into plain dicts.
        self._joint = {
            key: {attr: dict(counts) for attr, counts in buckets.items()}
            for key, buckets in joint.items()
        }
        self._value_counts = dict(value_counts)
        return self

    def transform(
        self, cells: Sequence[Cell], dataset: Dataset, values: Sequence[str] | None = None
    ) -> np.ndarray:
        self._require_fitted("_joint")
        resolved = _resolved_values(cells, dataset, values)
        width = len(self._attributes) - 1
        out = np.zeros((len(cells), width))
        for i, (cell, value) in enumerate(zip(cells, resolved)):
            key = (cell.attr, value)
            total = self._value_counts.get(key, 0)
            buckets = self._joint.get(key, {})
            row_values = dataset.row_dict(cell.row)
            j = 0
            for attr_b in self._attributes:
                if attr_b == cell.attr:
                    continue
                if total:
                    count = buckets.get(attr_b, {}).get(row_values[attr_b], 0)
                    out[i, j] = count / total
                # Unseen value: all conditionals are 0, the strongest signal.
                j += 1
        return out

    @property
    def dim(self) -> int:
        return len(self._attributes) - 1


class TupleEmbeddingFeaturizer(Featurizer):
    """Learnable tuple representation (§4.1).

    Embeds the tuple as a bag of word tokens pooled across attributes (the
    word-embedding context is the whole tuple, order-free) and concatenates
    the *cell's own* token embedding so the branch is cell-specific.  Output
    feeds the ``tuple`` learnable branch (highway layers in the joint model).
    """

    name = "tuple_embedding"
    context = FeatureContext.TUPLE
    branch = "tuple"

    def __init__(self, dim: int = 16, epochs: int = 2, rng=None):
        self._dim = dim
        self._epochs = epochs
        self._rng = rng
        self._model: FastTextEmbedding | None = None

    def fit(self, dataset: Dataset) -> "TupleEmbeddingFeaturizer":
        self._model = FastTextEmbedding(
            dim=self._dim, epochs=self._epochs, window=8, rng=self._rng
        ).fit(tuple_corpus(dataset))
        return self

    def transform(
        self, cells: Sequence[Cell], dataset: Dataset, values: Sequence[str] | None = None
    ) -> np.ndarray:
        self._require_fitted("_model")
        resolved = _resolved_values(cells, dataset, values)
        out = np.zeros((len(cells), 2 * self._dim))
        # Context excludes the cell's own attribute, so the cache key is
        # (row, attr); the override never changes the context.
        context_cache: dict[tuple[int, str], np.ndarray] = {}
        for i, (cell, value) in enumerate(zip(cells, resolved)):
            cell_tokens = word_tokens(value) or ["<empty>"]
            cell_vec = self._model.sentence_vector(cell_tokens)
            key = (cell.row, cell.attr)
            if key not in context_cache:
                context_tokens: list[str] = []
                for attr in dataset.attributes:
                    if attr != cell.attr:
                        context_tokens.extend(word_tokens(dataset.value(Cell(cell.row, attr))))
                context_cache[key] = self._model.sentence_vector(
                    context_tokens or ["<empty>"]
                )
            out[i, : self._dim] = cell_vec
            out[i, self._dim :] = context_cache[key]
        return out

    @property
    def dim(self) -> int:
        return 2 * self._dim
