"""Neural-network substrate: reverse-mode autograd over numpy.

HoloDetect's representation layers (highway networks, Fig. 2B), classifier M
(Fig. 2C), and the ADAM optimiser were built on PyTorch in the original
system.  No deep-learning framework is available offline, so this package
implements the same mathematical stack from scratch:

- :mod:`repro.nn.tensor` — a :class:`Tensor` with reverse-mode automatic
  differentiation (topological-sort backprop, broadcasting-aware),
- :mod:`repro.nn.layers` — ``Module`` containers and the layers the paper
  uses (Linear, ReLU, Sigmoid, Dropout, Highway, Sequential),
- :mod:`repro.nn.loss` — softmax cross-entropy and logistic losses,
- :mod:`repro.nn.optim` — ADAM [36] and SGD,
- :mod:`repro.nn.backend` / :mod:`repro.nn.backends` — pluggable compute
  backends (registry kind ``"backend"``): the fused-numpy default that
  runs training as minibatch BLAS kernels, the autodiff ``reference``
  ground truth, and an optional ``torch`` backend.

Gradients are verified against finite differences by property-based tests,
uniformly across backends.
"""

from repro.nn.backend import (
    BackendUnavailable,
    ComputeBackend,
    JointTrainer,
    default_backend_name,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from repro.nn.tensor import Tensor, concat, no_grad
from repro.nn.layers import (
    Dropout,
    Highway,
    Linear,
    Module,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.loss import binary_cross_entropy_with_logits, softmax_cross_entropy
from repro.nn.optim import SGD, Adam, Optimizer

__all__ = [
    "Tensor",
    "concat",
    "no_grad",
    "Module",
    "Linear",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Dropout",
    "Highway",
    "Sequential",
    "softmax_cross_entropy",
    "binary_cross_entropy_with_logits",
    "Optimizer",
    "Adam",
    "SGD",
    "BackendUnavailable",
    "ComputeBackend",
    "JointTrainer",
    "default_backend_name",
    "resolve_backend",
    "set_default_backend",
    "use_backend",
]
