"""Pluggable compute backends for the ``repro.nn`` training core.

The hand-rolled autodiff stack (:mod:`repro.nn.tensor`) is the reference
semantics of the joint model's training loop — every elementary numpy op in
a fixed order.  A :class:`ComputeBackend` reimplements that loop as fused
minibatch kernels: one fused affine→nonlinearity→Highway-gate
forward/backward per layer per batch, a flat-parameter optimiser step, and
preallocated buffers reused across steps.  Backends are registry components
(kind ``"backend"``), so a :class:`~repro.spec.DetectorSpec` can select one
by name or as a ``module:attr`` reference with zero repo edits.

Contract (see "Compute backends" in ``docs/architecture.md``):

- the default ``numpy`` backend is **bit-identical** at float64 to the
  autodiff stack — same elementary operations in the same accumulation
  order, consuming the same RNG streams;
- the ``reference`` backend *is* the autodiff stack (the pre-fusion loop),
  kept as the ground truth the fast paths are benchmarked and asserted
  against;
- optional backends (``torch``) match within a documented tolerance and
  are skipped everywhere their dependency is absent.

Backend choice is an execution detail, like the artifact-store directory:
it never enters spec fingerprints or artifact keys (except when a
non-default backend is pinned on an embedding, which *must* key its
artifacts separately — see :class:`repro.embeddings.FastTextEmbedding`).
"""

from __future__ import annotations

import contextlib
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

from repro.registry import REGISTRY, ComponentError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.model import JointModel
    from repro.core.training import TrainerConfig
    from repro.features.pipeline import CellFeatures

#: The backend used when neither the config nor the ambient default names one.
DEFAULT_BACKEND = "numpy"

#: Compute dtypes a backend may be asked to train in.  float32 halves memory
#: traffic; the loss is still accumulated in float64 (see JointTrainer).
SUPPORTED_DTYPES = ("float64", "float32")


class BackendUnavailable(ComponentError):
    """A backend's optional dependency is missing (e.g. torch)."""


class JointTrainer:
    """One training run of a :class:`~repro.core.model.JointModel`.

    Created by :meth:`ComputeBackend.joint_trainer`; driven by
    :func:`repro.core.training.train_model`, which owns the epoch /
    permutation / minibatch schedule so every backend sees identical batch
    index sequences.
    """

    def step(self, idx: np.ndarray) -> float:  # pragma: no cover - abstract
        """One optimiser step over the rows ``idx``; returns the batch loss."""
        raise NotImplementedError

    def finalize(self) -> None:
        """Write trained parameters back into the model (if held externally)."""


class ComputeBackend:
    """Array ops + fused layer forward/backward + optimiser step.

    Subclasses implement the kernel-level API (numpy arrays in, numpy
    arrays out — foreign backends convert internally) plus
    :meth:`joint_trainer`.  The kernel API exists so the gradient-check
    suite can exercise each fused kernel against central finite differences
    on every backend uniformly.
    """

    #: Registry key / display name.
    name: str = "abstract"

    # -- training ------------------------------------------------------- #

    def joint_trainer(
        self,
        model: "JointModel",
        features: "CellFeatures",
        labels: np.ndarray,
        config: "TrainerConfig",
    ) -> JointTrainer:  # pragma: no cover - abstract
        raise NotImplementedError

    def predict_logits(self, model: "JointModel", features: "CellFeatures") -> np.ndarray:
        """Eval-mode logits ``[n, classes]`` for a feature batch.

        The base implementation runs the model's own autodiff-graph forward
        (the caller manages eval mode / ``no_grad``); fast backends fuse it.
        Overrides must stay bit-identical to the graph at float64 — this is
        the prediction path the golden metrics pin.
        """
        return model.forward(features).numpy()

    def sgns_step(
        self,
        in_table: np.ndarray,
        out_table: np.ndarray,
        sub_ids: np.ndarray,
        sub_mask: np.ndarray,
        contexts: np.ndarray,
        negatives: np.ndarray,
        lr: float,
    ) -> None:  # pragma: no cover - abstract
        """One skip-gram-negative-sampling batch update, in place.

        ``sub_ids``/``sub_mask`` are the padded per-center subword id table
        rows; ``contexts`` the positive target ids; ``negatives [n, k]``
        the sampled negative ids.  Used by
        :meth:`repro.embeddings.FastTextEmbedding._train_epoch`.
        """
        raise NotImplementedError

    # -- fused kernels (uniform numpy-in / numpy-out test surface) ------- #

    def affine(self, x, W, b):  # pragma: no cover - abstract
        """``y = x @ W + b``."""
        raise NotImplementedError

    def affine_grad(self, x, W, dy):  # pragma: no cover - abstract
        """``(dx, dW, db)`` of the affine forward."""
        raise NotImplementedError

    def relu(self, x):  # pragma: no cover - abstract
        raise NotImplementedError

    def relu_grad(self, x, dy):  # pragma: no cover - abstract
        raise NotImplementedError

    def sigmoid(self, x):  # pragma: no cover - abstract
        raise NotImplementedError

    def sigmoid_grad(self, s, dy):  # pragma: no cover - abstract
        """``dx`` given the forward output ``s = sigmoid(x)``."""
        raise NotImplementedError

    def highway(self, x, Wt, bt, Wg, bg):  # pragma: no cover - abstract
        """Fused highway forward; returns ``(y, cache)``."""
        raise NotImplementedError

    def highway_grad(self, cache, dy, need_dx=True):  # pragma: no cover - abstract
        """Fused highway backward from :meth:`highway`'s cache.

        Returns a dict with ``dWt, dbt, dWg, dbg`` and — when ``need_dx`` —
        ``dx``.
        """
        raise NotImplementedError

    def softmax_xent(self, logits, targets):  # pragma: no cover - abstract
        """``(loss, dlogits)`` of mean softmax cross-entropy."""
        raise NotImplementedError

    def adam_step(
        self, p, g, m, v, t, *, lr, beta1=0.9, beta2=0.999, eps=1e-8,
        weight_decay=0.0,
    ):  # pragma: no cover - abstract
        """In-place ADAM update of ``p`` (with first/second moments m, v)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


# --------------------------------------------------------------------- #
# Ambient default backend (mirrors repro.artifacts' ambient store:
# process-wide, so pool threads spawned by a sweep coordinator or the
# serving layer inherit it)
# --------------------------------------------------------------------- #

_ambient: str | None = None


def default_backend_name() -> str:
    """The process-ambient backend name (``"numpy"`` unless set)."""
    return _ambient or DEFAULT_BACKEND


def set_default_backend(name: str | None) -> str | None:
    """Install ``name`` as the ambient default backend (``None`` clears it);
    returns the previous value.

    Sweep worker initialisers and the serving layer use this so every
    detector built in the process trains on the selected backend without
    threading the name through each config.
    """
    global _ambient
    previous = _ambient
    _ambient = name
    return previous


@contextlib.contextmanager
def use_backend(name: str | None):
    """Scoped :func:`set_default_backend` (restores the previous value)."""
    previous = set_default_backend(name)
    try:
        yield
    finally:
        set_default_backend(previous)


_instances: dict[str, ComputeBackend] = {}


def resolve_backend(
    name: "str | ComputeBackend | None" = None,
    params: Mapping[str, Any] | None = None,
) -> ComputeBackend:
    """Resolve a backend reference to a live instance.

    ``None`` resolves the ambient default (normally ``"numpy"``); a string
    resolves through the registry (built-in key or ``module:attr``);
    instances pass through.  Parameterless resolutions are cached per key —
    backends are stateless between training runs (all run state lives on
    the :class:`JointTrainer`).
    """
    if isinstance(name, ComputeBackend):
        return name
    key = name or default_backend_name()
    if params:
        backend = REGISTRY.create("backend", key, params)
    else:
        backend = _instances.get(key)
        if backend is None:
            backend = REGISTRY.create("backend", key)
            _instances[key] = backend
    if not isinstance(backend, ComputeBackend):
        raise ComponentError(
            f"backend {key!r} built {type(backend).__name__}; expected a "
            "ComputeBackend"
        )
    return backend


def backend_names() -> tuple[str, ...]:
    """Registered built-in backend keys."""
    return REGISTRY.names("backend")
