"""Built-in compute backends, registered under registry kind ``"backend"``.

========== ==========================================================
key         backend
========== ==========================================================
numpy       fused minibatch BLAS kernels (default; bit-identical to
            the autodiff stack at float64)
reference   the original autodiff-graph loop (ground truth for the
            benchmark and equivalence gates; slow by design)
torch       optional torch implementation (raises
            :class:`~repro.nn.backend.BackendUnavailable` without torch)
========== ==========================================================

Third-party backends need zero repo edits: any ``module:attr`` reference
resolving to a :class:`~repro.nn.backend.ComputeBackend` subclass or
factory works everywhere a key does (``--backend mypkg.fast:Backend``).
"""

from __future__ import annotations

from repro.nn.backend import (
    BackendUnavailable,
    ComputeBackend,
    JointTrainer,
    backend_names,
    default_backend_name,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from repro.nn.backends.graph_backend import GraphBackend
from repro.nn.backends.numpy_backend import NumpyBackend
from repro.nn.backends.torch_backend import TorchBackend
from repro.registry import register

__all__ = [
    "BackendUnavailable",
    "ComputeBackend",
    "GraphBackend",
    "JointTrainer",
    "NumpyBackend",
    "TorchBackend",
    "backend_names",
    "default_backend_name",
    "resolve_backend",
    "set_default_backend",
    "use_backend",
]


@register(
    "backend",
    "numpy",
    description="Fused minibatch BLAS kernels; bit-identical to the "
    "autodiff stack at float64 (default)",
)
def _build_numpy_backend(params):
    return NumpyBackend(**params)


@register(
    "backend",
    "reference",
    description="Original autodiff-graph training loop; the ground truth "
    "fast backends are gated against",
)
def _build_reference_backend(params):
    return GraphBackend(**params)


@register(
    "backend",
    "torch",
    description="Optional torch backend (tolerance-matched; requires torch)",
)
def _build_torch_backend(params):
    return TorchBackend(**params)
