"""Reference backend: the original autodiff-graph training loop.

This backend *is* the pre-fusion stack — ``Tensor`` graph forward,
reverse-topological backward, per-parameter :class:`repro.nn.optim.Adam` —
kept registered as ``"reference"`` so the fused backends have a live ground
truth: ``benchmarks/bench_training.py`` and the backend-equivalence tests
train the same model on ``reference`` and on the backend under test and
assert bit-identity (numpy/float64) or documented tolerance (torch,
float32).  It is intentionally slow; never the default.

The kernel-level API is implemented *through the graph* (build tensors,
run backward), so the gradient-check suite exercising every backend's
kernels also covers the autodiff ops themselves.
"""

from __future__ import annotations

import numpy as np

from repro.nn.backend import ComputeBackend, JointTrainer
from repro.nn.loss import softmax_cross_entropy
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor


class _GraphTrainer(JointTrainer):
    """One step = zero_grad → graph forward → loss → backward → Adam."""

    def __init__(self, model, features, labels, config):
        self._model = model
        self._features = features
        self._labels = np.asarray(labels, dtype=np.int64)
        self._optimizer = Adam(
            model.parameters(), lr=config.lr, weight_decay=config.weight_decay
        )

    def step(self, idx: np.ndarray) -> float:
        from repro.core.training import _slice_features

        self._optimizer.zero_grad()
        logits = self._model(_slice_features(self._features, idx))
        loss = softmax_cross_entropy(logits, self._labels[idx])
        loss.backward()
        self._optimizer.step()
        return loss.item()


class GraphBackend(ComputeBackend):
    """The autodiff stack as a backend (``"reference"``)."""

    name = "reference"

    def joint_trainer(self, model, features, labels, config) -> JointTrainer:
        return _GraphTrainer(model, features, labels, config)

    # -- kernel API via the Tensor graph -------------------------------- #

    def affine(self, x, W, b):
        return (Tensor(x) @ Tensor(W) + Tensor(b)).data

    def affine_grad(self, x, W, dy):
        tx = Tensor(x, requires_grad=True)
        tW = Tensor(W, requires_grad=True)
        tb = Tensor(np.zeros((1, np.asarray(W).shape[1])), requires_grad=True)
        y = tx @ tW + tb
        y.backward(dy)
        return tx.grad, tW.grad, tb.grad

    def relu(self, x):
        return Tensor(x).relu().data

    def relu_grad(self, x, dy):
        tx = Tensor(x, requires_grad=True)
        tx.relu().backward(dy)
        return tx.grad

    def sigmoid(self, x):
        return Tensor(x).sigmoid().data

    def sigmoid_grad(self, s, dy):
        # The graph's sigmoid backward is dy * s * (1 - s) over the forward
        # output; reconstruct it directly from ``s``.
        s = np.asarray(s, dtype=np.float64)
        return dy * s * (1.0 - s)

    def _highway_graph(self, x, Wt, bt, Wg, bg):
        tx = Tensor(x, requires_grad=True)
        tWt = Tensor(Wt, requires_grad=True)
        tbt = Tensor(bt, requires_grad=True)
        tWg = Tensor(Wg, requires_grad=True)
        tbg = Tensor(bg, requires_grad=True)
        t = (tx @ tWg + tbg).sigmoid()
        h = (tx @ tWt + tbt).relu()
        y = t * h + (Tensor(1.0) - t) * tx
        return y, (tx, tWt, tbt, tWg, tbg)

    def highway(self, x, Wt, bt, Wg, bg):
        y, leaves = self._highway_graph(x, Wt, bt, Wg, bg)
        return y.data, (y, leaves)

    def highway_grad(self, cache, dy, need_dx=True):
        y, (tx, tWt, tbt, tWg, tbg) = cache
        y.backward(dy)
        grads = {
            "dWt": tWt.grad, "dbt": tbt.grad,
            "dWg": tWg.grad, "dbg": tbg.grad,
        }
        if need_dx:
            grads["dx"] = tx.grad
        return grads

    def softmax_xent(self, logits, targets):
        tl = Tensor(logits, requires_grad=True)
        loss = softmax_cross_entropy(tl, targets)
        loss.backward()
        return loss.item(), tl.grad

    def adam_step(self, p, g, m, v, t, *, lr, beta1=0.9, beta2=0.999,
                  eps=1e-8, weight_decay=0.0):
        # Exactly the per-parameter update of repro.nn.optim.Adam.step.
        grad = g
        if weight_decay:
            grad = grad + weight_decay * p
        m *= beta1
        m += (1.0 - beta1) * grad
        v *= beta2
        v += (1.0 - beta2) * grad**2
        m_hat = m / (1.0 - beta1**t)
        v_hat = v / (1.0 - beta2**t)
        p -= lr * m_hat / (np.sqrt(v_hat) + eps)

    def sgns_step(self, in_table, out_table, sub_ids, sub_mask, contexts,
                  negatives, lr):
        from repro.nn.backends.numpy_backend import sgns_step_numpy

        # The SGNS loop predates the graph and was always plain numpy; the
        # numpy implementation is its reference semantics.
        sgns_step_numpy(
            in_table, out_table, sub_ids, sub_mask, contexts, negatives, lr
        )
