"""Fused pure-numpy backend — the default compute backend.

Replaces the per-op autodiff graph of the training loop with straight-line
minibatch BLAS kernels: one fused affine→nonlinearity→Highway-gate
forward/backward per layer per batch, a flat-parameter ADAM step over one
concatenated vector, and a per-batch-size workspace of preallocated
activation/gradient buffers reused across steps (every ufunc and matmul
writes through ``out=``; a steady-state step allocates nothing).

Bit-identity contract: at float64 this backend reproduces the autodiff
stack *exactly* — same elementary operations in the same accumulation
order, consuming the same RNG streams (batch permutations from the trainer
seed, dropout masks from the model's own dropout generator).  Every
rewrite below relies on an exact IEEE identity, not an algebraic one:

- ``a - b`` ≡ ``a + (-b)`` (the graph's subtract is add-of-negation);
- ``g * g`` ≡ ``g ** 2`` (numpy's small-integer-exponent pow fast path);
- ``float64 * bool`` ≡ ``float64 * bool.astype(float64)``;
- ``arr.sum(axis=0)`` ≡ ``np.add.reduce(arr, axis=0)``;
- ``Generator.random(out=buf)`` consumes the stream of ``random(shape)``;
- ``np.take(a, idx, out=buf)`` ≡ the fancy-index copy ``a[idx]``;
- the cached forward carry ``s = 1 - t`` equals the backward recompute.

float32 compute halves memory traffic for the matmuls; the loss (and its
softmax backward) is still computed in float64 from the cast logits and
the epoch loss accumulated in float64, so reported histories stay stable.
float32 results are *not* bit-pinned — that mode trades exactness for
speed, like any foreign backend.
"""

from __future__ import annotations

import numpy as np

from repro.nn.backend import (
    SUPPORTED_DTYPES,
    ComputeBackend,
    JointTrainer,
)
from repro.nn.layers import Dropout, Highway, Linear, ReLU, Sequential


def extract_structure(model):
    """The (branches, dropout, linear1, linear2) layers of a JointModel.

    Returns ``None`` when ``model`` is not shaped like
    :class:`repro.core.model.JointModel` (fused kernels are specialised to
    that architecture; anything else falls back to the autodiff graph).
    """
    try:
        branch_seqs = model.branches
        classifier = model.classifier
        names = model.branch_names
    except AttributeError:
        return None
    if not isinstance(classifier, Sequential) or len(classifier.modules) != 4:
        return None
    drop, lin1, relu_c, lin2 = classifier.modules
    if not (
        isinstance(drop, Dropout)
        and isinstance(lin1, Linear)
        and isinstance(relu_c, ReLU)
        and isinstance(lin2, Linear)
    ):
        return None
    if len(branch_seqs) != len(names):
        return None
    branches = []
    for seq in branch_seqs:
        if not isinstance(seq, Sequential) or len(seq.modules) != 4:
            return None
        h1, h2, relu_b, lin = seq.modules
        if not (
            isinstance(h1, Highway)
            and isinstance(h2, Highway)
            and isinstance(relu_b, ReLU)
            and isinstance(lin, Linear)
        ):
            return None
        branches.append((h1, h2, lin))
    return branches, drop, lin1, lin2


# Hot-loop aliases: skip the np-module attribute lookup per call, and — for
# clip — the fromnumeric wrapper entirely (maximum∘minimum computes the
# identical result elementwise: each output is exactly x, lo, or hi).
_mm = np.matmul
_add = np.add
_sub = np.subtract
_mul = np.multiply
_div = np.divide
_neg = np.negative
_exp = np.exp
_max = np.maximum
_min = np.minimum
_gt = np.greater
_reduce_add = np.add.reduce


def _hw_fwd(x, Wt, bt, Wg, bg, tg, z2, h, s, y, tmp):
    """Fused highway forward into preallocated buffers.

    Leaves the backward cache in place: ``tg`` (gate), ``z2`` (transform
    pre-activation), ``h`` (relu), ``s`` (= 1 - tg carry), with ``y`` the
    output.
    """
    _mm(x, Wg, out=tg)
    _add(tg, bg, out=tg)
    _max(tg, -60.0, out=tg)
    _min(tg, 60.0, out=tg)
    _neg(tg, out=tg)
    _exp(tg, out=tg)
    _add(tg, 1.0, out=tg)
    _div(1.0, tg, out=tg)
    _mm(x, Wt, out=z2)
    _add(z2, bt, out=z2)
    _max(z2, 0.0, out=h)
    _mul(tg, h, out=y)
    _sub(1.0, tg, out=s)
    _mul(s, x, out=tmp)
    _add(y, tmp, out=y)


def _hw_bwd(dy, x, tg, z2, h, s, Wt, Wg, gWt, gbt, gWg, gbg,
            dt, dh, ds, dz1, boolb, tmp, dx, need_dx):
    """Fused highway backward; mirrors the graph's reversed-topo op order.

    Writes parameter gradients into the ``g*`` views and (when ``need_dx``)
    the input gradient into ``dx``.  The ``dx`` accumulation order —
    transform path, then carry path, then gate path — is the graph's
    accumulation order and must not be reordered.
    """
    _mul(dy, h, out=dt)
    _mul(dy, tg, out=dh)
    _gt(z2, 0.0, out=boolb)
    _mul(dh, boolb, out=dh)  # dz2
    _reduce_add(dh, axis=0, out=gbt, keepdims=True)
    if need_dx:
        _mm(dh, Wt.T, out=dx)
    _mm(x.T, dh, out=gWt)
    _mul(dy, x, out=ds)
    if need_dx:
        _mul(dy, s, out=tmp)
        _add(dx, tmp, out=dx)
    _sub(dt, ds, out=dt)
    _mul(dt, tg, out=dz1)
    _mul(dz1, s, out=dz1)
    _reduce_add(dz1, axis=0, out=gbg, keepdims=True)
    if need_dx:
        _mm(dz1, Wg.T, out=tmp)
        _add(dx, tmp, out=dx)
    _mm(x.T, dz1, out=gWg)


class _BranchSpace:
    """Per-branch activation/gradient buffers for one batch size."""

    __slots__ = (
        "xb", "tg1", "z21", "h1", "s1", "y1", "tg2", "z22", "h2", "s2",
        "y2", "r", "tmp", "boolb", "dt", "dh", "ds", "dz1", "dx", "dr",
        "dz3",
    )

    def __init__(self, nb: int, d: int, dtype):
        for slot in self.__slots__:
            if slot == "boolb":
                setattr(self, slot, np.empty((nb, d), dtype=bool))
            elif slot == "dz3":
                setattr(self, slot, np.empty((nb, 1), dtype=dtype))
            else:
                setattr(self, slot, np.empty((nb, d), dtype=dtype))


class _Workspace:
    """All buffers of one batch size (only two sizes occur: full and tail)."""

    def __init__(self, nb, dims, numeric_dim, joint_dim, hidden, classes,
                 dtype, loss64):
        self.branches = [_BranchSpace(nb, d, dtype) for d in dims]
        self.joint = np.empty((nb, joint_dim), dtype=dtype)
        self.numbuf = np.empty((nb, numeric_dim), dtype=dtype)
        self.mask64 = np.empty((nb, joint_dim), dtype=np.float64)
        self.boolj = np.empty((nb, joint_dim), dtype=bool)
        self.maskc = np.empty((nb, joint_dim), dtype=dtype)
        self.xd = np.empty((nb, joint_dim), dtype=dtype)
        self.z4 = np.empty((nb, hidden), dtype=dtype)
        self.r4 = np.empty((nb, hidden), dtype=dtype)
        self.boolh = np.empty((nb, hidden), dtype=bool)
        self.dr4 = np.empty((nb, hidden), dtype=dtype)
        self.dxd = np.empty((nb, joint_dim), dtype=dtype)
        self.logits = np.empty((nb, classes), dtype=dtype)
        # Loss buffers stay float64: accumulation precision is part of the
        # backend contract even in float32 compute mode.
        self.l64 = self.logits if not loss64 else np.empty(
            (nb, classes), dtype=np.float64
        )
        self.col = np.empty((nb, 1), dtype=np.float64)
        self.col2 = np.empty((nb, 1), dtype=np.float64)
        self.shifted = np.empty((nb, classes), dtype=np.float64)
        self.expb = np.empty((nb, classes), dtype=np.float64)
        self.probs = np.empty((nb, classes), dtype=np.float64)
        self.dlc = self.probs if not loss64 else np.empty(
            (nb, classes), dtype=dtype
        )
        self.yb = np.empty(nb, dtype=np.int64)
        self.ar = np.arange(nb)


class _FusedJointTrainer(JointTrainer):
    """Flat-parameter fused trainer over a JointModel's layer structure."""

    def __init__(self, model, features, labels, config, structure):
        branches, drop, lin1, lin2 = structure
        dtype = np.dtype(config.dtype)
        if str(dtype) not in SUPPORTED_DTYPES:
            raise ValueError(
                f"unsupported compute dtype {config.dtype!r}; "
                f"choose from {list(SUPPORTED_DTYPES)}"
            )
        self._model = model
        self._dtype = dtype
        self._f64 = dtype == np.float64

        params = []
        for h1, h2, lin in branches:
            params += [
                h1.transform.weight, h1.transform.bias,
                h1.gate.weight, h1.gate.bias,
                h2.transform.weight, h2.transform.bias,
                h2.gate.weight, h2.gate.bias,
                lin.weight, lin.bias,
            ]
        params += [lin1.weight, lin1.bias, lin2.weight, lin2.bias]
        self._params = params
        sizes = [p.data.size for p in params]
        offsets = np.concatenate(([0], np.cumsum(sizes)))
        total = int(offsets[-1])
        self._P = np.empty(total, dtype=dtype)
        self._G = np.empty(total, dtype=dtype)
        self._M = np.zeros(total, dtype=dtype)
        self._V = np.zeros(total, dtype=dtype)
        self._T1 = np.empty(total, dtype=dtype)
        self._T2 = np.empty(total, dtype=dtype)
        views_p, views_g = [], []
        for p, lo, hi in zip(params, offsets[:-1], offsets[1:]):
            self._P[lo:hi] = p.data.ravel()
            views_p.append(self._P[lo:hi].reshape(p.data.shape))
            views_g.append(self._G[lo:hi].reshape(p.data.shape))
        self._views_p = views_p
        # Per-branch (param-view, grad-view) bundles in fused-kernel order.
        self._bviews = []
        for bi in range(len(branches)):
            o = bi * 10
            self._bviews.append(
                (tuple(views_p[o:o + 10]), tuple(views_g[o:o + 10]))
            )
        o = len(branches) * 10
        self._cW1, self._cb1, self._cW2, self._cb2 = views_p[o:o + 4]
        self._gcW1, self._gcb1, self._gcW2, self._gcb2 = views_g[o:o + 4]

        names = model.branch_names
        self._xs = [
            np.ascontiguousarray(np.asarray(features.branches[n], dtype=dtype))
            for n in names
        ]
        self._numeric = np.ascontiguousarray(
            np.asarray(features.numeric, dtype=dtype)
        )
        self._labels = np.ascontiguousarray(np.asarray(labels, dtype=np.int64))
        self._dims = [x.shape[1] for x in self._xs]
        self._nbranch = len(names)
        self._joint_dim = self._nbranch + self._numeric.shape[1]
        self._hidden = lin1.weight.data.shape[1]
        self._classes = lin2.weight.data.shape[1]
        self._drop_p = drop.p
        self._drop_rng = drop._rng
        self._keep = 1.0 - drop.p

        self._lr = config.lr
        self._wd = config.weight_decay
        self._b1, self._b2 = 0.9, 0.999
        self._eps = 1e-8
        self._t = 0
        self._spaces: dict[int, _Workspace] = {}

    def _workspace(self, nb: int) -> _Workspace:
        ws = self._spaces.get(nb)
        if ws is None:
            ws = _Workspace(
                nb, self._dims, self._numeric.shape[1], self._joint_dim,
                self._hidden, self._classes, self._dtype, not self._f64,
            )
            self._spaces[nb] = ws
        return ws

    def step(self, idx: np.ndarray) -> float:
        nb = idx.shape[0]
        ws = self._workspace(nb)
        yb = ws.yb
        ar = ws.ar
        self._labels.take(idx, out=yb)
        joint = ws.joint
        nbranch = self._nbranch

        for bi in range(nbranch):
            b = ws.branches[bi]
            pv, _ = self._bviews[bi]
            Wt1, bt1, Wg1, bg1, Wt2, bt2, Wg2, bg2, lW, lb = pv
            self._xs[bi].take(idx, axis=0, out=b.xb)
            _hw_fwd(b.xb, Wt1, bt1, Wg1, bg1,
                    b.tg1, b.z21, b.h1, b.s1, b.y1, b.tmp)
            _hw_fwd(b.y1, Wt2, bt2, Wg2, bg2,
                    b.tg2, b.z22, b.h2, b.s2, b.y2, b.tmp)
            _max(b.y2, 0.0, out=b.r)
            _mm(b.r, lW, out=b.dz3)
            _add(b.dz3, lb, out=b.dz3)
            joint[:, bi] = b.dz3[:, 0]
        if self._numeric.shape[1]:
            self._numeric.take(idx, axis=0, out=ws.numbuf)
            joint[:, nbranch:] = ws.numbuf

        if self._drop_p > 0.0:
            self._drop_rng.random(out=ws.mask64)
            np.less(ws.mask64, self._keep, out=ws.boolj)
            _div(ws.boolj, self._keep, out=ws.maskc)
            _mul(joint, ws.maskc, out=ws.xd)
            xd = ws.xd
        else:
            xd = joint
        _mm(xd, self._cW1, out=ws.z4)
        _add(ws.z4, self._cb1, out=ws.z4)
        _max(ws.z4, 0.0, out=ws.r4)
        _mm(ws.r4, self._cW2, out=ws.logits)
        _add(ws.logits, self._cb2, out=ws.logits)

        l64 = ws.l64
        if not self._f64:
            l64[...] = ws.logits
        l64.max(axis=1, out=ws.col, keepdims=True)
        _sub(l64, ws.col, out=ws.shifted)
        _exp(ws.shifted, out=ws.expb)
        _reduce_add(ws.expb, axis=1, out=ws.col2, keepdims=True)
        np.log(ws.col2, out=ws.col2)
        _sub(ws.shifted, ws.col2, out=ws.shifted)  # log-probs
        # ``picked.mean()`` is pairwise-sum / count; _reduce_add over the
        # 1-D gather is the identical reduction.
        loss = -(_reduce_add(ws.shifted[ar, yb]) / nb)

        _exp(ws.shifted, out=ws.probs)
        ws.probs[ar, yb] -= 1.0
        _div(ws.probs, nb, out=ws.probs)
        dl = ws.dlc
        if not self._f64:
            dl[...] = ws.probs
        _reduce_add(dl, axis=0, out=self._gcb2, keepdims=True)
        _mm(dl, self._cW2.T, out=ws.dr4)
        _mm(ws.r4.T, dl, out=self._gcW2)
        _gt(ws.z4, 0.0, out=ws.boolh)
        _mul(ws.dr4, ws.boolh, out=ws.dr4)  # dz4
        _reduce_add(ws.dr4, axis=0, out=self._gcb1, keepdims=True)
        _mm(ws.dr4, self._cW1.T, out=ws.dxd)
        _mm(xd.T, ws.dr4, out=self._gcW1)
        if self._drop_p > 0.0:
            _mul(ws.dxd, ws.maskc, out=ws.dxd)
        djoint = ws.dxd

        for bi in range(nbranch):
            b = ws.branches[bi]
            pv, gv = self._bviews[bi]
            Wt1, bt1, Wg1, bg1, Wt2, bt2, Wg2, bg2, lW, lb = pv
            gWt1, gbt1, gWg1, gbg1, gWt2, gbt2, gWg2, gbg2, glW, glb = gv
            np.copyto(b.dz3, djoint[:, bi:bi + 1])
            _reduce_add(b.dz3, axis=0, out=glb, keepdims=True)
            _mm(b.dz3, lW.T, out=b.dr)
            _mm(b.r.T, b.dz3, out=glW)
            _gt(b.y2, 0.0, out=b.boolb)
            _mul(b.dr, b.boolb, out=b.dr)  # dy2
            _hw_bwd(b.dr, b.y1, b.tg2, b.z22, b.h2, b.s2, Wt2, Wg2,
                    gWt2, gbt2, gWg2, gbg2,
                    b.dt, b.dh, b.ds, b.dz1, b.boolb, b.tmp, b.dx, True)
            _hw_bwd(b.dx, b.xb, b.tg1, b.z21, b.h1, b.s1, Wt1, Wg1,
                    gWt1, gbt1, gWg1, gbg1,
                    b.dt, b.dh, b.ds, b.dz1, b.boolb, b.tmp, None, False)

        self._adam()
        return float(loss)

    def _adam(self) -> None:
        self._t += 1
        bias1 = 1.0 - self._b1 ** self._t
        bias2 = 1.0 - self._b2 ** self._t
        P, G, M, V = self._P, self._G, self._M, self._V
        T1, T2 = self._T1, self._T2
        if self._wd:
            _mul(P, self._wd, out=T1)
            _add(G, T1, out=T1)
            grad = T1
        else:
            grad = G
        _mul(M, self._b1, out=M)
        _mul(grad, 1.0 - self._b1, out=T2)
        _add(M, T2, out=M)
        _mul(V, self._b2, out=V)
        _mul(grad, grad, out=T2)
        _mul(T2, 1.0 - self._b2, out=T2)
        _add(V, T2, out=V)
        _div(M, bias1, out=T1)
        _div(V, bias2, out=T2)
        np.sqrt(T2, out=T2)
        _add(T2, self._eps, out=T2)
        _mul(T1, self._lr, out=T1)
        _div(T1, T2, out=T1)
        _sub(P, T1, out=P)

    def finalize(self) -> None:
        for p, view in zip(self._params, self._views_p):
            p.data = view.copy() if self._f64 else view.astype(np.float64)


def sgns_step_numpy(in_table, out_table, sub_ids, sub_mask, contexts,
                    negatives, lr):
    """The skip-gram negative-sampling batch update (reference numpy math)."""
    counts = sub_mask.sum(axis=1, keepdims=True)
    in_vecs = (in_table[sub_ids] * sub_mask[:, :, None]).sum(axis=1) / counts
    n = contexts.shape[0]
    dim = in_table.shape[1]
    targets = np.concatenate([contexts[:, None], negatives], axis=1)
    labels = np.zeros((n, 1 + negatives.shape[1]))
    labels[:, 0] = 1.0
    out_vecs = out_table[targets]
    scores = np.einsum("nd,nkd->nk", in_vecs, out_vecs)
    g = (1.0 / (1.0 + np.exp(-np.clip(scores, -30, 30))) - labels) * lr
    grad_out = g[:, :, None] * in_vecs[:, None, :]
    np.add.at(out_table, targets.ravel(), -grad_out.reshape(-1, dim))
    grad_in = np.einsum("nk,nkd->nd", g, out_vecs) / counts
    weighted = grad_in[:, None, :] * sub_mask[:, :, None]
    np.add.at(in_table, sub_ids.ravel(), -weighted.reshape(-1, dim))


def _eval_highway(x, highway: Highway) -> np.ndarray:
    Wg, bg = highway.gate.weight.data, highway.gate.bias.data
    Wt, bt = highway.transform.weight.data, highway.transform.bias.data
    t = 1.0 / (1.0 + np.exp(-np.clip(x @ Wg + bg, -60.0, 60.0)))
    h = np.maximum(x @ Wt + bt, 0.0)
    return t * h + (1.0 - t) * x


class NumpyBackend(ComputeBackend):
    """Default backend: fused numpy kernels, bit-identical at float64."""

    name = "numpy"

    def joint_trainer(self, model, features, labels, config) -> JointTrainer:
        structure = extract_structure(model)
        if structure is None:
            from repro.nn.backends.graph_backend import GraphBackend

            return GraphBackend().joint_trainer(model, features, labels, config)
        return _FusedJointTrainer(model, features, labels, config, structure)

    def predict_logits(self, model, features) -> np.ndarray:
        structure = extract_structure(model)
        if (
            structure is None
            or any(n not in features.branches for n in model.branch_names)
            or (
                model.numeric_dim
                and features.numeric.shape[1] != model.numeric_dim
            )
        ):
            # The graph forward raises the canonical errors for malformed
            # batches; shape-mismatched inputs take that path.
            return super().predict_logits(model, features)
        branches, _, lin1, lin2 = structure
        names = model.branch_names
        first = (
            np.asarray(features.branches[names[0]])
            if names
            else np.asarray(features.numeric)
        )
        n = first.shape[0]
        joint = np.empty((n, model.numeric_dim + len(names)))
        for bi, (name, (h1, h2, lin)) in enumerate(zip(names, branches)):
            x = np.asarray(features.branches[name], dtype=np.float64)
            y2 = _eval_highway(_eval_highway(x, h1), h2)
            r = np.maximum(y2, 0.0)
            joint[:, bi:bi + 1] = r @ lin.weight.data + lin.bias.data
        if model.numeric_dim:
            joint[:, len(names):] = np.asarray(
                features.numeric, dtype=np.float64
            )
        z4 = joint @ lin1.weight.data + lin1.bias.data
        r4 = np.maximum(z4, 0.0)
        return r4 @ lin2.weight.data + lin2.bias.data

    # -- kernel API (uniform test surface, plain allocating versions) ---- #

    def affine(self, x, W, b):
        return x @ W + b

    def affine_grad(self, x, W, dy):
        return dy @ W.T, x.T @ dy, dy.sum(axis=0, keepdims=True)

    def relu(self, x):
        return np.maximum(x, 0.0)

    def relu_grad(self, x, dy):
        return dy * (x > 0.0)

    def sigmoid(self, x):
        return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))

    def sigmoid_grad(self, s, dy):
        return dy * s * (1.0 - s)

    def highway(self, x, Wt, bt, Wg, bg):
        tg = self.sigmoid(x @ Wg + bg)
        z2 = x @ Wt + bt
        h = np.maximum(z2, 0.0)
        y = tg * h + (1.0 - tg) * x
        return y, (x, tg, z2, h, Wt, Wg)

    def highway_grad(self, cache, dy, need_dx=True):
        x, tg, z2, h, Wt, Wg = cache
        dt = dy * h
        dz2 = (dy * tg) * (z2 > 0)
        grads = {"dbt": dz2.sum(axis=0, keepdims=True)}
        dx = dz2 @ Wt.T if need_dx else None
        grads["dWt"] = x.T @ dz2
        ds = dy * x
        if need_dx:
            dx = dx + dy * (1.0 - tg)
        dt = dt - ds
        dz1 = dt * tg * (1.0 - tg)
        grads["dbg"] = dz1.sum(axis=0, keepdims=True)
        if need_dx:
            dx = dx + dz1 @ Wg.T
            grads["dx"] = dx
        grads["dWg"] = x.T @ dz1
        return grads

    def softmax_xent(self, logits, targets):
        targets = np.asarray(targets, dtype=np.int64)
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        log_probs = shifted - log_z
        n = logits.shape[0]
        loss = -log_probs[np.arange(n), targets].mean()
        dlogits = np.exp(log_probs)
        dlogits[np.arange(n), targets] -= 1.0
        dlogits /= n
        return float(loss), dlogits

    def adam_step(self, p, g, m, v, t, *, lr, beta1=0.9, beta2=0.999,
                  eps=1e-8, weight_decay=0.0):
        if weight_decay:
            g = g + weight_decay * p
        m *= beta1
        m += (1.0 - beta1) * g
        v *= beta2
        v += (1.0 - beta2) * g**2
        m_hat = m / (1.0 - beta1**t)
        v_hat = v / (1.0 - beta2**t)
        p -= lr * m_hat / (np.sqrt(v_hat) + eps)

    def sgns_step(self, in_table, out_table, sub_ids, sub_mask, contexts,
                  negatives, lr):
        sgns_step_numpy(
            in_table, out_table, sub_ids, sub_mask, contexts, negatives, lr
        )
