"""Optional torch compute backend.

Trains the joint model with torch tensors and autograd while consuming the
*same RNG streams* as the numpy backends — batch permutations come from the
driver's generator and dropout masks are drawn from the model's numpy
dropout generator — so numpy-vs-torch runs differ only by floating-point
kernel details, not by randomness.  Results therefore match the reference
stack within tolerance (see "Compute backends" in ``docs/architecture.md``:
final predictions agree to ~1e-6 at float64, ~1e-3 at float32 at bench
scale) rather than bit-for-bit.

torch is never imported at module import time: constructing the backend
raises :class:`~repro.nn.backend.BackendUnavailable` when the dependency is
missing, and every consumer (tests, CLI, specs) treats that as "skip".
The repo never declares torch as a dependency — this backend exists to
prove the ``module:attr``/registry seam carries a real foreign array stack
with zero repo edits.
"""

from __future__ import annotations

import numpy as np

from repro.nn.backend import BackendUnavailable, ComputeBackend, JointTrainer


def _require_torch():
    try:
        import torch
    except ImportError as exc:  # pragma: no cover - torch absent in CI tier-1
        raise BackendUnavailable(
            "backend 'torch' needs the optional torch dependency "
            "(pip install torch); it is skipped wherever torch is absent"
        ) from exc
    return torch


def _hw(T, x, Wt, bt, Wg, bg):
    t = T.sigmoid(T.clamp(x @ Wg + bg, -60.0, 60.0))
    h = T.relu(x @ Wt + bt)
    return t * h + (1.0 - t) * x


class _TorchJointTrainer(JointTrainer):
    def __init__(self, backend, model, features, labels, config, structure):
        T = backend._torch
        self._T = T
        dev = backend.device
        dtype = T.float64 if config.dtype == "float64" else T.float32
        branches, drop, lin1, lin2 = structure
        np_params = []
        for h1, h2, lin in branches:
            np_params += [
                h1.transform.weight, h1.transform.bias,
                h1.gate.weight, h1.gate.bias,
                h2.transform.weight, h2.transform.bias,
                h2.gate.weight, h2.gate.bias,
                lin.weight, lin.bias,
            ]
        np_params += [lin1.weight, lin1.bias, lin2.weight, lin2.bias]
        self._np_params = np_params
        self._params = [
            T.tensor(p.data, dtype=dtype, device=dev, requires_grad=True)
            for p in np_params
        ]
        self._branch_params = [
            self._params[i * 10:(i + 1) * 10] for i in range(len(branches))
        ]
        self._cls = self._params[len(branches) * 10:]
        names = model.branch_names
        self._xs = [
            T.tensor(
                np.asarray(features.branches[n], dtype=np.float64),
                dtype=dtype, device=dev,
            )
            for n in names
        ]
        self._numeric = T.tensor(
            np.asarray(features.numeric, dtype=np.float64),
            dtype=dtype, device=dev,
        )
        self._labels = T.tensor(np.asarray(labels, dtype=np.int64), device=dev)
        self._drop_p = drop.p
        self._drop_rng = drop._rng
        self._keep = 1.0 - drop.p
        self._joint_dim = len(names) + int(features.numeric.shape[1])
        self._dtype = dtype
        self._dev = dev
        self._opt = T.optim.Adam(
            self._params, lr=config.lr, betas=(0.9, 0.999), eps=1e-8,
            weight_decay=config.weight_decay,
        )

    def step(self, idx: np.ndarray) -> float:
        T = self._T
        tidx = T.from_numpy(np.ascontiguousarray(idx)).to(self._dev)
        yb = self._labels.index_select(0, tidx)
        parts = []
        for bp, xsrc in zip(self._branch_params, self._xs):
            Wt1, bt1, Wg1, bg1, Wt2, bt2, Wg2, bg2, lW, lb = bp
            x = xsrc.index_select(0, tidx)
            y2 = _hw(T, _hw(T, x, Wt1, bt1, Wg1, bg1), Wt2, bt2, Wg2, bg2)
            parts.append(T.relu(y2) @ lW + lb)
        if self._numeric.shape[1]:
            parts.append(self._numeric.index_select(0, tidx))
        joint = parts[0] if len(parts) == 1 else T.cat(parts, dim=1)
        if self._drop_p > 0.0:
            mask = (
                self._drop_rng.random((idx.shape[0], self._joint_dim))
                < self._keep
            ).astype(np.float64) / self._keep
            joint = joint * T.tensor(mask, dtype=self._dtype, device=self._dev)
        W1, b1, W2, b2 = self._cls
        logits = T.relu(joint @ W1 + b1) @ W2 + b2
        loss = T.nn.functional.cross_entropy(logits, yb)
        self._opt.zero_grad()
        loss.backward()
        self._opt.step()
        return float(loss.item())

    def finalize(self) -> None:
        T = self._T
        with T.no_grad():
            for p, tp in zip(self._np_params, self._params):
                p.data = tp.detach().to("cpu", T.float64).numpy().copy()


class TorchBackend(ComputeBackend):
    """Torch training backend (optional dependency, tolerance-matched)."""

    name = "torch"

    def __init__(self, device: str = "cpu"):
        torch = _require_torch()
        self._torch = torch
        self.device = torch.device(device)

    def joint_trainer(self, model, features, labels, config) -> JointTrainer:
        from repro.nn.backends.numpy_backend import extract_structure

        structure = extract_structure(model)
        if structure is None:
            from repro.nn.backends.graph_backend import GraphBackend

            return GraphBackend().joint_trainer(model, features, labels, config)
        return _TorchJointTrainer(
            self, model, features, labels, config, structure
        )

    # -- kernel API ------------------------------------------------------ #

    def _f64(self, x):
        return self._torch.as_tensor(np.asarray(x, dtype=np.float64))

    def affine(self, x, W, b):
        return (self._f64(x) @ self._f64(W) + self._f64(b)).numpy()

    def affine_grad(self, x, W, dy):
        tx, tW, tdy = self._f64(x), self._f64(W), self._f64(dy)
        return (
            (tdy @ tW.T).numpy(),
            (tx.T @ tdy).numpy(),
            tdy.sum(dim=0, keepdim=True).numpy(),
        )

    def relu(self, x):
        return self._torch.relu(self._f64(x)).numpy()

    def relu_grad(self, x, dy):
        T = self._torch
        return (self._f64(dy) * (self._f64(x) > 0)).numpy()

    def sigmoid(self, x):
        T = self._torch
        return T.sigmoid(T.clamp(self._f64(x), -60.0, 60.0)).numpy()

    def sigmoid_grad(self, s, dy):
        ts = self._f64(s)
        return (self._f64(dy) * ts * (1.0 - ts)).numpy()

    def highway(self, x, Wt, bt, Wg, bg):
        T = self._torch
        leaves = [
            T.tensor(np.asarray(a, dtype=np.float64), requires_grad=True)
            for a in (x, Wt, bt, Wg, bg)
        ]
        tx, tWt, tbt, tWg, tbg = leaves
        y = _hw(T, tx, tWt, tbt, tWg, tbg)
        return y.detach().numpy(), (y, leaves)

    def highway_grad(self, cache, dy, need_dx=True):
        y, (tx, tWt, tbt, tWg, tbg) = cache
        y.backward(self._f64(dy))
        grads = {
            "dWt": tWt.grad.numpy(), "dbt": tbt.grad.numpy(),
            "dWg": tWg.grad.numpy(), "dbg": tbg.grad.numpy(),
        }
        if need_dx:
            grads["dx"] = tx.grad.numpy()
        return grads

    def softmax_xent(self, logits, targets):
        T = self._torch
        tl = T.tensor(np.asarray(logits, dtype=np.float64), requires_grad=True)
        tt = T.as_tensor(np.asarray(targets, dtype=np.int64))
        loss = T.nn.functional.cross_entropy(tl, tt)
        loss.backward()
        return float(loss.item()), tl.grad.numpy()

    def adam_step(self, p, g, m, v, t, *, lr, beta1=0.9, beta2=0.999,
                  eps=1e-8, weight_decay=0.0):
        T = self._torch
        tp, tg, tm, tv = (T.from_numpy(a) for a in (p, g, m, v))
        if weight_decay:
            tg = tg + weight_decay * tp
        tm.mul_(beta1).add_(tg, alpha=1.0 - beta1)
        tv.mul_(beta2).addcmul_(tg, tg, value=1.0 - beta2)
        m_hat = tm / (1.0 - beta1**t)
        v_hat = tv / (1.0 - beta2**t)
        tp.sub_(lr * m_hat / (v_hat.sqrt() + eps))

    def sgns_step(self, in_table, out_table, sub_ids, sub_mask, contexts,
                  negatives, lr):
        T = self._torch
        in_t = T.from_numpy(in_table)
        out_t = T.from_numpy(out_table)
        ids = T.from_numpy(np.ascontiguousarray(sub_ids))
        mask = T.from_numpy(np.ascontiguousarray(sub_mask))
        ctx = T.from_numpy(np.ascontiguousarray(contexts))
        neg = T.from_numpy(np.ascontiguousarray(negatives))
        counts = mask.sum(dim=1, keepdim=True)
        in_vecs = (in_t[ids] * mask.unsqueeze(-1)).sum(dim=1) / counts
        targets = T.cat([ctx.unsqueeze(1), neg], dim=1)
        labels = T.zeros(targets.shape, dtype=in_t.dtype)
        labels[:, 0] = 1.0
        out_vecs = out_t[targets]
        scores = (in_vecs.unsqueeze(1) * out_vecs).sum(dim=-1)
        g = (T.sigmoid(T.clamp(scores, -30.0, 30.0)) - labels) * lr
        dim = in_t.shape[1]
        grad_out = g.unsqueeze(-1) * in_vecs.unsqueeze(1)
        out_t.index_add_(0, targets.reshape(-1), -grad_out.reshape(-1, dim))
        grad_in = (g.unsqueeze(-1) * out_vecs).sum(dim=1) / counts
        weighted = grad_in.unsqueeze(1) * mask.unsqueeze(-1)
        in_t.index_add_(0, ids.reshape(-1), -weighted.reshape(-1, dim))
