"""Layers and module containers.

Implements the building blocks of Fig. 2: ``Linear`` (affine transform),
``Highway`` [58] gates for the learnable representation layers (Fig. 2B),
``Dropout`` for the classifier (Fig. 2C), the pointwise nonlinearities, and
``Sequential`` composition.  ``Module`` provides recursive parameter
collection and train/eval mode switching, mirroring the familiar framework
API so the model code above reads naturally.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.nn.tensor import Tensor
from repro.utils.rng import as_generator


class Module:
    """Base class: recursive parameter discovery and train/eval mode."""

    def __init__(self) -> None:
        self.training = True

    def parameters(self) -> Iterator[Tensor]:
        """Yield every trainable tensor of this module and its children."""
        seen: set[int] = set()
        for value in self.__dict__.values():
            if isinstance(value, Tensor) and value.requires_grad:
                if id(value) not in seen:
                    seen.add(id(value))
                    yield value
            elif isinstance(value, Module):
                yield from value.parameters()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.parameters()
                    elif isinstance(item, Tensor) and item.requires_grad:
                        if id(item) not in seen:
                            seen.add(id(item))
                            yield item

    def children(self) -> Iterator["Module"]:
        for value in self.__dict__.values():
            if isinstance(value, Module):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield item

    def train(self) -> "Module":
        self.training = True
        for child in self.children():
            child.train()
        return self

    def eval(self) -> "Module":
        self.training = False
        for child in self.children():
            child.eval()
        return self

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.data.size for p in self.parameters())

    def state_arrays(self) -> list[np.ndarray]:
        """Parameter arrays in deterministic traversal order (for saving)."""
        return [p.data.copy() for p in self.parameters()]

    def load_state_arrays(self, arrays: list[np.ndarray]) -> None:
        """Restore parameters saved by :meth:`state_arrays`.

        Arrays must come from an identically-constructed module; shapes are
        checked to catch architecture mismatches early.
        """
        params = list(self.parameters())
        if len(params) != len(arrays):
            raise ValueError(
                f"expected {len(params)} parameter arrays, got {len(arrays)}"
            )
        for p, arr in zip(params, arrays):
            arr = np.asarray(arr, dtype=np.float64)
            if p.data.shape != arr.shape:
                raise ValueError(f"shape mismatch: {p.data.shape} vs {arr.shape}")
            p.data = arr.copy()

    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, x: Tensor) -> Tensor:
        return self.forward(x)


def _glorot(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


class Linear(Module):
    """Affine transform ``y = xW + b``."""

    def __init__(self, in_features: int, out_features: int, rng=None, bias_init: float = 0.0):
        super().__init__()
        gen = as_generator(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(_glorot(gen, in_features, out_features), requires_grad=True, name="W")
        self.bias = Tensor(
            np.full((1, out_features), bias_init, dtype=np.float64), requires_grad=True, name="b"
        )

    def forward(self, x: Tensor) -> Tensor:
        return x @ self.weight + self.bias


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Dropout(Module):
    """Inverted dropout: active only in training mode.

    The classifier M applies dropout to the joint representation (Fig. 2C).
    """

    def __init__(self, p: float = 0.5, rng=None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = as_generator(rng)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(np.float64) / keep
        return x * Tensor(mask)


class Highway(Module):
    """One highway layer [58]: ``y = t * H(x) + (1 - t) * x``.

    ``H`` is an affine+ReLU transform and ``t = sigmoid(x W_t + b_t)`` the
    transform gate.  The gate bias is initialised negative (-1) so layers
    start close to the identity, the standard trick that makes highway
    stacks trainable from scratch.  Input and output widths are equal by
    construction.
    """

    def __init__(self, features: int, rng=None):
        super().__init__()
        gen = as_generator(rng)
        self.transform = Linear(features, features, rng=gen)
        self.gate = Linear(features, features, rng=gen, bias_init=-1.0)

    def forward(self, x: Tensor) -> Tensor:
        t = self.gate(x).sigmoid()
        h = self.transform(x).relu()
        return t * h + (Tensor(1.0) - t) * x


class Sequential(Module):
    """Compose modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.modules = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.modules:
            x = module(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self.modules)

    def __len__(self) -> int:
        return len(self.modules)
