"""Loss functions.

HoloDetect trains classifier M with a logistic loss over two classes
(Fig. 2C shows a softmax output with logistic loss); Platt scaling minimises
a negative log-likelihood over the holdout.  Both reduce to the numerically
stable fused ops below.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor


def softmax_cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits [n, k]`` and integer ``targets [n]``.

    Fused log-softmax keeps the computation stable for large logits; the
    backward pass is the classic ``softmax - onehot`` divided by batch size.
    """
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError("logits must be 2-D [batch, classes]")
    if targets.shape[0] != logits.shape[0]:
        raise ValueError("targets batch size mismatch")
    data = logits.data
    shifted = data - data.max(axis=1, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_probs = shifted - log_z
    n = data.shape[0]
    loss_value = -log_probs[np.arange(n), targets].mean()
    out = Tensor(
        loss_value,
        requires_grad=logits.requires_grad,
        _parents=(logits,) if logits.requires_grad else (),
    )
    if out.requires_grad:
        probs = np.exp(log_probs)

        def backward():
            grad = probs.copy()
            grad[np.arange(n), targets] -= 1.0
            grad /= n
            logits._accumulate(grad * out.grad)

        out._backward = backward
    return out


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean binary cross-entropy of sigmoid(``logits``) vs ``targets ∈ [0,1]``.

    Accepts soft targets, which Platt scaling's NLL objective requires.
    Stable formulation ``max(z,0) - z*y + log(1 + exp(-|z|))``.
    """
    targets = np.asarray(targets, dtype=np.float64).reshape(logits.shape)
    z = logits.data
    loss_value = (np.maximum(z, 0.0) - z * targets + np.log1p(np.exp(-np.abs(z)))).mean()
    out = Tensor(
        loss_value,
        requires_grad=logits.requires_grad,
        _parents=(logits,) if logits.requires_grad else (),
    )
    if out.requires_grad:
        sig = 1.0 / (1.0 + np.exp(-np.clip(z, -60.0, 60.0)))
        n = z.size

        def backward():
            logits._accumulate((sig - targets) / n * out.grad)

        out._backward = backward
    return out


def softmax_probabilities(logits: np.ndarray) -> np.ndarray:
    """Plain-numpy softmax used at prediction time (no graph)."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)
