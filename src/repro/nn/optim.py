"""Optimisers: ADAM [36] (used throughout the paper, §4.2/§6.1) and SGD."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.tensor import Tensor


class Optimizer:
    """Base optimiser over a fixed parameter list."""

    def __init__(self, parameters: Iterable[Tensor]):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Vanilla stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 0.01, momentum: float = 0.0):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            v *= self.momentum
            v -= self.lr * p.grad
            p.data += v


class Adam(Optimizer):
    """ADAM with bias correction, following Kingma & Ba [36]."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("lr must be positive")
        if not (0.0 <= betas[0] < 1.0 and 0.0 <= betas[1] < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
