"""Reverse-mode automatic differentiation over numpy arrays.

A :class:`Tensor` records the operation that produced it and its parents;
calling :meth:`Tensor.backward` walks the graph in reverse topological order
accumulating gradients.  Broadcasting in forward ops is undone in the
backward pass by summing gradients over broadcast axes, matching the
semantics of mainstream frameworks.

The op set is intentionally the minimum needed by HoloDetect's models
(affine layers, gates, concatenation of feature branches, reductions and the
pointwise nonlinearities) — but each op is fully general over shapes.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

_grad_enabled = True


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (used at prediction time)."""
    global _grad_enabled
    previous = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, reversing numpy broadcasting."""
    # Remove leading broadcast axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were size-1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A numpy array plus gradient and backward closure."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        name: str | None = None,
    ):
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and _grad_enabled
        self.grad: np.ndarray | None = None
        self._backward: Callable[[], None] | None = None
        self._parents = _parents if self.requires_grad else ()
        self.name = name

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        tag = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}{tag})"

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """The underlying array (detached view; do not mutate during training)."""
        return self.data

    # ------------------------------------------------------------------ #
    # Graph helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def _lift(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def _make(self, data: np.ndarray, parents: Sequence["Tensor"]) -> "Tensor":
        requires = _grad_enabled and any(p.requires_grad for p in parents)
        return Tensor(data, requires_grad=requires, _parents=tuple(parents) if requires else ())

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #

    def __add__(self, other) -> "Tensor":
        other = self._lift(other)
        out = self._make(self.data + other.data, (self, other))
        if out.requires_grad:

            def backward():
                if self.requires_grad:
                    self._accumulate(out.grad)
                if other.requires_grad:
                    other._accumulate(out.grad)

            out._backward = backward
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out = self._make(-self.data, (self,))
        if out.requires_grad:

            def backward():
                self._accumulate(-out.grad)

            out._backward = backward
        return out

    def __sub__(self, other) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other) -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._lift(other)
        out = self._make(self.data * other.data, (self, other))
        if out.requires_grad:

            def backward():
                if self.requires_grad:
                    self._accumulate(out.grad * other.data)
                if other.requires_grad:
                    other._accumulate(out.grad * self.data)

            out._backward = backward
        return out

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._lift(other)
        out = self._make(self.data / other.data, (self, other))
        if out.requires_grad:

            def backward():
                if self.requires_grad:
                    self._accumulate(out.grad / other.data)
                if other.requires_grad:
                    other._accumulate(-out.grad * self.data / (other.data**2))

            out._backward = backward
        return out

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out = self._make(self.data**exponent, (self,))
        if out.requires_grad:

            def backward():
                self._accumulate(out.grad * exponent * self.data ** (exponent - 1))

            out._backward = backward
        return out

    def matmul(self, other: "Tensor") -> "Tensor":
        other = self._lift(other)
        out = self._make(self.data @ other.data, (self, other))
        if out.requires_grad:

            def backward():
                if self.requires_grad:
                    self._accumulate(out.grad @ other.data.T)
                if other.requires_grad:
                    other._accumulate(self.data.T @ out.grad)

            out._backward = backward
        return out

    __matmul__ = matmul

    # ------------------------------------------------------------------ #
    # Nonlinearities
    # ------------------------------------------------------------------ #

    def relu(self) -> "Tensor":
        out = self._make(np.maximum(self.data, 0.0), (self,))
        if out.requires_grad:
            mask = (self.data > 0).astype(np.float64)

            def backward():
                self._accumulate(out.grad * mask)

            out._backward = backward
        return out

    def sigmoid(self) -> "Tensor":
        sig = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))
        out = self._make(sig, (self,))
        if out.requires_grad:

            def backward():
                self._accumulate(out.grad * sig * (1.0 - sig))

            out._backward = backward
        return out

    def tanh(self) -> "Tensor":
        value = np.tanh(self.data)
        out = self._make(value, (self,))
        if out.requires_grad:

            def backward():
                self._accumulate(out.grad * (1.0 - value**2))

            out._backward = backward
        return out

    def exp(self) -> "Tensor":
        value = np.exp(np.clip(self.data, -700.0, 700.0))
        out = self._make(value, (self,))
        if out.requires_grad:

            def backward():
                self._accumulate(out.grad * value)

            out._backward = backward
        return out

    def log(self) -> "Tensor":
        out = self._make(np.log(self.data), (self,))
        if out.requires_grad:

            def backward():
                self._accumulate(out.grad / self.data)

            out._backward = backward
        return out

    # ------------------------------------------------------------------ #
    # Shape ops and reductions
    # ------------------------------------------------------------------ #

    def reshape(self, *shape: int) -> "Tensor":
        out = self._make(self.data.reshape(*shape), (self,))
        if out.requires_grad:
            original = self.data.shape

            def backward():
                self._accumulate(out.grad.reshape(original))

            out._backward = backward
        return out

    def transpose(self) -> "Tensor":
        out = self._make(self.data.T, (self,))
        if out.requires_grad:

            def backward():
                self._accumulate(out.grad.T)

            out._backward = backward
        return out

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def sum(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out = self._make(self.data.sum(axis=axis, keepdims=keepdims), (self,))
        if out.requires_grad:
            shape = self.data.shape

            def backward():
                grad = out.grad
                if axis is not None and not keepdims:
                    grad = np.expand_dims(grad, axis)
                self._accumulate(np.broadcast_to(grad, shape))

            out._backward = backward
        return out

    def mean(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Row gather (``out[i] = self[indices[i]]``) with scatter-add backward."""
        indices = np.asarray(indices, dtype=np.int64)
        out = self._make(self.data[indices], (self,))
        if out.requires_grad:
            shape = self.data.shape

            def backward():
                grad = np.zeros(shape, dtype=np.float64)
                np.add.at(grad, indices, out.grad)
                self._accumulate(grad)

            out._backward = backward
        return out

    # ------------------------------------------------------------------ #
    # Backpropagation
    # ------------------------------------------------------------------ #

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Accumulate gradients of ``self`` w.r.t. every reachable leaf.

        ``grad`` defaults to ones (for scalar losses this is the usual 1.0).
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))
        self.grad = (
            np.ones_like(self.data) if grad is None else np.asarray(grad, dtype=np.float64)
        )
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward()

    def zero_grad(self) -> None:
        self.grad = None


def concat(tensors: Iterable[Tensor], axis: int = 1) -> Tensor:
    """Concatenate tensors along ``axis`` (used to join feature branches)."""
    tensors = list(tensors)
    if not tensors:
        raise ValueError("concat needs at least one tensor")
    data = np.concatenate([t.data for t in tensors], axis=axis)
    requires = _grad_enabled and any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires, _parents=tuple(tensors) if requires else ())
    if requires:
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward():
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor.requires_grad:
                    slicer = [slice(None)] * data.ndim
                    slicer[axis] = slice(start, stop)
                    tensor._accumulate(out.grad[tuple(slicer)])

        out._backward = backward
    return out
