"""Persistence: save and load fitted detectors without pickle.

A fitted :class:`~repro.core.detector.HoloDetect` bundles a lot of learned
state — embedding tables, n-gram counts, co-occurrence statistics, network
weights, the noisy-channel policy, and calibration parameters.  This package
serialises all of it to an explicit, inspectable on-disk format:

- ``state.json`` — every structured component (configs, counts, vocab,
  policies) with numpy arrays replaced by references;
- ``arrays.npz`` — the referenced arrays.

No pickle is involved, so saved models are safe to share and load.
"""

from repro.persistence.detector_io import (
    detector_fingerprint,
    detector_index,
    load_detector,
    load_detector_by_fingerprint,
    save_detector,
)

__all__ = [
    "save_detector",
    "load_detector",
    "detector_fingerprint",
    "detector_index",
    "load_detector_by_fingerprint",
]
