"""Save/load a fitted HoloDetect detector to an explicit on-disk format.

Public API
----------

:func:`save_detector(detector, path)`
    Serialise a *fitted* :class:`~repro.core.detector.HoloDetect` to
    ``path`` (a directory, created if needed).  Raises ``ValueError`` on an
    unfitted detector.  Everything needed to predict is captured: the
    detector config, every fitted featurizer of the pipeline (including
    per-attribute embedding tables), the joint model's weights, the Platt
    scaler, the learned augmentation policy, and the training-cell set.

:func:`load_detector(path, dataset)`
    Reconstruct the detector and re-attach it to ``dataset`` — the same
    relation it was fitted on (data stays with the user; it is never
    written to disk by this module).  The loaded detector predicts exactly
    as the original did.  A fresh feature cache is attached according to
    the saved config; caches themselves are never persisted.  Featurizer
    ``scope`` declarations are class-level, so a loaded detector drops
    straight into a :class:`~repro.core.detector.DetectionSession` for
    incremental re-scoring (``repro rescore --model <path>``).

On-disk layout
--------------

::

    <path>/state.json   # structured state; arrays appear as {"__array__": key}
    <path>/arrays.npz   # the referenced arrays, compressed
    <path>/spec.json    # the DetectorSpec (only for spec-built detectors)

``state.json`` carries a ``format_version`` (currently 1); loading rejects
unknown versions rather than guessing.  Configs saved by older versions of
the code load with defaults for any fields added since (``DetectorConfig``
fills them in), so the format is forward-extensible without a version bump
for config-only additions.

A detector built from a :class:`~repro.spec.DetectorSpec` saves the spec's
canonical form both inside ``state.json`` and as a human-readable
``spec.json`` sidecar (with its fingerprint), and :func:`load_detector`
restores ``detector.spec`` — so a reloaded detector knows the declarative
composition it was built from.  Saves from before the spec era load with
``spec = None``.

Custom ``module:attr`` featurizers have no encode/decode handler here;
saving a pipeline containing one raises ``TypeError`` listing the
offending type.  The built-in opt-in models of
:mod:`repro.features.extra` are handled.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.augmentation.policy import Policy, UniformPolicy
from repro.augmentation.transformations import Transformation
from repro.constraints.dc import DenialConstraint, Predicate
from repro.core.calibration import PlattScaler
from repro.core.detector import DetectorConfig, HoloDetect
from repro.core.model import JointModel
from repro.dataset.table import Cell, Dataset
from repro.features.attribute import (
    CharEmbeddingFeaturizer,
    ColumnIdFeaturizer,
    EmpiricalDistributionFeaturizer,
    FormatNGramFeaturizer,
    SymbolicNGramFeaturizer,
    WordEmbeddingFeaturizer,
)
from repro.features.base import Featurizer
from repro.features.dataset_level import (
    ConstraintViolationFeaturizer,
    NeighborhoodFeaturizer,
)
from repro.features.extra import TokenFrequencyFeaturizer, ValueLengthFeaturizer
from repro.features.pipeline import FeaturePipeline
from repro.features.tuple_level import CooccurrenceFeaturizer, TupleEmbeddingFeaturizer
from repro.embeddings.fasttext import FastTextEmbedding
from repro.text.ngrams import NGramModel, SymbolicNGramModel

FORMAT_VERSION = 1


class ArrayStore:
    """Collects numpy arrays during encoding; resolves references on decode."""

    def __init__(self, arrays: dict[str, np.ndarray] | None = None):
        self._arrays: dict[str, np.ndarray] = dict(arrays or {})
        self._counter = 0

    def put(self, array: np.ndarray) -> dict:
        key = f"a{self._counter}"
        self._counter += 1
        self._arrays[key] = np.asarray(array)
        return {"__array__": key}

    def get(self, ref: dict) -> np.ndarray:
        return self._arrays[ref["__array__"]]

    @property
    def arrays(self) -> dict[str, np.ndarray]:
        return dict(self._arrays)


# --------------------------------------------------------------------- #
# Constraints
# --------------------------------------------------------------------- #


def encode_constraint(dc: DenialConstraint) -> dict:
    return {
        "name": dc.name,
        "predicates": [
            {
                "left": p.left_attr,
                "op": p.op,
                "right": p.right_attr,
                "const": p.constant,
            }
            for p in dc.predicates
        ],
    }


def decode_constraint(state: dict) -> DenialConstraint:
    predicates = tuple(
        Predicate(p["left"], p["op"], right_attr=p["right"], constant=p["const"])
        for p in state["predicates"]
    )
    return DenialConstraint(predicates, name=state["name"])


# --------------------------------------------------------------------- #
# Policies
# --------------------------------------------------------------------- #


def encode_policy(policy: Policy) -> dict:
    entries = [
        {"src": t.src, "dst": t.dst, "p": policy.probability(t)}
        for t in policy.transformations
    ]
    kind = "uniform" if isinstance(policy, UniformPolicy) else "learned"
    return {"kind": kind, "entries": entries}


def decode_policy(state: dict) -> Policy:
    transformations = [Transformation(e["src"], e["dst"]) for e in state["entries"]]
    if state["kind"] == "uniform":
        return UniformPolicy(transformations)
    distribution = {
        Transformation(e["src"], e["dst"]): e["p"] for e in state["entries"]
    }
    return Policy(distribution)


# --------------------------------------------------------------------- #
# Featurizers
# --------------------------------------------------------------------- #


def _encode_embedding(model: FastTextEmbedding, store: ArrayStore) -> dict:
    state = model.to_state()
    state["in_table"] = store.put(state["in_table"])
    state["out_table"] = store.put(state["out_table"])
    return state


def _decode_embedding(state: dict, store: ArrayStore) -> FastTextEmbedding:
    state = dict(state)
    state["in_table"] = store.get(state["in_table"])
    state["out_table"] = store.get(state["out_table"])
    return FastTextEmbedding.from_state(state)


def _pairs(d: dict) -> list:
    """dict with string keys -> JSON-safe [key, value] pairs list."""
    return [[k, v] for k, v in d.items()]


def _encode_featurizer(f: Featurizer, store: ArrayStore) -> dict:
    """Dispatch on featurizer type; returns a JSON-safe state dict."""
    if isinstance(f, (CharEmbeddingFeaturizer, WordEmbeddingFeaturizer)):
        return {
            "type": type(f).__name__,
            "dim": f._dim,
            "epochs": f._epochs,
            "models": {a: _encode_embedding(m, store) for a, m in f._models.items()},
        }
    if isinstance(f, (FormatNGramFeaturizer, SymbolicNGramFeaturizer)):
        return {
            "type": type(f).__name__,
            "least_k": f._least_k,
            "models": {a: m.to_state() for a, m in f._models.items()},
        }
    if isinstance(f, EmpiricalDistributionFeaturizer):
        return {
            "type": "EmpiricalDistributionFeaturizer",
            "counts": {a: _pairs(c) for a, c in f._counts.items()},
            "totals": dict(f._totals),
        }
    if isinstance(f, ColumnIdFeaturizer):
        return {"type": "ColumnIdFeaturizer", "index": dict(f._index)}
    if isinstance(f, CooccurrenceFeaturizer):
        joint = [
            [list(key), {attr: _pairs(counts) for attr, counts in buckets.items()}]
            for key, buckets in f._joint.items()
        ]
        return {
            "type": "CooccurrenceFeaturizer",
            "attributes": list(f._attributes),
            "value_counts": [[list(k), v] for k, v in f._value_counts.items()],
            "joint": joint,
        }
    if isinstance(f, TupleEmbeddingFeaturizer):
        return {
            "type": "TupleEmbeddingFeaturizer",
            "dim": f._dim,
            "epochs": f._epochs,
            "model": _encode_embedding(f._model, store),
        }
    if isinstance(f, NeighborhoodFeaturizer):
        return {
            "type": "NeighborhoodFeaturizer",
            "dim": f._dim,
            "epochs": f._epochs,
            "model": _encode_embedding(f._model, store),
        }
    if isinstance(f, ValueLengthFeaturizer):
        return {
            "type": "ValueLengthFeaturizer",
            "stats": {a: list(s) for a, s in f._stats.items()},
        }
    if isinstance(f, TokenFrequencyFeaturizer):
        return {
            "type": "TokenFrequencyFeaturizer",
            "alpha": f.alpha,
            "counts": {a: _pairs(c) for a, c in f._counts.items()},
            "totals": dict(f._totals),
        }
    if isinstance(f, ConstraintViolationFeaturizer):
        indexes = []
        for index in f._fd_indexes:
            if index is None:
                indexes.append(None)
            else:
                indexes.append(
                    {
                        "join_attrs": index["join_attrs"],
                        "residual_attr": index["residual_attr"],
                        "groups": [
                            [list(k), _pairs(v)] for k, v in index["groups"].items()
                        ],
                    }
                )
        return {
            "type": "ConstraintViolationFeaturizer",
            "constraints": [encode_constraint(c) for c in f._constraints],
            "tuple_counts": store.put(f._tuple_counts),
            "fd_indexes": indexes,
        }
    raise TypeError(f"no persistence handler for {type(f).__name__}")


def _decode_featurizer(state: dict, store: ArrayStore) -> Featurizer:
    kind = state["type"]
    if kind in ("CharEmbeddingFeaturizer", "WordEmbeddingFeaturizer"):
        cls = CharEmbeddingFeaturizer if kind.startswith("Char") else WordEmbeddingFeaturizer
        f = cls(dim=state["dim"], epochs=state["epochs"])
        f._models = {a: _decode_embedding(m, store) for a, m in state["models"].items()}
        return f
    if kind in ("FormatNGramFeaturizer", "SymbolicNGramFeaturizer"):
        cls = FormatNGramFeaturizer if kind.startswith("Format") else SymbolicNGramFeaturizer
        model_cls = NGramModel if kind.startswith("Format") else SymbolicNGramModel
        f = cls(least_k=state["least_k"])
        f._models = {a: model_cls.from_state(m) for a, m in state["models"].items()}
        return f
    if kind == "EmpiricalDistributionFeaturizer":
        f = EmpiricalDistributionFeaturizer()
        f._counts = {a: {k: int(v) for k, v in pairs} for a, pairs in state["counts"].items()}
        f._totals = {a: int(t) for a, t in state["totals"].items()}
        return f
    if kind == "ColumnIdFeaturizer":
        f = ColumnIdFeaturizer()
        f._index = {a: int(i) for a, i in state["index"].items()}
        return f
    if kind == "CooccurrenceFeaturizer":
        f = CooccurrenceFeaturizer()
        f._attributes = tuple(state["attributes"])
        f._value_counts = {tuple(k): int(v) for k, v in state["value_counts"]}
        f._joint = {
            tuple(key): {
                attr: {k: int(v) for k, v in pairs} for attr, pairs in buckets.items()
            }
            for key, buckets in state["joint"]
        }
        return f
    if kind == "TupleEmbeddingFeaturizer":
        f = TupleEmbeddingFeaturizer(dim=state["dim"], epochs=state["epochs"])
        f._model = _decode_embedding(state["model"], store)
        return f
    if kind == "NeighborhoodFeaturizer":
        f = NeighborhoodFeaturizer(dim=state["dim"], epochs=state["epochs"])
        f._model = _decode_embedding(state["model"], store)
        f._cache = {}
        return f
    if kind == "ValueLengthFeaturizer":
        f = ValueLengthFeaturizer()
        f._stats = {a: (float(m), float(s)) for a, (m, s) in state["stats"].items()}
        return f
    if kind == "TokenFrequencyFeaturizer":
        f = TokenFrequencyFeaturizer(alpha=state["alpha"])
        f._counts = {a: {k: int(v) for k, v in pairs} for a, pairs in state["counts"].items()}
        f._totals = {a: int(t) for a, t in state["totals"].items()}
        return f
    if kind == "ConstraintViolationFeaturizer":
        constraints = [decode_constraint(c) for c in state["constraints"]]
        f = ConstraintViolationFeaturizer(constraints)
        f._tuple_counts = store.get(state["tuple_counts"])
        indexes = []
        for index in state["fd_indexes"]:
            if index is None:
                indexes.append(None)
            else:
                indexes.append(
                    {
                        "join_attrs": list(index["join_attrs"]),
                        "residual_attr": index["residual_attr"],
                        "groups": {
                            tuple(k): {vk: int(vv) for vk, vv in pairs}
                            for k, pairs in index["groups"]
                        },
                    }
                )
        f._fd_indexes = indexes
        return f
    raise TypeError(f"unknown featurizer type {kind!r}")


def _encode_pipeline(pipeline: FeaturePipeline, store: ArrayStore) -> dict:
    return {
        "featurizers": [_encode_featurizer(f, store) for f in pipeline.featurizers],
        "numeric_mean": store.put(pipeline._numeric_mean),
        "numeric_std": store.put(pipeline._numeric_std),
    }


def _decode_pipeline(state: dict, store: ArrayStore) -> FeaturePipeline:
    pipeline = FeaturePipeline(
        [_decode_featurizer(f, store) for f in state["featurizers"]]
    )
    pipeline._numeric_mean = store.get(state["numeric_mean"])
    pipeline._numeric_std = store.get(state["numeric_std"])
    pipeline._fitted = True
    return pipeline


# --------------------------------------------------------------------- #
# Detector
# --------------------------------------------------------------------- #


#: Config fields that are live objects, not serialisable settings.
_UNSAVED_CONFIG_FIELDS = ("policy_override", "artifact_store")


def _encode_config(config: DetectorConfig) -> dict:
    state = {
        field: getattr(config, field)
        for field in config.__dataclass_fields__
        if field not in _UNSAVED_CONFIG_FIELDS
    }
    state["exclude_models"] = list(state["exclude_models"])
    if state.get("artifact_dir") is not None:
        # Path objects are valid config values but not JSON.
        state["artifact_dir"] = str(state["artifact_dir"])
    return state


def _decode_config(state: dict) -> DetectorConfig:
    state = dict(state)
    state["exclude_models"] = tuple(state["exclude_models"])
    return DetectorConfig(**state)


def save_detector(detector: HoloDetect, path: str | Path) -> None:
    """Serialise a fitted detector to ``path`` (a directory, created if
    needed)."""
    if detector.model is None or detector.pipeline is None:
        raise ValueError("cannot save an unfitted detector")
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    store = ArrayStore()
    state = {
        "format_version": FORMAT_VERSION,
        "config": _encode_config(detector.config),
        "pipeline": _encode_pipeline(detector.pipeline, store),
        "model": {
            "numeric_dim": detector.model.numeric_dim,
            "branch_dims": detector.pipeline.branch_dims,
            "hidden_dim": detector.config.hidden_dim,
            "dropout": detector.config.dropout,
            "arrays": [store.put(a) for a in detector.model.state_arrays()],
        },
        "scaler": {"a": detector.scaler.a, "b": detector.scaler.b},
        "policy": encode_policy(detector.policy) if detector.policy else None,
        "augmented_count": detector.augmented_count,
        # The content keys of the fitted artifacts this detector was built
        # from (see repro.artifacts) — provenance linking a saved model to
        # the store entries that can rebuild its representation models.
        "artifact_keys": dict(detector.artifact_keys),
        "train_cells": [[c.row, c.attr] for c in sorted(
            detector._train_cells, key=lambda c: (c.row, c.attr)
        )],
        "spec": detector.spec.to_dict() if detector.spec is not None else None,
    }
    (path / "state.json").write_text(json.dumps(state), encoding="utf-8")
    np.savez_compressed(path / "arrays.npz", **store.arrays)
    if detector.spec is not None:
        # Human-readable sidecar: the declarative composition + fingerprint.
        (path / "spec.json").write_text(
            json.dumps(
                {
                    "fingerprint": detector.spec.fingerprint(),
                    "spec": detector.spec.to_dict(),
                },
                indent=2,
                sort_keys=True,
            )
            + "\n",
            encoding="utf-8",
        )


def detector_fingerprint(path: str | Path) -> str | None:
    """The spec fingerprint of one saved detector directory, or ``None``.

    Reads the ``spec.json`` sidecar when present (cheap — no arrays touched);
    falls back to recomputing from the spec embedded in ``state.json``.
    Spec-less saves (imperative construction) have no fingerprint.
    """
    path = Path(path)
    sidecar = path / "spec.json"
    if sidecar.exists():
        try:
            payload = json.loads(sidecar.read_text(encoding="utf-8"))
            fingerprint = payload.get("fingerprint")
            if isinstance(fingerprint, str) and fingerprint:
                return fingerprint
        except (json.JSONDecodeError, OSError):
            pass  # fall through to state.json
    state_path = path / "state.json"
    if not state_path.exists():
        return None
    try:
        state = json.loads(state_path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, OSError):
        return None
    spec_state = state.get("spec")
    if spec_state is None:
        return None
    from repro.spec import DetectorSpec, SpecError

    try:
        return DetectorSpec.from_dict(spec_state).fingerprint()
    except SpecError:
        return None


def detector_index(root: str | Path) -> dict[str, Path]:
    """Scan ``root`` for saved detectors; map spec fingerprint → directory.

    A *model root* is a directory whose immediate children are
    :func:`save_detector` outputs (any directory containing ``state.json``
    is considered; unreadable or spec-less saves are skipped rather than
    failing the scan).  When two saves carry the same fingerprint the
    lexically last directory wins, deterministically.
    """
    root = Path(root)
    index: dict[str, Path] = {}
    if not root.is_dir():
        return index
    for entry in sorted(root.iterdir()):
        if not entry.is_dir() or not (entry / "state.json").exists():
            continue
        fingerprint = detector_fingerprint(entry)
        if fingerprint is not None:
            index[fingerprint] = entry
    return index


def load_detector_by_fingerprint(
    root: str | Path, fingerprint: str, dataset: Dataset
) -> HoloDetect:
    """Load the saved detector whose spec fingerprint matches ``fingerprint``.

    ``fingerprint`` may be a unique prefix (>= 6 chars, git style); raises
    :class:`~repro.spec.SpecError` when it is unknown or ambiguous within
    ``root``.
    """
    from repro.spec import resolve_fingerprint

    index = detector_index(root)
    return load_detector(index[resolve_fingerprint(fingerprint, index)], dataset)


def load_detector(path: str | Path, dataset: Dataset) -> HoloDetect:
    """Load a detector saved by :func:`save_detector` and re-attach it to
    ``dataset`` (the same relation it was fitted on)."""
    path = Path(path)
    state = json.loads((path / "state.json").read_text(encoding="utf-8"))
    if state["format_version"] != FORMAT_VERSION:
        raise ValueError(f"unsupported format version {state['format_version']}")
    with np.load(path / "arrays.npz") as npz:
        store = ArrayStore({k: npz[k] for k in npz.files})

    detector = HoloDetect(_decode_config(state["config"]))
    if state.get("spec") is not None:
        from repro.spec import DetectorSpec

        detector.spec = DetectorSpec.from_dict(state["spec"])
    detector.pipeline = _decode_pipeline(state["pipeline"], store)
    # Re-attach the block cache the config asked for (caches are never
    # persisted — they rebuild from hits on the first prediction pass).
    detector.pipeline.cache = detector.cache
    if detector._artifact_store is not None:
        # Re-point the decoded pipeline at the config's artifact store too,
        # so refresh-time refits consult it (store contents live on disk;
        # only the attachment needs rebuilding).
        detector.use_artifacts(detector._artifact_store)
    model_state = state["model"]
    detector.model = JointModel(
        numeric_dim=model_state["numeric_dim"],
        branch_dims=model_state["branch_dims"],
        hidden_dim=model_state["hidden_dim"],
        dropout=model_state["dropout"],
        rng=0,
    )
    detector.model.load_state_arrays([store.get(ref) for ref in model_state["arrays"]])
    detector.model.eval()
    detector.scaler = PlattScaler()
    detector.scaler.a = state["scaler"]["a"]
    detector.scaler.b = state["scaler"]["b"]
    detector.scaler._fitted = True
    detector.policy = decode_policy(state["policy"]) if state["policy"] else None
    detector.augmented_count = state["augmented_count"]
    # Saves from before the artifact store load with no keys.
    detector.artifact_keys = dict(state.get("artifact_keys", {}))
    detector._train_cells = {Cell(int(r), a) for r, a in state["train_cells"]}
    detector._dataset = dataset
    return detector
