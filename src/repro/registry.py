"""Unified component registry: one name → component map for the whole system.

HoloDetect is a *composition* — a representation model Q, a learned noisy
channel, and a classifier (§3.3) — and every part of that composition is
swappable.  Before this module each family kept its own private wiring:
``baselines/adapters.py`` had a method map, ``errors/profiles.py`` a profile
map, ``data/registry.py`` a generator map, and the feature pipeline a
hard-coded constructor list.  The registry replaces all of them with one
namespace of *kinds*:

========== ==========================================================
kind        component
========== ==========================================================
featurizer  representation models (``repro.features``)
method      evaluation methods (HoloDetect + the §6.1 baselines)
error_profile  named noise channels (``repro.errors.profiles``)
dataset     benchmark bundle generators (``repro.data``)
policy      augmentation-policy overrides (noisy-channel ablations)
calibrator  probability calibrators (``repro.core.calibration``)
backend     compute backends for the training core (``repro.nn.backends``)
========== ==========================================================

Built-ins register themselves at import time with the :meth:`Registry.register`
decorator, optionally carrying a *typed config dataclass* — parameter
mappings from spec files are validated against the dataclass's fields, so a
typo fails loudly with the list of valid keys instead of being swallowed.

User-defined components need **zero repo edits**: any key containing a
colon is treated as a ``"module:attr"`` reference.  The attribute is
imported and invoked as ``attr(**params)`` (classes and factory functions
both work); a non-callable attribute is used as-is and must take no
parameters.  Every consumer that resolves through the registry — detector
specs, sweep matrices, the CLI — therefore accepts external components out
of the box.

The module-level :data:`REGISTRY` is the process-wide instance; the
convenience functions :func:`register`, :func:`create`, :func:`names`, and
:func:`describe` operate on it.
"""

from __future__ import annotations

import dataclasses
import importlib
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping

#: Modules that register built-in components on import.  Imported lazily on
#: first resolution so the registry itself has no repro dependencies (which
#: would be circular: those modules import this one to register).
_BUILTIN_MODULES = (
    "repro.features.pipeline",
    "repro.features.extra",
    "repro.errors.profiles",
    "repro.baselines.adapters",
    "repro.data.registry",
    "repro.core.calibration",
    "repro.augmentation.policy",
    "repro.baselines.augmentation_variants",
    "repro.nn.backends",
)


class ComponentError(ValueError):
    """A component reference could not be resolved or built."""


@dataclass(frozen=True)
class ComponentEntry:
    """One registered component: a factory plus its typed config (if any).

    ``config`` is a dataclass type whose fields define the valid parameter
    keys; ``None`` means the factory validates its own parameter mapping.
    ``builtin`` is False for ad-hoc ``module:attr`` resolutions, whose
    factories receive only their params (never injected context).
    """

    kind: str
    key: str
    factory: Callable[..., Any]
    config: type | None = None
    description: str = ""
    builtin: bool = True


def make_config(config_cls: type, params: Mapping[str, object], where: str):
    """Instantiate a config dataclass from a parameter mapping.

    Unknown keys raise a :class:`ComponentError` naming the valid fields —
    the actionable-error contract every spec-file consumer relies on.
    Dataclass ``__post_init__`` validation errors are re-raised with the
    component's name attached.
    """
    field_names = {f.name for f in dataclasses.fields(config_cls) if f.init}
    unknown = set(params) - field_names
    if unknown:
        raise ComponentError(
            f"{where}: unknown parameters {sorted(unknown)}; "
            f"valid keys: {sorted(field_names)}"
        )
    try:
        return config_cls(**params)
    except (TypeError, ValueError) as exc:
        raise ComponentError(f"{where}: {exc}") from exc


def _import_reference(key: str) -> Any:
    """Resolve a ``module:attr`` reference to the named attribute."""
    module_name, _, attr_path = key.partition(":")
    if not module_name or not attr_path:
        raise ComponentError(
            f"malformed reference {key!r}; expected 'module:attr'"
        )
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise ComponentError(f"cannot import module {module_name!r}: {exc}") from exc
    target = module
    for part in attr_path.split("."):
        try:
            target = getattr(target, part)
        except AttributeError:
            raise ComponentError(
                f"module {module_name!r} has no attribute {attr_path!r}"
            ) from None
    return target


class Registry:
    """Kind-namespaced name → :class:`ComponentEntry` map."""

    def __init__(self) -> None:
        self._entries: dict[tuple[str, str], ComponentEntry] = {}
        self._builtins_loaded = False

    # -- registration --------------------------------------------------- #

    def register(
        self,
        kind: str,
        key: str,
        *,
        config: type | None = None,
        description: str = "",
    ) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
        """Decorator: register ``factory`` under ``(kind, key)``.

        ``config`` (optional) is a dataclass type; when present the factory
        is called with a validated instance instead of a raw mapping.
        """
        if ":" in key:
            raise ComponentError(
                f"registered keys may not contain ':' (got {key!r}); "
                "colons are reserved for module:attr references"
            )

        def decorator(factory: Callable[..., Any]) -> Callable[..., Any]:
            self.add(kind, key, factory, config=config, description=description)
            return factory

        return decorator

    def add(
        self,
        kind: str,
        key: str,
        factory: Callable[..., Any],
        *,
        config: type | None = None,
        description: str = "",
        replace: bool = False,
    ) -> ComponentEntry:
        """Imperative registration (the decorator's workhorse).

        ``replace=True`` overwrites an existing entry — reserved for the
        deprecated write-through name maps, whose legacy contract allowed
        monkeypatching presets in place.
        """
        slot = (kind, key)
        if slot in self._entries and not replace:
            raise ComponentError(f"duplicate registration for {kind} {key!r}")
        entry = ComponentEntry(
            kind=kind,
            key=key,
            factory=factory,
            config=config,
            description=description,
        )
        self._entries[slot] = entry
        return entry

    # -- resolution ----------------------------------------------------- #

    def _ensure_builtins(self) -> None:
        if self._builtins_loaded:
            return
        # Mark first: the builtin modules import this module, and several
        # import each other, so re-entrant resolution must not recurse.
        self._builtins_loaded = True
        for module in _BUILTIN_MODULES:
            importlib.import_module(module)

    def entry(self, kind: str, key: str) -> ComponentEntry:
        """The entry for ``(kind, key)``; resolves ``module:attr`` references.

        Unknown built-in keys raise a :class:`ComponentError` listing the
        registered names of the kind.
        """
        self._ensure_builtins()
        if ":" in key:
            target = _import_reference(key)
            if not callable(target):
                # Pre-built component object: usable as-is, no parameters.
                def factory(params: Mapping[str, object]) -> Any:
                    if params:
                        raise ComponentError(
                            f"{kind} {key!r} is not callable and takes no "
                            f"parameters, got {sorted(params)}"
                        )
                    return target

                return ComponentEntry(
                    kind=kind, key=key, factory=factory, builtin=False
                )
            return ComponentEntry(
                kind=kind,
                key=key,
                factory=lambda params: target(**params),
                builtin=False,
            )
        try:
            return self._entries[(kind, key)]
        except KeyError:
            known = self.names(kind)
            hint = (
                f"choose from {known} or use a 'module:attr' reference"
                if known
                else f"no components of kind {kind!r} are registered"
            )
            raise ComponentError(f"unknown {kind} {key!r}; {hint}") from None

    def create(
        self,
        kind: str,
        key: str,
        params: Mapping[str, object] | None = None,
        **context: object,
    ) -> Any:
        """Build the component ``(kind, key)`` from a parameter mapping.

        ``context`` carries consumer-supplied injections (e.g. the feature
        pipeline's shared RNG and constraints); it is forwarded to built-in
        factories only — external ``module:attr`` components receive just
        their own parameters.
        """
        entry = self.entry(kind, key)
        params = dict(params or {})
        where = f"{kind} {key!r}"
        if not entry.builtin:
            try:
                return entry.factory(params)
            except ComponentError:
                raise
            except (TypeError, ValueError) as exc:
                raise ComponentError(f"{where}: {exc}") from exc
        argument = (
            make_config(entry.config, params, where)
            if entry.config is not None
            else params
        )
        try:
            return entry.factory(argument, **context)
        except ComponentError:
            raise
        except (TypeError, ValueError) as exc:
            raise ComponentError(f"{where}: {exc}") from exc

    def names(self, kind: str) -> tuple[str, ...]:
        """Registered built-in keys of ``kind``, in registration order."""
        self._ensure_builtins()
        return tuple(key for k, key in self._entries if k == kind)

    def kinds(self) -> tuple[str, ...]:
        """All kinds with at least one registered component."""
        self._ensure_builtins()
        seen: dict[str, None] = {}
        for kind, _ in self._entries:
            seen.setdefault(kind)
        return tuple(seen)

    def describe(self, kind: str | None = None) -> list[dict[str, str]]:
        """Human/JSON-friendly listing of registered components."""
        self._ensure_builtins()
        rows = []
        for (k, key), entry in self._entries.items():
            if kind is not None and k != kind:
                continue
            rows.append(
                {
                    "kind": k,
                    "key": key,
                    "config": entry.config.__name__ if entry.config else "",
                    "description": entry.description,
                }
            )
        return rows


#: The process-wide registry every consumer resolves through.
REGISTRY = Registry()


def register(
    kind: str, key: str, *, config: type | None = None, description: str = ""
):
    """Register a component on the process-wide :data:`REGISTRY`."""
    return REGISTRY.register(kind, key, config=config, description=description)


def create(
    kind: str, key: str, params: Mapping[str, object] | None = None, **context
):
    """Build a component from the process-wide :data:`REGISTRY`."""
    return REGISTRY.create(kind, key, params, **context)


def names(kind: str) -> tuple[str, ...]:
    """Built-in keys of ``kind`` on the process-wide :data:`REGISTRY`."""
    return REGISTRY.names(kind)


def describe(kind: str | None = None) -> list[dict[str, str]]:
    """Component listing of the process-wide :data:`REGISTRY`."""
    return REGISTRY.describe(kind)


class DeprecatedNameMap(dict):
    """A legacy name→component dict with write-through registration.

    Reads reflect the registry contents at access time; writes — the old
    extension pattern ``PROFILES["mine"] = ...`` — are forwarded to a
    ``writer`` callback that registers the component, so legacy additions
    resolve through every registry-backed consumer instead of being
    silently dropped.
    """

    def __init__(self, data: dict[str, Any], writer: Callable[[str, Any], None]):
        super().__init__(data)
        self._writer = writer

    def __setitem__(self, key: str, value: Any) -> None:
        self._writer(key, value)
        super().__setitem__(key, value)

    def __delitem__(self, key: str) -> None:
        raise ComponentError(
            "deleting from a deprecated name map is unsupported; registry "
            "entries cannot be unregistered"
        )


def deprecated_name_map(
    kind: str,
    resolver: Callable[[str], Any],
    keys: Iterable[str] | None = None,
    writer: Callable[[str, Any], None] | None = None,
) -> dict[str, Any]:
    """Materialise a legacy name→component dict from the registry.

    Backs the deprecated module attributes (``PROFILES``, ``_BUILDERS``,
    ``_GENERATORS``) that predate the registry.  Each read materialises the
    current registry contents; with ``writer``, assignments into the
    returned map register the component (write-through), so the
    pre-registry extension pattern keeps working.
    """
    selected = tuple(keys) if keys is not None else REGISTRY.names(kind)
    data = {key: resolver(key) for key in selected}
    if writer is None:
        return data
    return DeprecatedNameMap(data, writer)
