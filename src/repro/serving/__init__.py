"""Detection-as-a-service: a long-lived, multi-tenant serving layer.

The paper's detector becomes useful at scale when it runs as a service
rather than a one-shot CLI, and every prerequisite already exists in the
codebase: :class:`~repro.spec.DetectorSpec` fingerprints are the routing
and cache keys, :class:`~repro.core.detector.DetectionSession` makes
per-client rescoring O(edit), and the artifact store makes cold detector
loads cheap.  This package wires them into a server:

- :mod:`repro.serving.wire` — the ``repro.serve/v1`` wire codec: JSON plus
  the compact "repro-pack" binary twin, exact for probabilities in both;
- :mod:`repro.serving.registry` — the hot LRU pool of (spec fingerprint →
  loaded detector) over a model-root directory;
- :mod:`repro.serving.batching` — coalescing of concurrent small detect
  requests into single chunked predicts (bit-identical to sequential);
- :mod:`repro.serving.server` — the asyncio HTTP server with per-tenant
  sessions and per-tenant artifact/feature-cache isolation;
- :mod:`repro.serving.client` — the blocking client (``repro client`` CLI,
  tests, and the load benchmark all use it);
- :mod:`repro.serving.reports` — the shared ``repro.detect/v1`` report
  builder (one source for the CLI's ``--json`` and the serve responses);
- :mod:`repro.serving.testing` — the deterministic test harness
  (in-process server, fault-injecting transports).

Quickstart::

    repro detect ... --spec detector.toml --save-model models/hospital
    repro serve --models models --port 8765
    repro client detect --fingerprint <prefix> --input data.csv --tenant acme
    repro client rescore --tenant acme --edits edits.csv
"""

from repro.serving.batching import BatcherStats, ScoreBatcher
from repro.serving.client import ServeClient, ServeClientError, probabilities_of
from repro.serving.registry import DetectorRegistry, RegistryError, RegistryStats
from repro.serving.reports import (
    DETECT_SCHEMA,
    build_detect_report,
    count_flagged,
    ranked_predictions,
    write_triage_csv,
)
from repro.serving.server import DetectionServer, ServeConfig, Tenant
from repro.serving.wire import (
    BINARY_CONTENT_TYPE,
    JSON_CONTENT_TYPE,
    SERVE_SCHEMA,
    WireError,
    decode_payload,
    encode_payload,
    pack,
    unpack,
)

__all__ = [
    "SERVE_SCHEMA",
    "DETECT_SCHEMA",
    "JSON_CONTENT_TYPE",
    "BINARY_CONTENT_TYPE",
    "DetectionServer",
    "ServeConfig",
    "Tenant",
    "DetectorRegistry",
    "RegistryError",
    "RegistryStats",
    "ScoreBatcher",
    "BatcherStats",
    "ServeClient",
    "ServeClientError",
    "probabilities_of",
    "build_detect_report",
    "write_triage_csv",
    "ranked_predictions",
    "count_flagged",
    "WireError",
    "pack",
    "unpack",
    "encode_payload",
    "decode_payload",
]
