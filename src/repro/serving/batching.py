"""Request coalescing: merge concurrent small scoring calls into one predict.

Interactive clients send *small* requests — score these 40 cells, re-check
that column — and under concurrency the naive path runs one padded
model-forward per request.  The :class:`ScoreBatcher` instead collects the
scoring calls that arrive within one short window **per batch key** (one
tenant session, or one hot detector), concatenates their cell lists, runs a
single chunked ``_score_probabilities`` pass, and slices the result back to
each waiter.

Correctness rests on a documented detector invariant: per-cell outputs are
independent of chunk composition (prediction chunks are forwarded at a
fixed padded shape precisely so BLAS kernel selection cannot couple cells
to their batch-mates — see ``HoloDetect._score_probabilities``).  Merging
N requests into one pass is therefore **bit-identical** to running them
sequentially, which the concurrency suite and ``bench_serving.py`` assert.

The batcher is asyncio-native and single-loop: all bookkeeping runs on the
event loop, so no locks are needed.  A scoring failure is delivered to every
waiter of that batch as the original exception — one poisoned request never
wedges its batch-mates' futures.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np


@dataclass
class BatcherStats:
    """Coalescing accounting: how much concurrency actually merged."""

    requests: int = 0
    batches: int = 0
    coalesced_requests: int = 0
    max_batch_cells: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "coalesced_requests": self.coalesced_requests,
            "max_batch_cells": self.max_batch_cells,
        }


@dataclass
class _Pending:
    cells: list
    future: "asyncio.Future[np.ndarray]"


class ScoreBatcher:
    """Per-key coalescing front of a synchronous batch scoring function.

    ``window`` is the collection delay in seconds: the first request for a
    key opens the window, every request landing inside it joins the batch.
    ``max_cells`` bounds one merged pass; a batch flushes early when the
    next request would push it past the bound.  ``window=0`` still
    coalesces whatever arrives in the same event-loop tick (the flush is
    scheduled, not inline), while keeping added latency at one tick.
    """

    def __init__(self, *, window: float = 0.002, max_cells: int = 4096):
        if window < 0:
            raise ValueError(f"window must be >= 0, got {window}")
        if max_cells < 1:
            raise ValueError(f"max_cells must be >= 1, got {max_cells}")
        self.window = window
        self.max_cells = max_cells
        self.stats = BatcherStats()
        self._pending: dict[object, list[_Pending]] = {}
        self._flushers: dict[object, asyncio.Task] = {}

    async def score(
        self,
        key: object,
        score_fn: Callable[[list], np.ndarray],
        cells: Sequence,
    ) -> np.ndarray:
        """Queue ``cells`` under ``key``; returns their probabilities.

        All queued calls sharing ``key`` before the window closes are scored
        by a single ``score_fn(merged_cells)`` invocation.  ``score_fn``
        must be position-stable: output[i] corresponds to merged_cells[i].
        """
        self.stats.requests += 1
        if not cells:
            return np.zeros(0)
        loop = asyncio.get_running_loop()
        queue = self._pending.setdefault(key, [])
        queued_cells = sum(len(p.cells) for p in queue)
        if queue and queued_cells + len(cells) > self.max_cells:
            # Overflow: flush what is queued now; this request starts the
            # next batch so no merged pass exceeds the bound.
            self._flush(key, score_fn)
            queue = self._pending.setdefault(key, [])
        entry = _Pending(list(cells), loop.create_future())
        queue.append(entry)
        if key not in self._flushers:
            self._flushers[key] = loop.create_task(self._flush_later(key, score_fn))
        return await entry.future

    async def _flush_later(
        self, key: object, score_fn: Callable[[list], np.ndarray]
    ) -> None:
        if self.window > 0:
            await asyncio.sleep(self.window)
        else:
            # One explicit tick: lets same-tick submitters join the batch.
            await asyncio.sleep(0)
        self._flush(key, score_fn)

    def _flush(self, key: object, score_fn: Callable[[list], np.ndarray]) -> None:
        queue = self._pending.pop(key, [])
        flusher = self._flushers.pop(key, None)
        if flusher is not None and not flusher.done():
            current = None
            try:
                current = asyncio.current_task()
            except RuntimeError:  # pragma: no cover - no running loop
                pass
            if flusher is not current:
                flusher.cancel()
        waiters = [p for p in queue if not p.future.cancelled()]
        if not waiters:
            return
        merged: list = []
        for pending in waiters:
            merged.extend(pending.cells)
        self.stats.batches += 1
        self.stats.coalesced_requests += len(waiters) - 1
        self.stats.max_batch_cells = max(self.stats.max_batch_cells, len(merged))
        try:
            probabilities = np.asarray(score_fn(merged))
        except Exception as exc:  # noqa: BLE001 - delivered to every waiter
            for pending in waiters:
                if not pending.future.done():
                    pending.future.set_exception(exc)
            return
        if probabilities.shape[0] != len(merged):
            error = RuntimeError(
                f"score_fn returned {probabilities.shape[0]} probabilities "
                f"for {len(merged)} cells"
            )
            for pending in waiters:
                if not pending.future.done():
                    pending.future.set_exception(error)
            return
        offset = 0
        for pending in waiters:
            size = len(pending.cells)
            if not pending.future.done():
                pending.future.set_result(probabilities[offset : offset + size])
            offset += size

    def flush_key(self, key: object, score_fn: Callable[[list], np.ndarray]) -> None:
        """Synchronously score anything pending under ``key``.

        An ordering barrier for mutations: a rescore handler flushes the
        tenant's pending detect batch *before* applying edits, so every
        request queued before the mutation observes the pre-edit relation —
        the same order a sequential client would see.
        """
        if key in self._pending:
            self._flush(key, score_fn)

    async def drain(self) -> None:
        """Flush everything pending (shutdown path)."""
        for task in list(self._flushers.values()):
            task.cancel()
        pending = list(self._pending)
        for key in pending:
            queue = self._pending.pop(key, [])
            for entry in queue:
                if not entry.future.done():
                    entry.future.cancel()
        self._flushers.clear()
