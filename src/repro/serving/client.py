"""Blocking client for the detection service (stdlib ``http.client``).

The programmatic twin of the wire protocol: one method per route, payload
assembly and content negotiation handled here so callers work with plain
dicts and :class:`~repro.dataset.table.Dataset` objects.  Used by the
``repro client`` CLI subcommand, the concurrency test suite, and
``benchmarks/bench_serving.py`` — all three drive a server exactly the way
an external integration would.

A non-2xx response raises :class:`ServeClientError` carrying the decoded
structured error payload (``.code`` matches the server's error codes).
"""

from __future__ import annotations

import http.client
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.serving.wire import (
    BINARY_CONTENT_TYPE,
    JSON_CONTENT_TYPE,
    SERVE_SCHEMA,
    decode_payload,
    encode_payload,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dataset.table import Cell, Dataset


class ServeClientError(Exception):
    """A structured error answer from the server."""

    def __init__(self, status: int, payload: object):
        self.status = status
        self.payload = payload if isinstance(payload, dict) else {}
        error = self.payload.get("error", {})
        self.code = error.get("code", "unknown") if isinstance(error, dict) else "unknown"
        message = (
            error.get("message", "") if isinstance(error, dict) else str(payload)
        )
        super().__init__(f"HTTP {status} [{self.code}] {message}")


class ServeClient:
    """One server endpoint; connections are per-request (the server closes
    after every response)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        *,
        binary: bool = False,
        timeout: float = 60.0,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.content_type = BINARY_CONTENT_TYPE if binary else JSON_CONTENT_TYPE

    # -- transport -------------------------------------------------------- #

    def request(self, method: str, path: str, payload: dict | None = None) -> dict:
        """One round trip; returns the decoded payload or raises."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = b""
            headers = {"Accept": self.content_type}
            if payload is not None:
                body = encode_payload(payload, self.content_type)
                headers["Content-Type"] = self.content_type
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            decoded = decode_payload(
                raw, response.getheader("Content-Type", JSON_CONTENT_TYPE)
            )
        finally:
            connection.close()
        if response.status != 200:
            raise ServeClientError(response.status, decoded)
        if not isinstance(decoded, dict):
            raise ServeClientError(response.status, {"error": {
                "code": "bad_response", "message": f"non-object payload {decoded!r}"
            }})
        return decoded

    # -- routes ----------------------------------------------------------- #

    def health(self) -> dict:
        return self.request("GET", "/v1/health")

    def registry(self) -> dict:
        return self.request("GET", "/v1/registry")

    def detect(
        self,
        fingerprint: str | None = None,
        *,
        dataset: "Dataset | None" = None,
        columns: Sequence[str] | None = None,
        rows: Sequence[Sequence[str]] | None = None,
        tenant: str | None = None,
        cells: "Sequence[Cell | tuple[int, str]] | None" = None,
        threshold: float | None = None,
        include_cells: bool = True,
    ) -> dict:
        """``POST /v1/detect``.

        Pass ``dataset`` (or ``columns`` + ``rows``) to score a relation —
        with ``tenant`` this also registers the tenant session.  Pass
        ``cells`` alone (with ``tenant``) for a coalescable subset query.
        """
        payload: dict = {"schema": SERVE_SCHEMA}
        if fingerprint is not None:
            payload["fingerprint"] = fingerprint
        if tenant is not None:
            payload["tenant"] = tenant
        if dataset is not None:
            columns = list(dataset.attributes)
            rows = [
                [dataset.column(a)[r] for a in dataset.attributes]
                for r in range(dataset.num_rows)
            ]
        if columns is not None:
            payload["columns"] = list(columns)
            payload["rows"] = [list(row) for row in rows or []]
        if cells is not None:
            payload["cells"] = [
                [c.row, c.attr] if hasattr(c, "attr") else [c[0], c[1]] for c in cells
            ]
        if threshold is not None:
            payload["threshold"] = threshold
        if not include_cells:
            payload["include_cells"] = False
        return self.request("POST", "/v1/detect", payload)

    def rescore(
        self,
        tenant: str,
        edits: "Mapping[Cell, str] | Sequence[dict]",
        *,
        refresh: bool = False,
        threshold: float | None = None,
        include_cells: bool = True,
    ) -> dict:
        """``POST /v1/rescore`` against a tenant's registered session."""
        if isinstance(edits, Mapping):
            wire_edits = [
                {"row": cell.row, "attribute": cell.attr, "value": value}
                for cell, value in edits.items()
            ]
        else:
            wire_edits = [dict(e) for e in edits]
        payload: dict = {
            "schema": SERVE_SCHEMA,
            "tenant": tenant,
            "edits": wire_edits,
            "refresh": refresh,
        }
        if threshold is not None:
            payload["threshold"] = threshold
        if not include_cells:
            payload["include_cells"] = False
        return self.request("POST", "/v1/rescore", payload)

    def evict(
        self, *, fingerprint: str | None = None, tenant: str | None = None
    ) -> dict:
        payload: dict = {"schema": SERVE_SCHEMA}
        if fingerprint is not None:
            payload["fingerprint"] = fingerprint
        if tenant is not None:
            payload["tenant"] = tenant
        return self.request("POST", "/v1/evict", payload)


def probabilities_of(report_or_response: dict) -> dict[tuple[int, str], float]:
    """Flatten a detect/rescore answer to ``{(row, attribute): probability}``.

    Accepts either the full response envelope or its inner report.
    """
    report = report_or_response.get("report", report_or_response)
    cells = report.get("cells", []) if isinstance(report, dict) else []
    return {
        (entry["row"], entry["attribute"]): entry["error_probability"]
        for entry in cells
    }
