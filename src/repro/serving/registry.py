"""Hot detector registry: (spec fingerprint → loaded detector) with LRU.

The serving layer routes every request by the
:meth:`~repro.spec.DetectorSpec.fingerprint` of the detector that should
handle it.  This registry turns a *model root* — a directory of
:func:`~repro.persistence.save_detector` outputs — into an in-memory pool:

- :meth:`DetectorRegistry.acquire` returns the hot instance for a
  fingerprint, loading it from disk on first use (cheap: arrays only — the
  PR-5 artifact store already made representation state a read, not a
  retrain) and evicting the least-recently-used entry beyond ``capacity``.
  Hot instances serve *stateless* detect calls; the event loop runs one
  handler's synchronous attach→predict block at a time, so a shared
  instance is never observed mid-reattach.
- :meth:`DetectorRegistry.checkout` loads a **private** instance for a
  tenant session.  A :class:`~repro.core.detector.DetectionSession` owns its
  dataset and patches probabilities in place; sharing one instance across
  tenants would let one tenant's repairs poison another's scores.  Checked
  out instances live with the tenant, not in the LRU.

A directory that fails to load (corrupt ``state.json``, missing arrays,
version mismatch) raises :class:`RegistryError` with ``code =
"corrupt_model"`` and is *not* cached: the registry never holds a poisoned
entry, and a later request retries the load from disk — so repairing the
directory (or re-saving the model) heals the server without a restart.

**Degradation.**  Transient disk faults during a load retry through a
:class:`~repro.faults.retry.RetryPolicy` at the ``serve.load`` fault
point.  Repeated load failures for one fingerprint trip a per-fingerprint
:class:`~repro.faults.breaker.CircuitBreaker`: further requests fail fast
with ``code = "circuit_open"`` (the server maps it to a 503 with
``Retry-After``) instead of re-paying the full load cost, and after the
cooldown a single probe request re-attempts the load — success closes the
circuit, so a repaired directory heals the server without a restart.
"""

from __future__ import annotations

import json
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.faults.breaker import BreakerOpen, CircuitBreaker
from repro.faults.inject import trip
from repro.faults.retry import RetryPolicy, resolve_policy
from repro.persistence import detector_index, load_detector
from repro.spec import SpecError, resolve_fingerprint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.detector import HoloDetect
    from repro.dataset.table import Dataset


class RegistryError(Exception):
    """A fingerprint cannot be served.

    ``code`` is a stable machine-readable discriminator used by the wire
    protocol: ``unknown_fingerprint``, ``ambiguous_fingerprint``,
    ``corrupt_model``, or ``circuit_open`` (which also carries
    ``retry_after`` — seconds until the breaker admits a probe).
    """

    def __init__(self, code: str, message: str, retry_after: float | None = None):
        super().__init__(message)
        self.code = code
        self.retry_after = retry_after


@dataclass
class RegistryStats:
    """Accounting for one :class:`DetectorRegistry`."""

    hits: int = 0
    loads: int = 0
    evictions: int = 0
    load_failures: int = 0
    checkouts: int = 0
    fast_failures: int = 0  # requests rejected by an open circuit

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "loads": self.loads,
            "evictions": self.evictions,
            "load_failures": self.load_failures,
            "checkouts": self.checkouts,
            "fast_failures": self.fast_failures,
        }


@dataclass
class DetectorRegistry:
    """LRU pool of loaded detectors keyed by spec fingerprint."""

    model_root: Path
    capacity: int = 8
    stats: RegistryStats = field(default_factory=RegistryStats)
    retry_policy: RetryPolicy | None = None
    breaker_threshold: int = 3
    breaker_cooldown: float = 30.0
    clock: Callable[[], float] = time.monotonic

    def __post_init__(self) -> None:
        self.model_root = Path(self.model_root)
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")
        self._hot: "OrderedDict[str, HoloDetect]" = OrderedDict()
        self._index: dict[str, Path] = {}
        self._breakers: dict[str, CircuitBreaker] = {}
        self.refresh_index()

    def _breaker(self, fingerprint: str) -> CircuitBreaker:
        breaker = self._breakers.get(fingerprint)
        if breaker is None:
            breaker = self._breakers[fingerprint] = CircuitBreaker(
                f"load:{fingerprint[:16]}",
                failure_threshold=self.breaker_threshold,
                cooldown=self.breaker_cooldown,
                clock=self.clock,
            )
        return breaker

    def breaker_states(self) -> dict[str, dict[str, object]]:
        """Breakers whose circuit is open or half-open, keyed by fingerprint
        — the health endpoint's raw material.  A closed breaker still
        accumulating failures is not degraded: loads are still attempted.
        """
        return {
            fp: breaker.as_dict()
            for fp, breaker in self._breakers.items()
            if breaker.state != CircuitBreaker.CLOSED
        }

    @property
    def retry_policy_resolved(self) -> RetryPolicy:
        """The policy loads retry through (ambient default if unset)."""
        return resolve_policy(self.retry_policy)

    # -- the on-disk index ------------------------------------------------ #

    def refresh_index(self) -> dict[str, Path]:
        """Rescan the model root (models may be saved while serving)."""
        self._index = detector_index(self.model_root)
        return dict(self._index)

    @property
    def fingerprints(self) -> list[str]:
        """Every servable fingerprint, sorted."""
        return sorted(self._index)

    @property
    def hot_fingerprints(self) -> list[str]:
        """Currently loaded fingerprints, least recently used first."""
        return list(self._hot)

    def resolve(self, query: str) -> str:
        """Expand a full-or-prefix fingerprint to one known fingerprint."""
        try:
            return resolve_fingerprint(query, self._index)
        except SpecError:
            # The model may have been saved after the last scan.
            self.refresh_index()
        try:
            return resolve_fingerprint(query, self._index)
        except SpecError as exc:
            code = (
                "ambiguous_fingerprint"
                if "ambiguous" in str(exc)
                else "unknown_fingerprint"
            )
            raise RegistryError(code, str(exc)) from exc

    def path_of(self, fingerprint: str) -> Path:
        """The saved-detector directory of one resolved fingerprint."""
        return self._index[self.resolve(fingerprint)]

    # -- loading ---------------------------------------------------------- #

    def _load(self, fingerprint: str, dataset: "Dataset") -> "HoloDetect":
        path = self._index[fingerprint]
        breaker = self._breaker(fingerprint)
        try:
            breaker.before_call()
        except BreakerOpen as exc:
            self.stats.fast_failures += 1
            raise RegistryError(
                "circuit_open", str(exc), retry_after=exc.retry_after
            ) from exc

        def load() -> "HoloDetect":
            trip("serve.load")
            return load_detector(path, dataset)

        try:
            # Transient disk faults retry inside this call; what escapes
            # is either fatal, exhausted (RetryExhausted is an OSError),
            # or genuinely corrupt state.
            detector = self.retry_policy_resolved.call(
                load, point="serve.load", op="read"
            )
        except (
            json.JSONDecodeError,
            KeyError,
            ValueError,
            TypeError,
            OSError,
        ) as exc:
            self.stats.load_failures += 1
            breaker.record_failure(exc)
            raise RegistryError(
                "corrupt_model",
                f"saved detector at {path} failed to load: "
                f"{type(exc).__name__}: {exc}",
            ) from exc
        breaker.record_success()
        # Served detectors score whatever relation a request attaches; the
        # fit-time training-cell exclusion belongs to the original relation.
        detector._train_cells = set()
        return detector

    def acquire(self, query: str, dataset: "Dataset") -> "HoloDetect":
        """The hot instance for a fingerprint, attached to ``dataset``.

        Loads (and LRU-evicts) as needed.  The caller must finish its
        synchronous predict before any other coroutine can re-attach the
        shared instance — the asyncio handler guarantees that by never
        awaiting between attach and score.
        """
        fingerprint = self.resolve(query)
        detector = self._hot.get(fingerprint)
        if detector is None:
            detector = self._load(fingerprint, dataset)
            self.stats.loads += 1
            self._hot[fingerprint] = detector
            while len(self._hot) > self.capacity:
                self._hot.popitem(last=False)
                self.stats.evictions += 1
        else:
            self.stats.hits += 1
            detector._dataset = dataset
        self._hot.move_to_end(fingerprint)
        return detector

    def checkout(self, query: str, dataset: "Dataset") -> "HoloDetect":
        """A private instance for a tenant session (never shared, never LRU'd)."""
        fingerprint = self.resolve(query)
        detector = self._load(fingerprint, dataset)
        self.stats.checkouts += 1
        return detector

    def evict(self, query: str) -> bool:
        """Drop a hot entry; returns whether one was loaded.

        Existing tenant sessions keep their checked-out instances; only the
        shared stateless instance is dropped, and the next acquire reloads
        cleanly from disk.
        """
        try:
            fingerprint = self.resolve(query)
        except RegistryError:
            return False
        return self._hot.pop(fingerprint, None) is not None
