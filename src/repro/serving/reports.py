"""Shared detection-report assembly — the one source of ``repro.detect/v1``.

``repro detect --json`` and the serving layer's ``POST /v1/detect`` used to
assemble the same counter/triage payload in two places, which is exactly how
two outputs drift apart.  Both now call :func:`build_detect_report`; the CLI
adds its file-path context on top, the server wraps the report in its
``repro.serve/v1`` envelope, and the cell ranking, flagged counting, and
engine-counter blocks cannot disagree.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.detector import ErrorPredictions, HoloDetect
    from repro.dataset.table import Cell, Dataset

#: Schema identifier of the detection report (shared with the CLI).
DETECT_SCHEMA = "repro.detect/v1"


def ranked_predictions(
    dataset: "Dataset", predictions: "ErrorPredictions"
) -> list[tuple["Cell", str, float]]:
    """``(cell, observed value, probability)`` triples, most suspicious first.

    Ties break deterministically on (row, attribute) so triage CSVs and JSON
    reports are stable across runs and transports.
    """
    return [
        (cell, dataset.value(cell), float(probability))
        for cell, probability in sorted(
            zip(predictions.cells, predictions.probabilities),
            key=lambda t: (-t[1], t[0].row, t[0].attr),
        )
    ]


def count_flagged(predictions: "ErrorPredictions", threshold: float) -> int:
    """Cells at or above the flagging threshold."""
    return int(sum(1 for p in predictions.probabilities if p >= threshold))


def build_detect_report(
    dataset: "Dataset",
    predictions: "ErrorPredictions",
    threshold: float,
    *,
    detector: "HoloDetect | None" = None,
) -> dict:
    """The ``repro.detect/v1`` payload for one scored relation.

    ``detector`` contributes the spec fingerprint and the feature-cache /
    artifact-store counter blocks when available (all three are ``None``
    otherwise — the additive-fields contract of the schema).
    """
    from repro import __version__

    spec_fingerprint = None
    feature_cache = None
    artifact_store = None
    timings = None
    if detector is not None:
        if detector.spec is not None:
            spec_fingerprint = detector.spec.fingerprint()
        if detector.cache_stats is not None:
            feature_cache = detector.cache_stats.as_dict()
        if detector.artifact_stats is not None:
            artifact_store = detector.artifact_stats.as_dict()
        if getattr(detector, "timings", None):
            # Wall-clock seconds of the fit/featurize/train/predict stages
            # (additive field; absent for detectors without timing data).
            timings = {k: round(v, 6) for k, v in detector.timings.items()}
    return {
        "schema": DETECT_SCHEMA,
        "version": __version__,
        "rows": dataset.num_rows,
        "attributes": list(dataset.attributes),
        "threshold": threshold,
        "scored_cells": len(predictions.cells),
        "flagged_cells": count_flagged(predictions, threshold),
        "spec_fingerprint": spec_fingerprint,
        "feature_cache": feature_cache,
        "artifact_store": artifact_store,
        "timings": timings,
        "cells": [
            {
                "row": cell.row,
                "attribute": cell.attr,
                "value": value,
                "error_probability": round(probability, 6),
                "flagged": bool(probability >= threshold),
            }
            for cell, value, probability in ranked_predictions(dataset, predictions)
        ],
    }


def write_triage_csv(
    path,
    dataset: "Dataset",
    predictions: "ErrorPredictions",
    threshold: float,
) -> int:
    """Write the ranked per-cell triage CSV; returns the flagged-cell count.

    The ranking and flag decisions come from the same helpers as the JSON
    report, so the two views of one detection run always agree.
    """
    import csv
    from pathlib import Path

    flagged = 0
    with Path(path).open("w", newline="", encoding="utf-8") as f:
        writer = csv.writer(f)
        writer.writerow(["row", "attribute", "value", "error_probability", "flagged"])
        for cell, value, probability in ranked_predictions(dataset, predictions):
            is_flagged = probability >= threshold
            flagged += is_flagged
            writer.writerow(
                [cell.row, cell.attr, value, f"{probability:.4f}", int(is_flagged)]
            )
    return flagged


def report_cells(report: dict) -> Sequence[dict]:
    """The ranked cell entries of a detect report (defensive accessor)."""
    cells = report.get("cells")
    return cells if isinstance(cells, list) else []
