"""The detection server: asyncio HTTP/1.1, multi-tenant, stdlib only.

One long-lived process serves saved detectors to many concurrent clients:

- ``POST /v1/detect`` — score a relation (or a cell subset of a tenant's
  registered relation) with the detector named by spec fingerprint;
- ``POST /v1/rescore`` — apply cell repairs to a tenant's relation and
  incrementally re-score through that tenant's
  :class:`~repro.core.detector.DetectionSession` (O(edit), PR 2);
- ``POST /v1/evict`` — drop a hot detector or a tenant session;
- ``GET /v1/health`` / ``GET /v1/registry`` — liveness and accounting.

Architecture (see ``docs/architecture.md`` → Serving):

- routing/caching key is the :meth:`~repro.spec.DetectorSpec.fingerprint`
  of the saved model, resolved (git-style prefixes allowed) against a
  *model root* directory by the :class:`~repro.serving.registry.DetectorRegistry`
  LRU;
- **tenant isolation**: each tenant owns a private detector instance (its
  own feature cache) with a per-tenant artifact-store directory, its own
  relation copy, and its own session — one tenant's repairs can never
  reach another tenant's scores;
- **coalescing**: concurrent small detect requests against one tenant are
  merged by the :class:`~repro.serving.batching.ScoreBatcher` into a single
  chunked predict, bit-identical to sequential calls because per-cell
  scores are chunk-composition independent;
- **fault containment**: malformed requests, oversized payloads, unknown
  fingerprints, slow or vanishing clients, and corrupt saved-model
  directories all produce structured ``repro.serve/v1`` error payloads
  (never a dead event loop, never a poisoned registry entry).

CPU-bound scoring runs synchronously on the event loop by design: the
detector is not thread-safe under dataset re-attachment, and the loop
serialises handlers between awaits, which is exactly the mutual exclusion
attach→predict needs.  Concurrency is won through coalescing (many requests,
one pass), not through parallel forwards.
"""

from __future__ import annotations

import asyncio
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.serving.batching import ScoreBatcher
from repro.serving.registry import DetectorRegistry, RegistryError
from repro.serving.reports import build_detect_report
from repro.serving.wire import (
    BINARY_CONTENT_TYPE,
    JSON_CONTENT_TYPE,
    SERVE_SCHEMA,
    WireError,
    decode_payload,
    encode_payload,
    iter_cells,
    require_schema,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.detector import DetectionSession, HoloDetect
    from repro.dataset.table import Dataset

_TENANT_RE = re.compile(r"[A-Za-z0-9_-]{1,64}")

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A request that must be answered with a structured error payload."""

    def __init__(self, status: int, code: str, message: str,
                 retry_after: float | None = None):
        super().__init__(message)
        self.status = status
        self.code = code
        self.retry_after = retry_after


def error_payload(code: str, message: str,
                  retry_after: float | None = None) -> dict:
    error: dict = {"code": code, "message": message}
    if retry_after is not None:
        error["retry_after"] = round(float(retry_after), 3)
    return {
        "schema": SERVE_SCHEMA,
        "kind": "error",
        "error": error,
    }


@dataclass
class ServeConfig:
    """Every knob of one :class:`DetectionServer`."""

    model_root: str | Path
    host: str = "127.0.0.1"
    #: 0 = pick an ephemeral port (the bound port is ``server.port``).
    port: int = 0
    #: Hot-registry LRU capacity (loaded detectors kept in memory).
    capacity: int = 8
    #: Root for per-tenant artifact stores (``<root>/tenants/<name>``);
    #: ``None`` disables the disk tier for served detectors.
    artifact_root: str | Path | None = None
    #: Reject request bodies larger than this many bytes (413).
    max_body: int = 8 * 1024 * 1024
    #: Per-read timeout for slow clients (408 on the headers, drop on body).
    read_timeout: float = 10.0
    #: Coalescing window for concurrent small detect requests, seconds.
    batch_window: float = 0.002
    #: Bound on one merged scoring pass, in cells.
    max_batch_cells: int = 4096
    default_threshold: float = 0.5
    #: Compute backend every served detector scores on (ambient for the
    #: whole server process; ``None`` = the fused-numpy default).
    backend: str | None = None
    #: Admission control: connections handled concurrently beyond this are
    #: shed with a structured 503 instead of queueing unboundedly.
    max_inflight: int = 64
    #: The ``Retry-After`` hint on overload 503s, seconds.
    retry_after: float = 1.0
    #: Consecutive load failures that trip a fingerprint's circuit open.
    breaker_threshold: int = 3
    #: Seconds an open circuit fast-fails before admitting a probe load.
    breaker_cooldown: float = 30.0

    def __post_init__(self) -> None:
        if self.max_body < 1:
            raise ValueError(f"max_body must be positive, got {self.max_body}")
        if self.read_timeout <= 0:
            raise ValueError(f"read_timeout must be positive, got {self.read_timeout}")
        if self.backend is not None and not isinstance(self.backend, str):
            raise ValueError(
                f"backend must be a registry key string or None, got {self.backend!r}"
            )
        if self.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be positive, got {self.max_inflight}"
            )
        if self.retry_after <= 0:
            raise ValueError(f"retry_after must be positive, got {self.retry_after}")
        if self.breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be positive, got {self.breaker_threshold}"
            )
        if self.breaker_cooldown <= 0:
            raise ValueError(
                f"breaker_cooldown must be positive, got {self.breaker_cooldown}"
            )


@dataclass
class Tenant:
    """One tenant's private serving state."""

    name: str
    fingerprint: str
    dataset: "Dataset"
    detector: "HoloDetect"
    session: "DetectionSession"
    created_at: float = field(default_factory=time.monotonic)

    @property
    def batch_key(self) -> tuple[str, str]:
        return ("tenant", self.name)


@dataclass
class _Request:
    method: str
    path: str
    headers: dict[str, str]
    body: bytes

    @property
    def content_type(self) -> str:
        return self.headers.get("content-type", JSON_CONTENT_TYPE)

    @property
    def response_content_type(self) -> str:
        accept = self.headers.get("accept", "").split(";")[0].strip().lower()
        if accept == BINARY_CONTENT_TYPE:
            return BINARY_CONTENT_TYPE
        if self.content_type.split(";")[0].strip().lower() == BINARY_CONTENT_TYPE:
            return BINARY_CONTENT_TYPE
        return JSON_CONTENT_TYPE


class DetectionServer:
    """Asyncio detection-as-a-service front end over a model root."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.registry = DetectorRegistry(
            Path(config.model_root),
            capacity=config.capacity,
            breaker_threshold=config.breaker_threshold,
            breaker_cooldown=config.breaker_cooldown,
        )
        self.batcher = ScoreBatcher(
            window=config.batch_window, max_cells=config.max_batch_cells
        )
        self.tenants: dict[str, Tenant] = {}
        self.requests_handled = 0
        self.errors_returned = 0
        self.requests_shed = 0
        self._inflight = 0
        self._server: asyncio.base_events.Server | None = None
        self._started = time.monotonic()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            return self.config.port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "DetectionServer":
        if self.config.backend is not None:
            # Every served detector scores on the configured backend; the
            # choice is bit-neutral at float64, so responses are identical
            # across backends (only latency differs).
            from repro.nn.backend import resolve_backend, set_default_backend

            resolve_backend(self.config.backend)  # fail fast on bad names
            set_default_backend(self.config.backend)
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._started = time.monotonic()
        return self

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        await self.batcher.drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One connection, one request, one response; never raises."""
        # Admission control before any read: a server already at its
        # in-flight cap sheds the connection with a structured 503 rather
        # than queueing unboundedly behind slow scoring passes.
        if self._inflight >= self.config.max_inflight:
            self.requests_shed += 1
            self.errors_returned += 1
            await self._write_response(
                writer,
                503,
                error_payload(
                    "overloaded",
                    f"server at its in-flight cap of "
                    f"{self.config.max_inflight} requests",
                    retry_after=self.config.retry_after,
                ),
                JSON_CONTENT_TYPE,
                retry_after=self.config.retry_after,
            )
            return
        self._inflight += 1
        try:
            await self._handle_admitted(reader, writer)
        finally:
            self._inflight -= 1

    async def _handle_admitted(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        content_type = JSON_CONTENT_TYPE
        retry_after: float | None = None
        try:
            request = await self._read_request(reader)
            if request is None:  # client vanished before sending anything
                return
            content_type = request.response_content_type
            status, payload = await self._dispatch(request)
        except HttpError as exc:
            retry_after = exc.retry_after
            status, payload = exc.status, error_payload(
                exc.code, str(exc), retry_after=retry_after
            )
        except WireError as exc:
            status, payload = 400, error_payload("bad_request", str(exc))
        except RegistryError as exc:
            status = {
                "corrupt_model": 500,
                "ambiguous_fingerprint": 400,
                "circuit_open": 503,
            }.get(exc.code, 404)
            retry_after = getattr(exc, "retry_after", None)
            payload = error_payload(exc.code, str(exc), retry_after=retry_after)
        except (ConnectionError, asyncio.IncompleteReadError):
            # Mid-request disconnect: nothing to answer, nobody to answer to.
            self._close_quietly(writer)
            return
        except Exception as exc:  # noqa: BLE001 - the loop must survive
            status, payload = 500, error_payload(
                "internal_error", f"{type(exc).__name__}: {exc}"
            )
        self.requests_handled += 1
        if status != 200:
            self.errors_returned += 1
        await self._write_response(
            writer, status, payload, content_type, retry_after=retry_after
        )

    async def _read_request(self, reader: asyncio.StreamReader) -> _Request | None:
        timeout = self.config.read_timeout
        try:
            request_line = await asyncio.wait_for(reader.readline(), timeout)
        except asyncio.TimeoutError:
            raise HttpError(408, "timeout", "timed out reading the request line")
        except ValueError:
            raise HttpError(400, "bad_request", "request line too long")
        if not request_line.strip():
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise HttpError(400, "bad_request", f"malformed request line {request_line!r}")
        method, path = parts[0].upper(), parts[1]

        headers: dict[str, str] = {}
        while True:
            try:
                line = await asyncio.wait_for(reader.readline(), timeout)
            except asyncio.TimeoutError:
                raise HttpError(408, "timeout", "timed out reading headers")
            except ValueError:
                raise HttpError(400, "bad_request", "header line too long")
            if line in (b"\r\n", b"\n", b""):
                break
            if len(headers) >= 100:
                raise HttpError(400, "bad_request", "too many headers")
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                raise HttpError(400, "bad_request", f"malformed header {line!r}")
            headers[name.strip().lower()] = value.strip()

        length_raw = headers.get("content-length", "0")
        try:
            length = int(length_raw)
        except ValueError:
            raise HttpError(400, "bad_request", f"bad Content-Length {length_raw!r}")
        if length < 0:
            raise HttpError(400, "bad_request", f"bad Content-Length {length}")
        if length > self.config.max_body:
            raise HttpError(
                413,
                "payload_too_large",
                f"request body of {length} bytes exceeds the "
                f"{self.config.max_body}-byte limit",
            )
        body = b""
        if length:
            try:
                body = await asyncio.wait_for(reader.readexactly(length), timeout)
            except asyncio.TimeoutError:
                raise HttpError(
                    408, "timeout", f"timed out reading a {length}-byte body"
                )
        return _Request(method=method, path=path, headers=headers, body=body)

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        content_type: str,
        retry_after: float | None = None,
    ) -> None:
        try:
            body = encode_payload(payload, content_type)
        except WireError:
            content_type = JSON_CONTENT_TYPE
            body = encode_payload(
                error_payload("internal_error", "response encoding failed"),
                content_type,
            )
            status = 500
        reason = _REASONS.get(status, "Unknown")
        extra = ""
        if retry_after is not None:
            # Integer seconds, minimum 1: the header grammar is delta-seconds.
            extra = f"Retry-After: {max(1, round(retry_after))}\r\n"
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, RuntimeError):
            pass  # client went away mid-response; nothing to do
        finally:
            self._close_quietly(writer)

    @staticmethod
    def _close_quietly(writer: asyncio.StreamWriter) -> None:
        try:
            writer.close()
        except Exception:  # noqa: BLE001 - best-effort teardown
            pass

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    async def _dispatch(self, request: _Request) -> tuple[int, dict]:
        routes = {
            ("GET", "/v1/health"): self._handle_health,
            ("GET", "/v1/registry"): self._handle_registry,
            ("POST", "/v1/detect"): self._handle_detect,
            ("POST", "/v1/rescore"): self._handle_rescore,
            ("POST", "/v1/evict"): self._handle_evict,
        }
        handler = routes.get((request.method, request.path))
        if handler is None:
            known_paths = {path for _, path in routes}
            if request.path in known_paths:
                raise HttpError(
                    405,
                    "method_not_allowed",
                    f"{request.method} is not allowed on {request.path}",
                )
            raise HttpError(404, "unknown_route", f"no route for {request.path}")
        return await handler(request)

    def _decode_body(self, request: _Request) -> dict:
        try:
            return require_schema(decode_payload(request.body, request.content_type))
        except WireError as exc:
            raise HttpError(400, "bad_request", str(exc)) from exc

    # ------------------------------------------------------------------ #
    # Handlers
    # ------------------------------------------------------------------ #

    async def _handle_health(self, request: _Request) -> tuple[int, dict]:
        components = self._degraded_components()
        return 200, {
            "schema": SERVE_SCHEMA,
            "kind": "health",
            "status": "degraded" if components else "ok",
            "models": len(self.registry.fingerprints),
            "hot": len(self.registry.hot_fingerprints),
            "tenants": len(self.tenants),
            "uptime_s": round(time.monotonic() - self._started, 3),
            "components": components,
            "inflight": self._inflight,
            "shed": self.requests_shed,
        }

    def _degraded_components(self) -> dict[str, object]:
        """The currently degraded components (empty dict = healthy).

        ``circuits`` — per-fingerprint load breakers that are open or
        accumulating failures; ``artifact_stores`` — tenants whose
        artifact store saw a fatal disk fault (memory tier still serves).
        """
        components: dict[str, object] = {}
        circuits = self.registry.breaker_states()
        if circuits:
            components["circuits"] = circuits
        degraded_stores = sorted(
            name
            for name, tenant in self.tenants.items()
            if getattr(tenant.detector.artifact_stats, "degraded", False)
        )
        if degraded_stores:
            components["artifact_stores"] = degraded_stores
        return components

    async def _handle_registry(self, request: _Request) -> tuple[int, dict]:
        return 200, {
            "schema": SERVE_SCHEMA,
            "kind": "registry",
            "fingerprints": self.registry.fingerprints,
            "hot": self.registry.hot_fingerprints,
            "tenants": sorted(self.tenants),
            "registry": self.registry.stats.as_dict(),
            "batcher": self.batcher.stats.as_dict(),
            "requests_handled": self.requests_handled,
            "errors_returned": self.errors_returned,
        }

    async def _handle_detect(self, request: _Request) -> tuple[int, dict]:
        payload = self._decode_body(request)
        threshold = self._threshold(payload)
        tenant_name = payload.get("tenant")
        if tenant_name is None:
            return await self._detect_stateless(payload, threshold)
        tenant = self._register_or_get_tenant(payload, tenant_name)
        raw_cells = payload.get("cells")
        if raw_cells is None:
            # Whole-relation view: the session's live predictions, no
            # recompute needed (they are maintained bit-exact by rescore).
            report = build_detect_report(
                tenant.dataset, tenant.session.predictions, threshold,
                detector=tenant.detector,
            )
            return 200, self._detect_response(tenant.fingerprint, tenant_name, report, payload)
        cells = self._parse_cells(raw_cells, tenant.dataset)
        probabilities = await self.batcher.score(
            tenant.batch_key, tenant.detector._score_probabilities, cells
        )
        from repro.core.detector import ErrorPredictions

        predictions = ErrorPredictions(
            cells=list(cells), probabilities=probabilities, threshold=threshold
        )
        report = build_detect_report(
            tenant.dataset, predictions, threshold, detector=tenant.detector
        )
        return 200, self._detect_response(tenant.fingerprint, tenant_name, report, payload)

    async def _detect_stateless(
        self, payload: dict, threshold: float
    ) -> tuple[int, dict]:
        fingerprint_query = payload.get("fingerprint")
        if not isinstance(fingerprint_query, str):
            raise HttpError(
                400, "bad_request", "detect needs a string 'fingerprint'"
            )
        dataset = self._parse_relation(payload, required=True)
        raw_cells = payload.get("cells")
        cells = (
            list(dataset.cells())
            if raw_cells is None
            else self._parse_cells(raw_cells, dataset)
        )
        # attach → score is one synchronous block: no other coroutine can
        # re-attach the shared hot instance in between.
        detector = self._acquire_hot(fingerprint_query, dataset)
        fingerprint = self.registry.resolve(fingerprint_query)
        probabilities = detector._score_probabilities(cells)
        from repro.core.detector import ErrorPredictions

        predictions = ErrorPredictions(
            cells=cells, probabilities=probabilities, threshold=threshold
        )
        report = build_detect_report(dataset, predictions, threshold, detector=detector)
        return 200, self._detect_response(fingerprint, None, report, payload)

    async def _handle_rescore(self, request: _Request) -> tuple[int, dict]:
        payload = self._decode_body(request)
        threshold = self._threshold(payload)
        tenant = self._require_tenant(payload)
        edits = self._parse_edits(payload, tenant.dataset)
        refresh = bool(payload.get("refresh", False))
        # Ordering barrier: anything already queued for this tenant scores
        # against the pre-edit relation, exactly as a sequential client
        # interleaving detect → rescore would observe.
        self.batcher.flush_key(
            tenant.batch_key, tenant.detector._score_probabilities
        )
        before = tenant.session.rescored_cells
        tenant.session.apply(edits, refresh=refresh)
        delta = tenant.session.last_delta
        report = build_detect_report(
            tenant.dataset, tenant.session.predictions, threshold,
            detector=tenant.detector,
        )
        if payload.get("include_cells") is False:
            report.pop("cells", None)
        return 200, {
            "schema": SERVE_SCHEMA,
            "kind": "rescore",
            "fingerprint": tenant.fingerprint,
            "tenant": tenant.name,
            "applied_edits": len(delta.cells) if delta is not None else 0,
            "rescored_cells": tenant.session.rescored_cells - before,
            "refreshed": refresh,
            "report": report,
        }

    async def _handle_evict(self, request: _Request) -> tuple[int, dict]:
        payload = self._decode_body(request)
        fingerprint = payload.get("fingerprint")
        tenant_name = payload.get("tenant")
        if fingerprint is None and tenant_name is None:
            raise HttpError(
                400, "bad_request", "evict needs 'fingerprint' and/or 'tenant'"
            )
        evicted_model = False
        if fingerprint is not None:
            if not isinstance(fingerprint, str):
                raise HttpError(400, "bad_request", "'fingerprint' must be a string")
            evicted_model = self.registry.evict(fingerprint)
        evicted_tenant = False
        if tenant_name is not None:
            evicted_tenant = self.tenants.pop(tenant_name, None) is not None
        return 200, {
            "schema": SERVE_SCHEMA,
            "kind": "evict",
            "evicted_model": evicted_model,
            "evicted_tenant": evicted_tenant,
            "hot": self.registry.hot_fingerprints,
        }

    # ------------------------------------------------------------------ #
    # Request pieces
    # ------------------------------------------------------------------ #

    def _threshold(self, payload: dict) -> float:
        raw = payload.get("threshold", self.config.default_threshold)
        if isinstance(raw, bool) or not isinstance(raw, (int, float)):
            raise HttpError(400, "bad_request", f"threshold must be a number, got {raw!r}")
        return float(raw)

    def _detect_response(
        self, fingerprint: str, tenant: str | None, report: dict, payload: dict
    ) -> dict:
        if payload.get("include_cells") is False:
            report.pop("cells", None)
        return {
            "schema": SERVE_SCHEMA,
            "kind": "detect",
            "fingerprint": fingerprint,
            "tenant": tenant,
            "report": report,
        }

    def _parse_relation(self, payload: dict, *, required: bool) -> "Dataset | None":
        columns = payload.get("columns")
        rows = payload.get("rows")
        if columns is None and rows is None:
            if required:
                raise HttpError(
                    400, "bad_request",
                    "detect without a tenant session needs 'columns' and 'rows'",
                )
            return None
        if not isinstance(columns, list) or not all(
            isinstance(c, str) for c in columns
        ):
            raise HttpError(400, "bad_request", "'columns' must be a list of strings")
        if not isinstance(rows, list):
            raise HttpError(400, "bad_request", "'rows' must be a list of rows")
        from repro.dataset.table import Dataset

        try:
            return Dataset.from_rows(columns, rows)
        except (ValueError, TypeError) as exc:
            raise HttpError(400, "bad_request", f"bad relation: {exc}") from exc

    def _parse_cells(self, raw: object, dataset: "Dataset") -> list:
        from repro.dataset.table import Cell

        try:
            pairs = list(iter_cells(raw))
        except WireError as exc:
            raise HttpError(400, "bad_request", str(exc)) from exc
        cells = []
        for row, attr in pairs:
            if attr not in dataset.schema:
                raise HttpError(400, "bad_request", f"unknown attribute {attr!r}")
            if not 0 <= row < dataset.num_rows:
                raise HttpError(400, "bad_request", f"row {row} out of range")
            cells.append(Cell(row, attr))
        return cells

    def _parse_edits(self, payload: dict, dataset: "Dataset") -> dict:
        from repro.dataset.table import Cell

        raw = payload.get("edits")
        if not isinstance(raw, list) or not raw:
            raise HttpError(
                400, "bad_request",
                "rescore needs a non-empty 'edits' list of "
                "{row, attribute, value} objects",
            )
        edits: dict = {}
        for entry in raw:
            if not isinstance(entry, dict):
                raise HttpError(400, "bad_edit", f"bad edit entry {entry!r}")
            row, attr, value = entry.get("row"), entry.get("attribute"), entry.get("value")
            if (
                not isinstance(row, int)
                or isinstance(row, bool)
                or not isinstance(attr, str)
                or not isinstance(value, str)
            ):
                raise HttpError(
                    400, "bad_edit",
                    f"bad edit entry {entry!r}; expected "
                    "{row: int, attribute: str, value: str}",
                )
            if attr not in dataset.schema:
                raise HttpError(400, "bad_edit", f"unknown attribute {attr!r}")
            if not 0 <= row < dataset.num_rows:
                raise HttpError(400, "bad_edit", f"row {row} out of range")
            edits[Cell(row, attr)] = value
        return edits

    # ------------------------------------------------------------------ #
    # Tenants + hot instances
    # ------------------------------------------------------------------ #

    def _acquire_hot(self, fingerprint_query: str, dataset: "Dataset") -> "HoloDetect":
        fingerprint = self.registry.resolve(fingerprint_query)
        fresh = fingerprint not in self.registry.hot_fingerprints
        detector = self.registry.acquire(fingerprint, dataset)
        if fresh and self.config.artifact_root is not None:
            # Stateless traffic shares one artifact namespace; tenants get
            # their own (see _register_or_get_tenant).
            detector.use_artifacts(Path(self.config.artifact_root) / "shared")
        return detector

    def _register_or_get_tenant(self, payload: dict, tenant_name: object) -> Tenant:
        if not isinstance(tenant_name, str) or not _TENANT_RE.fullmatch(tenant_name):
            raise HttpError(
                400, "bad_request",
                f"tenant must match {_TENANT_RE.pattern!r}, got {tenant_name!r}",
            )
        dataset = self._parse_relation(payload, required=False)
        fingerprint_query = payload.get("fingerprint")
        existing = self.tenants.get(tenant_name)
        if dataset is None:
            if existing is None:
                raise HttpError(
                    404, "unknown_tenant",
                    f"tenant {tenant_name!r} has no registered relation; "
                    "POST /v1/detect with 'columns' and 'rows' first",
                )
            if fingerprint_query is not None and isinstance(fingerprint_query, str):
                if self.registry.resolve(fingerprint_query) != existing.fingerprint:
                    raise HttpError(
                        409, "tenant_fingerprint_mismatch",
                        f"tenant {tenant_name!r} is bound to "
                        f"{existing.fingerprint[:12]}; re-register with "
                        "'columns'/'rows' to switch detectors",
                    )
            return existing
        if not isinstance(fingerprint_query, str):
            raise HttpError(
                400, "bad_request",
                "registering a tenant relation needs a string 'fingerprint'",
            )
        fingerprint = self.registry.resolve(fingerprint_query)
        # Private instance: own feature cache, own artifact namespace, own
        # session — full isolation from other tenants and the hot pool.
        detector = self.registry.checkout(fingerprint, dataset)
        if self.config.artifact_root is not None:
            detector.use_artifacts(
                Path(self.config.artifact_root) / "tenants" / tenant_name
            )
        from repro.core.detector import DetectionSession

        session = DetectionSession(detector, cells=list(dataset.cells()))
        tenant = Tenant(
            name=tenant_name,
            fingerprint=fingerprint,
            dataset=dataset,
            detector=detector,
            session=session,
        )
        self.tenants[tenant_name] = tenant
        return tenant

    def _require_tenant(self, payload: dict) -> Tenant:
        tenant_name = payload.get("tenant")
        if not isinstance(tenant_name, str):
            raise HttpError(400, "bad_request", "rescore needs a string 'tenant'")
        tenant = self.tenants.get(tenant_name)
        if tenant is None:
            raise HttpError(
                404, "unknown_tenant",
                f"tenant {tenant_name!r} has no registered relation; "
                "POST /v1/detect with 'columns' and 'rows' first",
            )
        return tenant
