"""Deterministic serving-test harness: in-process server + fault transports.

Serving code is asynchronous, stateful, and network-facing — the three
things that make test suites flaky.  This module keeps the suite
deterministic:

- :class:`InProcessServer` runs a real :class:`~repro.serving.server.DetectionServer`
  on an ephemeral localhost port inside a dedicated event-loop thread, so
  ordinary *blocking* test code (and :class:`~repro.serving.client.ServeClient`)
  can drive it without ``async`` plumbing.  ``submit`` runs a coroutine on
  the server's own loop — the way tests reach into live server state safely.
- :class:`RawConnection` is a misbehaving-client kit: send partial requests,
  declare bodies that never arrive, disconnect mid-request — the fault
  vectors the server must survive with structured errors and a live loop.
- :func:`feed_request` drives the connection handler directly over in-memory
  streams (no sockets at all) for the fastest protocol-level tests.
"""

from __future__ import annotations

import asyncio
import socket
import threading
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.server import DetectionServer, ServeConfig


class InProcessServer:
    """Context manager running a DetectionServer in a background loop thread.

    ::

        with InProcessServer(ServeConfig(model_root=models)) as harness:
            client = ServeClient(harness.host, harness.port)
            client.health()
    """

    def __init__(self, config: "ServeConfig"):
        from repro.serving.server import DetectionServer

        self.config = config
        self.server = DetectionServer(config)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()

    # -- lifecycle -------------------------------------------------------- #

    def __enter__(self) -> "InProcessServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def start(self) -> "InProcessServer":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-test", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("in-process server failed to start within 30s")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)

        async def main() -> None:
            await self.server.start()
            self._started.set()

        loop.run_until_complete(main())
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self.server.close())
            loop.close()

    def stop(self) -> None:
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            return
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=30)
        self._loop = None
        self._thread = None

    # -- access ----------------------------------------------------------- #

    @property
    def host(self) -> str:
        return self.config.host

    @property
    def port(self) -> int:
        return self.server.port

    def submit(self, coroutine) -> object:
        """Run a coroutine on the server's loop; return its result.

        Server state (tenants, registry, batcher) belongs to the loop
        thread — tests must inspect or mutate it *on that loop*, never from
        the test thread directly.
        """
        if self._loop is None:
            raise RuntimeError("server is not running")
        return asyncio.run_coroutine_threadsafe(coroutine, self._loop).result(
            timeout=60
        )


class RawConnection:
    """A deliberately misbehaving HTTP client over a plain socket."""

    def __init__(self, host: str, port: int, *, timeout: float = 10.0):
        self.sock = socket.create_connection((host, port), timeout=timeout)

    def send(self, data: bytes) -> "RawConnection":
        self.sock.sendall(data)
        return self

    def send_request_head(
        self,
        method: str = "POST",
        path: str = "/v1/detect",
        *,
        content_length: int,
        content_type: str = "application/json",
    ) -> "RawConnection":
        """Headers declaring a body of ``content_length`` bytes (not sent)."""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: test\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {content_length}\r\n\r\n"
        )
        return self.send(head.encode("latin-1"))

    def read_response(self) -> bytes:
        """Everything the server sends until it closes the connection."""
        chunks = []
        while True:
            try:
                chunk = self.sock.recv(65536)
            except (TimeoutError, OSError):
                break
            if not chunk:
                break
            chunks.append(chunk)
        return b"".join(chunks)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass

    def abort(self) -> None:
        """Hard reset: close without a graceful FIN handshake."""
        try:
            self.sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER,
                __import__("struct").pack("ii", 1, 0),
            )
        except OSError:
            pass
        self.close()


def feed_request(server: "DetectionServer", raw: bytes) -> bytes:
    """Drive the connection handler over in-memory streams (no sockets).

    Returns the raw HTTP response bytes.  The fastest way to protocol-test
    the server: deterministic, loop-per-call, no ports involved.
    """

    async def run() -> bytes:
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        transport = _CaptureTransport()
        protocol = asyncio.StreamReaderProtocol(asyncio.StreamReader())
        writer = asyncio.StreamWriter(
            transport, protocol, None, asyncio.get_running_loop()
        )
        await server._handle_connection(reader, writer)
        return b"".join(transport.chunks)

    return asyncio.run(run())


class _CaptureTransport(asyncio.Transport):
    """Minimal in-memory transport capturing everything written."""

    def __init__(self) -> None:
        super().__init__()
        self.chunks: list[bytes] = []
        self._closing = False

    def write(self, data: bytes) -> None:
        self.chunks.append(bytes(data))

    def close(self) -> None:
        self._closing = True

    def is_closing(self) -> bool:
        return self._closing

    def get_extra_info(self, name: str, default: object = None) -> object:
        return default
