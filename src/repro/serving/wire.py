"""Wire codec for the detection service — ``repro.serve/v1``.

Every request and response body on the wire is one *payload*: a JSON-able
tree of dicts, lists, strings, numbers, booleans, and nulls.  The codec
speaks two formats for the same payloads, negotiated per request by
``Content-Type`` (the versioned dual-format idiom — a readable default plus
a compact binary twin):

- ``application/json`` — UTF-8 JSON, the default and the debuggable form.
  Python's ``json`` emits ``repr``-exact floats, so probability vectors
  survive a JSON round-trip bit-for-bit.
- ``application/x-repro-pack`` — "repro-pack", a compact length-prefixed
  binary encoding defined here (stdlib ``struct`` only; the container has
  no msgpack).  Floats travel as raw IEEE-754 doubles, so the binary form
  is exact *by construction* and roughly 2× smaller than JSON for
  probability-heavy responses.

Both directions are total on supported payloads: ``decode(encode(x)) == x``
for every tree of supported types (property-tested in
``tests/test_serving_wire.py``).  Unsupported types raise :class:`WireError`
at encode time; malformed bytes raise :class:`WireError` at decode time —
never an unhandled struct/Unicode error.

repro-pack format
-----------------

A payload is ``MAGIC || value`` where ``MAGIC = b"RPK1"``.  A value is one
tag byte followed by tag-specific content; all integers little-endian::

    n                None
    t / f            True / False
    i  <int64>       integer (|x| < 2**63; larger ints are rejected)
    d  <float64>     IEEE-754 double
    s  <u32> bytes   UTF-8 string
    l  <u32> value*  list
    m  <u32> (s-value value)*   dict with string keys, insertion order kept

The format is deliberately closed under exactly the JSON data model: a
payload that encodes as repro-pack also encodes as JSON and vice versa.
"""

from __future__ import annotations

import json
import struct
from typing import Iterator

#: Wire schema identifier carried by every request/response payload.
SERVE_SCHEMA = "repro.serve/v1"

MAGIC = b"RPK1"

JSON_CONTENT_TYPE = "application/json"
BINARY_CONTENT_TYPE = "application/x-repro-pack"

_I64_MIN, _I64_MAX = -(2**63), 2**63 - 1


class WireError(ValueError):
    """A payload cannot be encoded, or wire bytes cannot be decoded."""


# --------------------------------------------------------------------- #
# repro-pack
# --------------------------------------------------------------------- #


def _pack_value(value: object, out: list[bytes]) -> None:
    if value is None:
        out.append(b"n")
    elif value is True:
        out.append(b"t")
    elif value is False:
        out.append(b"f")
    elif isinstance(value, int):
        if not _I64_MIN <= value <= _I64_MAX:
            raise WireError(f"integer out of int64 range: {value!r}")
        out.append(b"i" + struct.pack("<q", value))
    elif isinstance(value, float):
        out.append(b"d" + struct.pack("<d", value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(b"s" + struct.pack("<I", len(raw)) + raw)
    elif isinstance(value, (list, tuple)):
        out.append(b"l" + struct.pack("<I", len(value)))
        for item in value:
            _pack_value(item, out)
    elif isinstance(value, dict):
        out.append(b"m" + struct.pack("<I", len(value)))
        for key, item in value.items():
            if not isinstance(key, str):
                raise WireError(f"dict keys must be strings, got {key!r}")
            raw = key.encode("utf-8")
            out.append(struct.pack("<I", len(raw)) + raw)
            _pack_value(item, out)
    else:
        raise WireError(
            f"unsupported wire type {type(value).__name__} (value {value!r})"
        )


def pack(payload: object) -> bytes:
    """Encode a JSON-able payload tree to repro-pack bytes."""
    out: list[bytes] = [MAGIC]
    _pack_value(payload, out)
    return b"".join(out)


class _Cursor:
    """Bounds-checked reader over one repro-pack buffer."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.data):
            raise WireError(
                f"truncated repro-pack payload (wanted {n} bytes at "
                f"offset {self.pos}, have {len(self.data) - self.pos})"
            )
        chunk = self.data[self.pos : end]
        self.pos = end
        return chunk

    def u32(self) -> int:
        return struct.unpack("<I", self.take(4))[0]


def _unpack_string(cursor: _Cursor) -> str:
    raw = cursor.take(cursor.u32())
    try:
        return raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise WireError(f"invalid UTF-8 in repro-pack string: {exc}") from exc


def _unpack_value(cursor: _Cursor) -> object:
    tag = cursor.take(1)
    if tag == b"n":
        return None
    if tag == b"t":
        return True
    if tag == b"f":
        return False
    if tag == b"i":
        return struct.unpack("<q", cursor.take(8))[0]
    if tag == b"d":
        return struct.unpack("<d", cursor.take(8))[0]
    if tag == b"s":
        return _unpack_string(cursor)
    if tag == b"l":
        count = cursor.u32()
        return [_unpack_value(cursor) for _ in range(count)]
    if tag == b"m":
        count = cursor.u32()
        return {_unpack_string(cursor): _unpack_value(cursor) for _ in range(count)}
    raise WireError(f"unknown repro-pack tag {tag!r} at offset {cursor.pos - 1}")


def unpack(data: bytes) -> object:
    """Decode repro-pack bytes back to the payload tree."""
    if data[: len(MAGIC)] != MAGIC:
        raise WireError(
            f"not a repro-pack payload (magic {data[:len(MAGIC)]!r}, "
            f"expected {MAGIC!r})"
        )
    cursor = _Cursor(data)
    cursor.pos = len(MAGIC)
    value = _unpack_value(cursor)
    if cursor.pos != len(data):
        raise WireError(
            f"{len(data) - cursor.pos} trailing byte(s) after repro-pack payload"
        )
    return value


# --------------------------------------------------------------------- #
# Content negotiation
# --------------------------------------------------------------------- #


def encode_payload(payload: object, content_type: str = JSON_CONTENT_TYPE) -> bytes:
    """Encode ``payload`` for the wire in the requested format."""
    base = content_type.split(";")[0].strip().lower()
    if base == BINARY_CONTENT_TYPE:
        return pack(payload)
    if base in (JSON_CONTENT_TYPE, "", "*/*"):
        try:
            return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
                "utf-8"
            )
        except (TypeError, ValueError) as exc:
            raise WireError(f"payload is not JSON-encodable: {exc}") from exc
    raise WireError(f"unsupported content type {content_type!r}")


def decode_payload(data: bytes, content_type: str = JSON_CONTENT_TYPE) -> object:
    """Decode wire bytes according to the declared content type."""
    base = content_type.split(";")[0].strip().lower()
    if base == BINARY_CONTENT_TYPE:
        return unpack(data)
    if base in (JSON_CONTENT_TYPE, "", "*/*"):
        try:
            return json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WireError(f"invalid JSON payload: {exc}") from exc
    raise WireError(f"unsupported content type {content_type!r}")


# --------------------------------------------------------------------- #
# Request validation helpers
# --------------------------------------------------------------------- #


def require_schema(payload: object) -> dict:
    """Check the envelope: a dict declaring ``schema = repro.serve/v1``."""
    if not isinstance(payload, dict):
        raise WireError(f"request payload must be an object, got {type(payload).__name__}")
    schema = payload.get("schema")
    if schema != SERVE_SCHEMA:
        raise WireError(f"request needs schema = {SERVE_SCHEMA!r}, got {schema!r}")
    return payload


def iter_cells(raw: object) -> Iterator[tuple[int, str]]:
    """Validate a wire cell list (``[[row, attribute], ...]``)."""
    if not isinstance(raw, list):
        raise WireError("cells must be a list of [row, attribute] pairs")
    for entry in raw:
        if (
            not isinstance(entry, (list, tuple))
            or len(entry) != 2
            or not isinstance(entry[0], int)
            or isinstance(entry[0], bool)
            or not isinstance(entry[1], str)
        ):
            raise WireError(f"bad cell entry {entry!r}; expected [row, attribute]")
        yield entry[0], entry[1]
