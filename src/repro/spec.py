"""Declarative detector specification — ``repro.spec/v1``.

HoloDetect is a composition: a representation model Q (featurizers), a
learned noisy channel (augmentation policy), a classifier, and a
calibrator.  A :class:`DetectorSpec` describes that composition as *data* —
a TOML or JSON document — the way
:class:`~repro.evaluation.matrix.ScenarioMatrix` describes evaluation
sweeps.  Every component name resolves through the unified
:mod:`repro.registry`, so a spec can reference built-ins by key and
user-defined components as ``"module:attr"`` with zero repo edits.

Spec layout (TOML; JSON mirrors it)::

    schema = "repro.spec/v1"

    [detector]                  # DetectorConfig fields, all optional
    epochs = 40
    embedding_dim = 16
    seed = 0

    featurizers = [             # optional: omit for the Table 7 default
        "char_embedding",
        { name = "format_3gram", least_k = 2 },
        "mypkg.features:MyFeaturizer",          # module:attr reference
    ]

    policy = "learned"          # or "uniform", "random-channel", module:attr
    calibrator = "platt"        # or "none", module:attr; table form for params

Omitting ``featurizers`` selects the exact default pipeline the imperative
constructor builds, so ``HoloDetect.from_spec(DetectorSpec.default())`` is
bit-identical to ``HoloDetect(DetectorConfig())``.

Like :class:`~repro.evaluation.matrix.ScenarioSpec`, a spec carries a
SHA-256 content fingerprint over its canonical JSON form — stable under key
reordering, whitespace, and equivalent shorthand (a bare string entry and
its empty-params table form fingerprint identically).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

from repro.registry import REGISTRY, ComponentError

#: Spec schema identifier; bump when the layout changes meaning.
SPEC_SCHEMA = "repro.spec/v1"

_TOP_LEVEL_KEYS = {"schema", "detector", "featurizers", "policy", "calibrator"}


class SpecError(ValueError):
    """A detector spec is malformed (unknown key, bad component, ...)."""


def _canonical(payload: object) -> str:
    """Canonical JSON: sorted keys at every depth, no whitespace."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _component_entry(raw: object, where: str) -> tuple[str, dict[str, object]]:
    """Normalise a spec component entry (string or table) to (name, params)."""
    if isinstance(raw, str):
        return raw, {}
    if isinstance(raw, Mapping):
        entry = dict(raw)
        name = entry.pop("name", None)
        if not isinstance(name, str):
            raise SpecError(f"{where} entry {raw!r} needs a string 'name'")
        return name, entry
    raise SpecError(f"{where} entry {raw!r} must be a string or a table with 'name'")


def _emit_entry(name: str, params: Mapping[str, object]) -> object:
    """The canonical emitted form: bare string unless params are present."""
    return {"name": name, **params} if params else name


def _freeze(value: object) -> object:
    """Recursively convert mappings/sequences to hashable immutable forms
    (mappings become sorted ``(key, value)`` pair tuples)."""
    if isinstance(value, Mapping):
        return tuple(sorted((str(k), _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def _freeze_params(params: object) -> tuple:
    """Freeze a parameter mapping; idempotent on already-frozen pairs.

    The frozen form round-trips through ``dict(...)``, which is how every
    consumer reads it back.
    """
    if isinstance(params, Mapping):
        return _freeze(params)  # type: ignore[return-value]
    return tuple(params)  # already pair tuples


@dataclass(frozen=True)
class DetectorSpec:
    """A complete, buildable description of a HoloDetect detector.

    ``detector`` holds :class:`~repro.core.detector.DetectorConfig` field
    overrides; ``featurizers`` is ``None`` for the default Table 7 pipeline
    or a tuple of ``(name, params)`` component references; ``policy`` and
    ``calibrator`` are single component references.  Construct via
    :meth:`from_dict` / :meth:`from_file` (which validate every component
    eagerly) or :meth:`default`.

    Parameter mappings may be passed as dicts; ``__post_init__`` freezes
    them into sorted ``(key, value)`` pair tuples (read back with
    ``dict(...)``), so instances are deeply immutable and hashable — a
    validated spec cannot be mutated into an invalid one, and specs can key
    sets and dicts alongside their fingerprints.
    """

    detector: Mapping[str, object] | tuple = field(default_factory=dict)
    featurizers: tuple[tuple[str, Mapping[str, object] | tuple], ...] | None = None
    policy: tuple[str, Mapping[str, object] | tuple] = ("learned", ())
    calibrator: tuple[str, Mapping[str, object] | tuple] = ("platt", ())

    def __post_init__(self) -> None:
        freeze = object.__setattr__
        freeze(self, "detector", _freeze_params(self.detector))
        if self.featurizers is not None:
            freeze(
                self,
                "featurizers",
                tuple((n, _freeze_params(p)) for n, p in self.featurizers),
            )
        freeze(self, "policy", (self.policy[0], _freeze_params(self.policy[1])))
        freeze(
            self, "calibrator", (self.calibrator[0], _freeze_params(self.calibrator[1]))
        )

    # -- construction ---------------------------------------------------- #

    @classmethod
    def default(cls, **detector_overrides: object) -> "DetectorSpec":
        """The spec equivalent of ``HoloDetect(DetectorConfig(**overrides))``."""
        return cls(detector=dict(detector_overrides))

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "DetectorSpec":
        """Validate and build a spec from a parsed mapping.

        Every component reference is resolved through the registry *now* —
        unknown names, unimportable ``module:attr`` references, and bad
        parameters fail here with actionable messages, not inside ``fit()``.
        """
        if not isinstance(payload, Mapping):
            raise SpecError("spec must be a mapping at top level")
        unknown = set(payload) - _TOP_LEVEL_KEYS
        if unknown:
            raise SpecError(
                f"unknown spec keys {sorted(unknown)}; valid: {sorted(_TOP_LEVEL_KEYS)}"
            )
        schema = payload.get("schema")
        if schema != SPEC_SCHEMA:
            raise SpecError(
                f"spec needs schema = {SPEC_SCHEMA!r}, got {schema!r}"
            )

        detector = payload.get("detector", {})
        if not isinstance(detector, Mapping):
            raise SpecError("[detector] must be a table of DetectorConfig fields")
        detector = dict(detector)
        if "policy_override" in detector:
            raise SpecError(
                "policy_override is not spec-able; use the top-level "
                "'policy' key instead"
            )

        raw_featurizers = payload.get("featurizers")
        featurizers: tuple[tuple[str, Mapping[str, object]], ...] | None = None
        if raw_featurizers is not None:
            if isinstance(raw_featurizers, (str, bytes)) or not isinstance(
                raw_featurizers, Sequence
            ):
                raise SpecError("featurizers must be a list of component references")
            if not raw_featurizers:
                raise SpecError(
                    "featurizers must be a non-empty list; omit the key "
                    "entirely for the default pipeline"
                )
            featurizers = tuple(
                _component_entry(raw, "featurizers") for raw in raw_featurizers
            )

        policy = _component_entry(payload.get("policy", "learned"), "policy")
        calibrator = _component_entry(payload.get("calibrator", "platt"), "calibrator")

        spec = cls(
            detector=detector,
            featurizers=featurizers,
            policy=policy,
            calibrator=calibrator,
        )
        spec.validate()
        return spec

    @classmethod
    def from_file(cls, path: str | Path) -> "DetectorSpec":
        """Load a spec file; format chosen by suffix (.toml or .json)."""
        path = Path(path)
        if not path.exists():
            raise SpecError(f"spec file not found: {path}")
        suffix = path.suffix.lower()
        if suffix == ".toml":
            import tomllib

            try:
                payload = tomllib.loads(path.read_text(encoding="utf-8"))
            except tomllib.TOMLDecodeError as exc:
                raise SpecError(f"{path}: invalid TOML: {exc}") from exc
        elif suffix == ".json":
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except json.JSONDecodeError as exc:
                raise SpecError(f"{path}: invalid JSON: {exc}") from exc
        else:
            raise SpecError(
                f"{path}: unsupported spec format {suffix!r} (use .toml or .json)"
            )
        try:
            return cls.from_dict(payload)
        except SpecError as exc:
            raise SpecError(f"{path}: {exc}") from exc

    # -- validation ------------------------------------------------------ #

    def validate(self) -> "DetectorSpec":
        """Resolve every referenced component; raise :class:`SpecError` on
        the first failure.  Returns self for chaining."""
        from repro.core.detector import DetectorConfig
        from repro.features.pipeline import FeaturizerContext, build_pipeline

        try:
            config = DetectorConfig(**dict(self.detector))
        except TypeError as exc:
            valid = sorted(
                f.name for f in dataclasses.fields(DetectorConfig)
                if f.name != "policy_override"
            )
            raise SpecError(f"[detector]: {exc}; valid keys: {valid}") from exc
        except ValueError as exc:
            raise SpecError(f"[detector]: {exc}") from exc

        if self.featurizers is not None:
            ctx = FeaturizerContext(
                embedding_dim=config.embedding_dim,
                embedding_epochs=config.embedding_epochs,
            )
            try:
                build_pipeline(list(self.featurizers), ctx)
            except (ComponentError, ValueError) as exc:
                raise SpecError(f"featurizers: {exc}") from exc

        for kind, (name, params) in (
            ("policy", self.policy),
            ("calibrator", self.calibrator),
        ):
            try:
                REGISTRY.create(kind, name, params)
            except ComponentError as exc:
                raise SpecError(str(exc)) from exc
        return self

    # -- canonical form + fingerprint ------------------------------------ #

    def to_dict(self) -> dict[str, object]:
        """The canonical JSON-able form (also the fingerprint input)."""
        return {
            "schema": SPEC_SCHEMA,
            "detector": dict(self.detector),
            "featurizers": (
                None
                if self.featurizers is None
                else [_emit_entry(n, dict(p)) for n, p in self.featurizers]
            ),
            "policy": _emit_entry(self.policy[0], dict(self.policy[1])),
            "calibrator": _emit_entry(self.calibrator[0], dict(self.calibrator[1])),
        }

    def fingerprint(self) -> str:
        """SHA-256 over the canonical spec: stable across key ordering,
        whitespace, shorthand/table component forms, and sessions."""
        payload = f"{SPEC_SCHEMA}:{_canonical(self.to_dict())}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def to_file(self, path: str | Path) -> None:
        """Write the canonical JSON form (pretty-printed) to ``path``."""
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    # -- building -------------------------------------------------------- #

    def build(self):
        """Construct the (unfitted) detector this spec describes."""
        from repro.core.detector import HoloDetect

        return HoloDetect.from_spec(self)

    def describe(self) -> str:
        """Human-readable component summary (``repro spec describe``)."""
        from repro.core.detector import DetectorConfig

        config = DetectorConfig(**dict(self.detector))
        lines = [
            f"schema:      {SPEC_SCHEMA}",
            f"fingerprint: {self.fingerprint()}",
            "",
            "[detector]",
        ]
        defaults = DetectorConfig()
        for f in dataclasses.fields(DetectorConfig):
            if f.name == "policy_override":
                continue
            value = getattr(config, f.name)
            marker = "" if value == getattr(defaults, f.name) else "   (override)"
            lines.append(f"  {f.name} = {value!r}{marker}")
        lines.append("")
        if self.featurizers is None:
            lines.append("featurizers: <default Table 7 pipeline>")
        else:
            lines.append("featurizers:")
            for name, params in self.featurizers:
                suffix = f"  {dict(params)}" if params else ""
                lines.append(f"  - {name}{suffix}")
        for label, (name, params) in (
            ("policy", self.policy),
            ("calibrator", self.calibrator),
        ):
            suffix = f"  {dict(params)}" if params else ""
            lines.append(f"{label + ':':<12} {name}{suffix}")
        return "\n".join(lines)


def load_spec(source: "DetectorSpec | Mapping[str, object] | str | Path") -> DetectorSpec:
    """Coerce a spec source — instance, mapping, or file path — to a spec."""
    if isinstance(source, DetectorSpec):
        return source
    if isinstance(source, Mapping):
        return DetectorSpec.from_dict(source)
    return DetectorSpec.from_file(source)


def build(source: "DetectorSpec | Mapping[str, object] | str | Path"):
    """Build an (unfitted) detector from a spec, mapping, or spec file.

    The declarative mirror of ``HoloDetect(DetectorConfig(...))``::

        detector = repro.build("detector.toml")
        detector.fit(dataset, training, constraints)
    """
    return load_spec(source).build()
