"""Declarative detector specification — ``repro.spec/v1``.

HoloDetect is a composition: a representation model Q (featurizers), a
learned noisy channel (augmentation policy), a classifier, and a
calibrator.  A :class:`DetectorSpec` describes that composition as *data* —
a TOML or JSON document — the way
:class:`~repro.evaluation.matrix.ScenarioMatrix` describes evaluation
sweeps.  Every component name resolves through the unified
:mod:`repro.registry`, so a spec can reference built-ins by key and
user-defined components as ``"module:attr"`` with zero repo edits.

Spec layout (TOML; JSON mirrors it)::

    schema = "repro.spec/v1"

    [detector]                  # DetectorConfig fields, all optional
    epochs = 40
    embedding_dim = 16
    seed = 0

    featurizers = [             # optional: omit for the Table 7 default
        "char_embedding",
        { name = "format_3gram", least_k = 2 },
        "mypkg.features:MyFeaturizer",          # module:attr reference
    ]

    policy = "learned"          # or "uniform", "random-channel", module:attr
    calibrator = "platt"        # or "none", module:attr; table form for params

    [artifacts]                 # optional fitted-artifact store (repro.artifacts)
    dir = "artifacts/"          # excluded from the fingerprint (execution detail)

    [compute]                   # optional compute backend (repro.nn.backend)
    backend = "numpy"           # or "reference", "torch", module:attr
    dtype = "float64"           # or "float32"; excluded from the fingerprint

Omitting ``featurizers`` selects the exact default pipeline the imperative
constructor builds, so ``HoloDetect.from_spec(DetectorSpec.default())`` is
bit-identical to ``HoloDetect(DetectorConfig())``.

Like :class:`~repro.evaluation.matrix.ScenarioSpec`, a spec carries a
SHA-256 content fingerprint over its canonical JSON form — stable under key
reordering, whitespace, and equivalent shorthand (a bare string entry and
its empty-params table form fingerprint identically).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.registry import REGISTRY, ComponentError

#: Spec schema identifier; bump when the layout changes meaning.
SPEC_SCHEMA = "repro.spec/v1"

_TOP_LEVEL_KEYS = {
    "schema", "detector", "featurizers", "policy", "calibrator", "artifacts",
    "compute",
}

#: Valid keys of the optional ``[artifacts]`` table.
_ARTIFACT_KEYS = {"dir"}

#: Valid keys of the optional ``[compute]`` table.
_COMPUTE_KEYS = {"backend", "dtype"}


class SpecError(ValueError):
    """A detector spec is malformed (unknown key, bad component, ...)."""


def _canonical(payload: object) -> str:
    """Canonical JSON: sorted keys at every depth, no whitespace."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _component_entry(raw: object, where: str) -> tuple[str, dict[str, object]]:
    """Normalise a spec component entry (string or table) to (name, params)."""
    if isinstance(raw, str):
        return raw, {}
    if isinstance(raw, Mapping):
        entry = dict(raw)
        name = entry.pop("name", None)
        if not isinstance(name, str):
            raise SpecError(f"{where} entry {raw!r} needs a string 'name'")
        return name, entry
    raise SpecError(f"{where} entry {raw!r} must be a string or a table with 'name'")


def _emit_entry(name: str, params: Mapping[str, object]) -> object:
    """The canonical emitted form: bare string unless params are present."""
    return {"name": name, **params} if params else name


def _freeze(value: object) -> object:
    """Recursively convert mappings/sequences to hashable immutable forms
    (mappings become sorted ``(key, value)`` pair tuples)."""
    if isinstance(value, Mapping):
        return tuple(sorted((str(k), _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def _freeze_params(params: object) -> tuple:
    """Freeze a parameter mapping; idempotent on already-frozen pairs.

    The frozen form round-trips through ``dict(...)``, which is how every
    consumer reads it back.
    """
    if isinstance(params, Mapping):
        return _freeze(params)  # type: ignore[return-value]
    return tuple(params)  # already pair tuples


@dataclass(frozen=True)
class DetectorSpec:
    """A complete, buildable description of a HoloDetect detector.

    ``detector`` holds :class:`~repro.core.detector.DetectorConfig` field
    overrides; ``featurizers`` is ``None`` for the default Table 7 pipeline
    or a tuple of ``(name, params)`` component references; ``policy`` and
    ``calibrator`` are single component references.  Construct via
    :meth:`from_dict` / :meth:`from_file` (which validate every component
    eagerly) or :meth:`default`.

    Parameter mappings may be passed as dicts; ``__post_init__`` freezes
    them into sorted ``(key, value)`` pair tuples (read back with
    ``dict(...)``), so instances are deeply immutable and hashable — a
    validated spec cannot be mutated into an invalid one, and specs can key
    sets and dicts alongside their fingerprints.
    """

    detector: Mapping[str, object] | tuple = field(default_factory=dict)
    featurizers: tuple[tuple[str, Mapping[str, object] | tuple], ...] | None = None
    policy: tuple[str, Mapping[str, object] | tuple] = ("learned", ())
    calibrator: tuple[str, Mapping[str, object] | tuple] = ("platt", ())
    #: The optional ``[artifacts]`` table (``dir`` = fitted-artifact store
    #: directory).  Deliberately **excluded from the fingerprint**: the
    #: store is an execution accelerator, not part of the detector's
    #: mathematical composition — two specs differing only here describe
    #: bit-identical detectors.
    artifacts: Mapping[str, object] | tuple = field(default_factory=dict)
    #: The optional ``[compute]`` table (``backend`` = registry kind
    #: ``"backend"`` reference, ``dtype`` = training precision).  Excluded
    #: from the fingerprint for the same reason as ``[artifacts]``: at
    #: float64 every backend is bit-identical, so the knob selects *how*
    #: the maths runs, never *what* is computed.
    compute: Mapping[str, object] | tuple = field(default_factory=dict)

    def __post_init__(self) -> None:
        freeze = object.__setattr__
        freeze(self, "detector", _freeze_params(self.detector))
        freeze(self, "artifacts", _freeze_params(self.artifacts))
        freeze(self, "compute", _freeze_params(self.compute))
        if self.featurizers is not None:
            freeze(
                self,
                "featurizers",
                tuple((n, _freeze_params(p)) for n, p in self.featurizers),
            )
        freeze(self, "policy", (self.policy[0], _freeze_params(self.policy[1])))
        freeze(
            self, "calibrator", (self.calibrator[0], _freeze_params(self.calibrator[1]))
        )

    # -- construction ---------------------------------------------------- #

    @classmethod
    def default(cls, **detector_overrides: object) -> "DetectorSpec":
        """The spec equivalent of ``HoloDetect(DetectorConfig(**overrides))``."""
        return cls(detector=dict(detector_overrides))

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "DetectorSpec":
        """Validate and build a spec from a parsed mapping.

        Every component reference is resolved through the registry *now* —
        unknown names, unimportable ``module:attr`` references, and bad
        parameters fail here with actionable messages, not inside ``fit()``.
        """
        if not isinstance(payload, Mapping):
            raise SpecError("spec must be a mapping at top level")
        unknown = set(payload) - _TOP_LEVEL_KEYS
        if unknown:
            raise SpecError(
                f"unknown spec keys {sorted(unknown)}; valid: {sorted(_TOP_LEVEL_KEYS)}"
            )
        schema = payload.get("schema")
        if schema != SPEC_SCHEMA:
            raise SpecError(
                f"spec needs schema = {SPEC_SCHEMA!r}, got {schema!r}"
            )

        detector = payload.get("detector", {})
        if not isinstance(detector, Mapping):
            raise SpecError("[detector] must be a table of DetectorConfig fields")
        detector = dict(detector)
        if "policy_override" in detector:
            raise SpecError(
                "policy_override is not spec-able; use the top-level "
                "'policy' key instead"
            )
        for key in ("artifact_store", "artifact_dir"):
            if key in detector:
                raise SpecError(
                    f"{key} is not spec-able under [detector]; point the "
                    "[artifacts] table's 'dir' at a store directory instead "
                    "(the store location is an execution detail and must "
                    "never enter the spec fingerprint)"
                )
        for key in ("backend", "compute_dtype"):
            if key in detector:
                raise SpecError(
                    f"{key} is not spec-able under [detector]; use the "
                    "[compute] table instead (the compute backend is an "
                    "execution detail and must never enter the spec "
                    "fingerprint)"
                )

        raw_featurizers = payload.get("featurizers")
        featurizers: tuple[tuple[str, Mapping[str, object]], ...] | None = None
        if raw_featurizers is not None:
            if isinstance(raw_featurizers, (str, bytes)) or not isinstance(
                raw_featurizers, Sequence
            ):
                raise SpecError("featurizers must be a list of component references")
            if not raw_featurizers:
                raise SpecError(
                    "featurizers must be a non-empty list; omit the key "
                    "entirely for the default pipeline"
                )
            featurizers = tuple(
                _component_entry(raw, "featurizers") for raw in raw_featurizers
            )

        policy = _component_entry(payload.get("policy", "learned"), "policy")
        calibrator = _component_entry(payload.get("calibrator", "platt"), "calibrator")

        artifacts = payload.get("artifacts", {})
        if not isinstance(artifacts, Mapping):
            raise SpecError("[artifacts] must be a table")

        compute = payload.get("compute", {})
        if not isinstance(compute, Mapping):
            raise SpecError("[compute] must be a table")

        spec = cls(
            detector=detector,
            featurizers=featurizers,
            policy=policy,
            calibrator=calibrator,
            artifacts=dict(artifacts),
            compute=dict(compute),
        )
        spec.validate()
        return spec

    @classmethod
    def from_file(cls, path: str | Path) -> "DetectorSpec":
        """Load a spec file; format chosen by suffix (.toml or .json)."""
        path = Path(path)
        if not path.exists():
            raise SpecError(f"spec file not found: {path}")
        suffix = path.suffix.lower()
        if suffix == ".toml":
            import tomllib

            try:
                payload = tomllib.loads(path.read_text(encoding="utf-8"))
            except tomllib.TOMLDecodeError as exc:
                raise SpecError(f"{path}: invalid TOML: {exc}") from exc
        elif suffix == ".json":
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except json.JSONDecodeError as exc:
                raise SpecError(f"{path}: invalid JSON: {exc}") from exc
        else:
            raise SpecError(
                f"{path}: unsupported spec format {suffix!r} (use .toml or .json)"
            )
        try:
            return cls.from_dict(payload)
        except SpecError as exc:
            raise SpecError(f"{path}: {exc}") from exc

    # -- validation ------------------------------------------------------ #

    def validate(self) -> "DetectorSpec":
        """Resolve every referenced component; raise :class:`SpecError` on
        the first failure.  Returns self for chaining."""
        from repro.core.detector import DetectorConfig
        from repro.features.pipeline import FeaturizerContext, build_pipeline

        detector = dict(self.detector)
        for key in ("artifact_store", "artifact_dir"):
            if key in detector:
                # Guard direct construction too: the store location must
                # never enter the (fingerprinted) [detector] table.
                raise SpecError(
                    f"{key} is not spec-able under [detector]; use the "
                    "[artifacts] table's 'dir' key instead"
                )
        for key in ("backend", "compute_dtype"):
            if key in detector:
                raise SpecError(
                    f"{key} is not spec-able under [detector]; use the "
                    "[compute] table instead"
                )
        try:
            config = DetectorConfig(**detector)
        except TypeError as exc:
            valid = sorted(
                f.name for f in dataclasses.fields(DetectorConfig)
                if f.name not in (
                    "policy_override", "artifact_store", "artifact_dir",
                    "backend", "compute_dtype",
                )
            )
            raise SpecError(f"[detector]: {exc}; valid keys: {valid}") from exc
        except ValueError as exc:
            raise SpecError(f"[detector]: {exc}") from exc

        if self.featurizers is not None:
            ctx = FeaturizerContext(
                embedding_dim=config.embedding_dim,
                embedding_epochs=config.embedding_epochs,
            )
            try:
                build_pipeline(list(self.featurizers), ctx)
            except (ComponentError, ValueError) as exc:
                raise SpecError(f"featurizers: {exc}") from exc

        for kind, (name, params) in (
            ("policy", self.policy),
            ("calibrator", self.calibrator),
        ):
            try:
                REGISTRY.create(kind, name, params)
            except ComponentError as exc:
                raise SpecError(str(exc)) from exc

        artifacts = dict(self.artifacts)
        unknown = set(artifacts) - _ARTIFACT_KEYS
        if unknown:
            raise SpecError(
                f"[artifacts]: unknown keys {sorted(unknown)}; "
                f"valid: {sorted(_ARTIFACT_KEYS)}"
            )
        directory = artifacts.get("dir")
        if directory is not None and not isinstance(directory, str):
            raise SpecError(f"[artifacts]: dir must be a string, got {directory!r}")

        compute = dict(self.compute)
        unknown = set(compute) - _COMPUTE_KEYS
        if unknown:
            raise SpecError(
                f"[compute]: unknown keys {sorted(unknown)}; "
                f"valid: {sorted(_COMPUTE_KEYS)}"
            )
        backend = compute.get("backend")
        if backend is not None:
            if not isinstance(backend, str):
                raise SpecError(
                    f"[compute]: backend must be a string, got {backend!r}"
                )
            from repro.nn.backend import resolve_backend

            try:
                resolve_backend(backend)
            except ComponentError as exc:
                raise SpecError(f"[compute]: {exc}") from exc
        dtype = compute.get("dtype")
        if dtype is not None:
            from repro.nn.backend import SUPPORTED_DTYPES

            if dtype not in SUPPORTED_DTYPES:
                raise SpecError(
                    f"[compute]: dtype must be one of {list(SUPPORTED_DTYPES)}, "
                    f"got {dtype!r}"
                )
        return self

    # -- canonical form + fingerprint ------------------------------------ #

    def to_dict(self) -> dict[str, object]:
        """The canonical JSON-able form.

        The ``artifacts`` table is emitted only when present, so specs
        without one serialise exactly as they did before the table existed.
        """
        payload: dict[str, object] = {
            "schema": SPEC_SCHEMA,
            "detector": dict(self.detector),
            "featurizers": (
                None
                if self.featurizers is None
                else [_emit_entry(n, dict(p)) for n, p in self.featurizers]
            ),
            "policy": _emit_entry(self.policy[0], dict(self.policy[1])),
            "calibrator": _emit_entry(self.calibrator[0], dict(self.calibrator[1])),
        }
        if dict(self.artifacts):
            payload["artifacts"] = dict(self.artifacts)
        if dict(self.compute):
            payload["compute"] = dict(self.compute)
        return payload

    def fingerprint(self) -> str:
        """SHA-256 over the canonical spec: stable across key ordering,
        whitespace, shorthand/table component forms, and sessions — and
        across the ``[artifacts]`` and ``[compute]`` tables, which describe
        *where* fitted artifacts live and *how* the maths runs, never
        *what* the detector computes."""
        payload = self.to_dict()
        payload.pop("artifacts", None)
        payload.pop("compute", None)
        canonical = f"{SPEC_SCHEMA}:{_canonical(payload)}"
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def to_file(self, path: str | Path) -> None:
        """Write the canonical JSON form (pretty-printed) to ``path``."""
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    # -- building -------------------------------------------------------- #

    def build(self):
        """Construct the (unfitted) detector this spec describes."""
        from repro.core.detector import HoloDetect

        return HoloDetect.from_spec(self)

    def describe(self) -> str:
        """Human-readable component summary (``repro spec describe``)."""
        from repro.core.detector import DetectorConfig

        config = DetectorConfig(**dict(self.detector))
        lines = [
            f"schema:      {SPEC_SCHEMA}",
            f"fingerprint: {self.fingerprint()}",
            "",
            "[detector]",
        ]
        defaults = DetectorConfig()
        for f in dataclasses.fields(DetectorConfig):
            if f.name in (
                "policy_override", "artifact_store", "artifact_dir",
                "backend", "compute_dtype",
            ):
                continue
            value = getattr(config, f.name)
            marker = "" if value == getattr(defaults, f.name) else "   (override)"
            lines.append(f"  {f.name} = {value!r}{marker}")
        lines.append("")
        if self.featurizers is None:
            lines.append("featurizers: <default Table 7 pipeline>")
        else:
            lines.append("featurizers:")
            for name, params in self.featurizers:
                suffix = f"  {dict(params)}" if params else ""
                lines.append(f"  - {name}{suffix}")
        for label, (name, params) in (
            ("policy", self.policy),
            ("calibrator", self.calibrator),
        ):
            suffix = f"  {dict(params)}" if params else ""
            lines.append(f"{label + ':':<12} {name}{suffix}")
        artifacts = dict(self.artifacts)
        if artifacts:
            lines.append(f"{'artifacts:':<12} {artifacts}  (not fingerprinted)")
        compute = dict(self.compute)
        if compute:
            lines.append(f"{'compute:':<12} {compute}  (not fingerprinted)")
        return "\n".join(lines)


#: Shortest spec-fingerprint abbreviation accepted by :func:`resolve_fingerprint`.
MIN_FINGERPRINT_PREFIX = 6


def resolve_fingerprint(query: str, fingerprints: "Iterable[str]") -> str:
    """Expand a (possibly abbreviated) spec fingerprint to exactly one match.

    The serving layer routes requests by :meth:`DetectorSpec.fingerprint`;
    like git object ids, the full 64-hex digest is unwieldy on a command
    line, so any unique prefix of at least :data:`MIN_FINGERPRINT_PREFIX`
    characters resolves.  Raises :class:`SpecError` when the query is too
    short, unknown, or ambiguous — naming the candidates, so a caller can
    surface an actionable error.
    """
    if not isinstance(query, str) or not query:
        raise SpecError(f"fingerprint query must be a non-empty string, got {query!r}")
    candidates = sorted(set(fingerprints))
    if query in candidates:
        return query
    if len(query) < MIN_FINGERPRINT_PREFIX:
        raise SpecError(
            f"fingerprint prefix {query!r} is too short "
            f"(need >= {MIN_FINGERPRINT_PREFIX} characters)"
        )
    matches = [f for f in candidates if f.startswith(query)]
    if not matches:
        raise SpecError(
            f"unknown spec fingerprint {query!r} "
            f"({len(candidates)} known: {[f[:12] for f in candidates]})"
        )
    if len(matches) > 1:
        raise SpecError(
            f"ambiguous fingerprint prefix {query!r}: "
            f"matches {[f[:12] for f in matches]}"
        )
    return matches[0]


def load_spec(source: "DetectorSpec | Mapping[str, object] | str | Path") -> DetectorSpec:
    """Coerce a spec source — instance, mapping, or file path — to a spec."""
    if isinstance(source, DetectorSpec):
        return source
    if isinstance(source, Mapping):
        return DetectorSpec.from_dict(source)
    return DetectorSpec.from_file(source)


def build(source: "DetectorSpec | Mapping[str, object] | str | Path"):
    """Build an (unfitted) detector from a spec, mapping, or spec file.

    The declarative mirror of ``HoloDetect(DetectorConfig(...))``::

        detector = repro.build("detector.toml")
        detector.fit(dataset, training, constraints)
    """
    return load_spec(source).build()
