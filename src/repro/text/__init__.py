"""Text substrate: tokenisation, n-gram language models, string similarity.

These are the string primitives the paper's representation models (format
3-grams, Appendix A.1) and transformation learner (Algorithm 1, which follows
Ratcliff–Obershelp pattern matching) are built on.
"""

from repro.text.tokenize import char_tokens, symbolic_signature, word_tokens
from repro.text.ngrams import NGramModel, SymbolicNGramModel
from repro.text.similarity import (
    longest_common_substring,
    sequence_similarity,
)

__all__ = [
    "char_tokens",
    "symbolic_signature",
    "word_tokens",
    "NGramModel",
    "SymbolicNGramModel",
    "longest_common_substring",
    "sequence_similarity",
]
